"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file only enables the
legacy ``python setup.py develop`` escape hatch for offline environments
whose setuptools is too old to build PEP 660 editable wheels without the
``wheel`` package.
"""

from setuptools import setup

setup()
