"""Tests for the locally relevant constraint bands (Section 3.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bands import (
    ConstraintSpec,
    build_constraint_band,
    build_symmetric_band,
    parse_constraint_spec,
)
from repro.core.config import SDTWConfig
from repro.core.intervals import partition_from_boundaries
from repro.dtw.banded import band_cell_count, band_to_mask, validate_band
from repro.dtw.constraints import sakoe_chiba_band_fraction
from repro.exceptions import ConfigurationError, ValidationError


@pytest.fixture()
def simple_partition():
    """A partition where the second half of Y is stretched relative to X."""
    return partition_from_boundaries([20.0, 50.0], [10.0, 30.0], n=100, m=100)


class TestParseConstraintSpec:
    def test_known_labels(self):
        assert parse_constraint_spec("fc,fw").label == "fc,fw"
        assert parse_constraint_spec("fc,aw").label == "fc,aw"
        assert parse_constraint_spec("ac,fw").label == "ac,fw"
        assert parse_constraint_spec("ac,aw").label == "ac,aw"
        assert parse_constraint_spec("ac2,aw").label == "ac2,aw"

    def test_aliases_and_case_insensitivity(self):
        assert parse_constraint_spec("Sakoe-Chiba").core == "fixed"
        assert parse_constraint_spec("AC,AW").core == "adaptive"
        assert parse_constraint_spec(" ac , aw ").width == "adaptive"

    def test_spec_objects_pass_through(self):
        spec = ConstraintSpec("adaptive", "fixed")
        assert parse_constraint_spec(spec) is spec

    def test_unknown_label_rejected(self):
        with pytest.raises(ValidationError):
            parse_constraint_spec("nonsense")

    def test_invalid_spec_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstraintSpec("diagonal", "fixed")
        with pytest.raises(ConfigurationError):
            ConstraintSpec("fixed", "wide")
        with pytest.raises(ConfigurationError):
            ConstraintSpec("fixed", "fixed", neighbor_radius=-1)

    def test_ac2_label_reflects_neighbor_radius(self):
        spec = ConstraintSpec("adaptive", "adaptive", neighbor_radius=1)
        assert spec.label == "ac2,aw"
        spec3 = ConstraintSpec("adaptive", "adaptive", neighbor_radius=2)
        assert spec3.label == "ac3,aw"


class TestFixedCoreFixedWidth:
    def test_matches_sakoe_chiba_band(self):
        config = SDTWConfig(width_fraction=0.10)
        band = build_constraint_band(80, 90, "fc,fw", None, config)
        expected = sakoe_chiba_band_fraction(80, 90, 0.10)
        np.testing.assert_array_equal(band, expected)

    def test_width_fraction_controls_area(self):
        narrow = build_constraint_band(100, 100, "fc,fw", None,
                                       SDTWConfig(width_fraction=0.06))
        wide = build_constraint_band(100, 100, "fc,fw", None,
                                     SDTWConfig(width_fraction=0.20))
        assert band_cell_count(narrow) < band_cell_count(wide)


class TestAdaptiveCore:
    def test_core_follows_partition_mapping(self, simple_partition):
        config = SDTWConfig(width_fraction=0.06)
        band = build_constraint_band(100, 100, "ac,fw", simple_partition, config)
        # In X interval [20, 50] mapping to Y interval [10, 30], the centre
        # of the band at x=35 should sit near y=20, well below the diagonal.
        centre = (band[35, 0] + band[35, 1]) / 2.0
        assert centre < 30

    def test_without_partition_falls_back_to_diagonal(self):
        config = SDTWConfig(width_fraction=0.06)
        adaptive = build_constraint_band(60, 60, "ac,fw", None, config)
        fixed = build_constraint_band(60, 60, "fc,fw", None, config)
        np.testing.assert_array_equal(adaptive, fixed)

    def test_band_always_contains_corners(self, simple_partition):
        for spec in ("ac,fw", "ac,aw", "ac2,aw", "fc,aw"):
            band = build_constraint_band(100, 100, spec, simple_partition)
            assert band[0, 0] == 0
            assert band[-1, 1] == 99

    def test_band_is_connected(self, simple_partition):
        for spec in ("ac,fw", "ac,aw", "ac2,aw"):
            band = build_constraint_band(100, 100, spec, simple_partition)
            validate_band(band, 100, 100, repair=False)

    def test_empty_y_interval_maps_to_single_point(self):
        # Y boundaries coincide: the middle Y interval is a single sample.
        partition = partition_from_boundaries([30.0, 60.0], [45.0, 45.0],
                                               n=100, m=100)
        band = build_constraint_band(100, 100, "ac,fw", partition,
                                     SDTWConfig(width_fraction=0.06))
        validate_band(band, 100, 100, repair=False)
        # Points in X's middle interval should centre near y=45.
        centre = (band[45, 0] + band[45, 1]) / 2.0
        assert abs(centre - 45) < 10

    def test_empty_x_interval_band_still_usable(self):
        partition = partition_from_boundaries([40.0, 40.0], [30.0, 60.0],
                                               n=100, m=100)
        band = build_constraint_band(100, 100, "ac,fw", partition,
                                     SDTWConfig(width_fraction=0.06))
        validate_band(band, 100, 100, repair=False)


class TestAdaptiveWidth:
    def test_adaptive_width_respects_lower_bound(self, simple_partition):
        config = SDTWConfig(adaptive_width_lower_bound=0.30)
        band = build_constraint_band(100, 100, "fc,aw", simple_partition, config)
        widths = band[:, 1] - band[:, 0] + 1
        # Interior rows (unclipped by the grid edge) must satisfy the bound.
        assert np.median(widths) >= 0.30 * 100 * 0.9

    def test_adaptive_width_respects_upper_bound(self, simple_partition):
        config = SDTWConfig(adaptive_width_lower_bound=0.05,
                            adaptive_width_upper_bound=0.10)
        band = build_constraint_band(100, 100, "ac,aw", simple_partition, config)
        widths = band[:, 1] - band[:, 0] + 1
        assert np.max(widths) <= 0.10 * 100 + 3

    def test_neighbor_averaging_smooths_widths(self):
        # One tiny interval between two huge ones: averaging should make the
        # width in the tiny interval larger than the local width.
        partition = partition_from_boundaries([48.0, 52.0], [48.0, 52.0],
                                               n=100, m=100)
        config = SDTWConfig(adaptive_width_lower_bound=0.0)
        local = build_constraint_band(100, 100, "ac,aw", partition, config)
        averaged = build_constraint_band(100, 100, "ac2,aw", partition, config)
        local_width = local[50, 1] - local[50, 0] + 1
        averaged_width = averaged[50, 1] - averaged[50, 0] + 1
        assert averaged_width >= local_width

    def test_no_partition_adaptive_width_uses_lower_bound(self):
        config = SDTWConfig(width_fraction=0.06, adaptive_width_lower_bound=0.20)
        band = build_constraint_band(60, 60, "fc,aw", None, config)
        widths = band[:, 1] - band[:, 0] + 1
        assert np.median(widths) >= 0.18 * 60


class TestSymmetricBand:
    def test_symmetric_band_contains_forward_band(self, simple_partition):
        config = SDTWConfig(width_fraction=0.06)
        forward = build_constraint_band(100, 100, "ac,fw", simple_partition, config)
        reverse_partition = partition_from_boundaries(
            [10.0, 30.0], [20.0, 50.0], n=100, m=100
        )
        backward = build_constraint_band(100, 100, "ac,fw", reverse_partition, config)
        combined = build_symmetric_band(forward, backward, 100, 100)
        mask_forward = band_to_mask(forward, 100)
        mask_combined = band_to_mask(combined, 100)
        assert np.all(mask_combined[mask_forward])

    def test_symmetric_band_is_valid(self, simple_partition):
        config = SDTWConfig(width_fraction=0.06)
        forward = build_constraint_band(100, 100, "ac,fw", simple_partition, config)
        backward = build_constraint_band(100, 100, "fc,fw", None, config)
        combined = build_symmetric_band(forward, backward, 100, 100)
        validate_band(combined, 100, 100, repair=False)
