"""Tests for the multi-resolution + sDTW combination (optional extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DescriptorConfig, SDTWConfig
from repro.core.multiscale import multiscale_sdtw
from repro.core.sdtw import SDTW
from repro.dtw.full import dtw_distance
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def config():
    return SDTWConfig(descriptor=DescriptorConfig(num_bins=16))


class TestMultiscaleSDTW:
    def test_distance_upper_bounds_full_dtw(self, bumpy_pair, config):
        x, y = bumpy_pair
        result = multiscale_sdtw(x, y, "ac,aw", config)
        assert result.distance >= dtw_distance(x, y) - 1e-9

    def test_fills_fewer_cells_than_plain_sdtw(self, bumpy_pair, config):
        x, y = bumpy_pair
        engine = SDTW(config)
        plain = engine.distance(x, y, "ac,aw")
        combined = multiscale_sdtw(x, y, "ac,aw", config, engine=engine)
        assert combined.cells_filled <= plain.cells_filled
        assert combined.cell_savings >= plain.cell_savings - 1e-9

    def test_distance_at_least_plain_sdtw(self, bumpy_pair, config):
        # The combined band is an intersection, so its constrained optimum
        # can only be >= the plain sDTW constrained optimum.
        x, y = bumpy_pair
        engine = SDTW(config)
        plain = engine.distance(x, y, "ac,aw").distance
        combined = multiscale_sdtw(x, y, "ac,aw", config, engine=engine).distance
        assert combined >= plain - 1e-9

    def test_identical_series_zero_distance(self, config):
        series = np.sin(np.linspace(0, 7, 180)) + 0.3 * np.cos(np.linspace(0, 23, 180))
        result = multiscale_sdtw(series, series, "ac,aw", config)
        assert result.distance == pytest.approx(0.0, abs=1e-9)

    def test_wider_radius_tightens_the_estimate(self, bumpy_pair, config):
        x, y = bumpy_pair
        narrow = multiscale_sdtw(x, y, "ac,aw", config, radius=1).distance
        wide = multiscale_sdtw(x, y, "ac,aw", config, radius=12).distance
        assert wide <= narrow + 1e-9

    def test_reports_coarse_work(self, bumpy_pair, config):
        x, y = bumpy_pair
        result = multiscale_sdtw(x, y, "ac,aw", config, reduction=4)
        assert 0 < result.coarse_cells_filled < result.total_cells

    def test_invalid_parameters_rejected(self, bumpy_pair, config):
        x, y = bumpy_pair
        with pytest.raises(ValidationError):
            multiscale_sdtw(x, y, "ac,aw", config, reduction=1)
        with pytest.raises(ValidationError):
            multiscale_sdtw(x, y, "ac,aw", config, radius=0)

    def test_works_with_fixed_constraint_too(self, sine_pair, config):
        x, y = sine_pair
        result = multiscale_sdtw(x, y, "fc,fw", config)
        assert np.isfinite(result.distance)
