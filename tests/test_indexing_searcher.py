"""Tests for the two-stage indexed searcher (candidates + exact re-rank)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DescriptorConfig, SDTWConfig
from repro.datasets.synthetic import make_gun_like
from repro.exceptions import ValidationError
from repro.indexing import CodebookConfig, IndexedSearcher

CONFIG = SDTWConfig(descriptor=DescriptorConfig(num_bins=16))
# The three constraint families the acceptance criterion names.
FAMILIES = ["fc,fw", "itakura", "ac,aw"]


@pytest.fixture(scope="module")
def dataset():
    return make_gun_like(num_series=24, length=80, seed=21)


def _build(dataset, constraint, **kwargs):
    kwargs.setdefault("config", CONFIG)
    kwargs.setdefault(
        "codebook_config", CodebookConfig.for_sdtw(CONFIG, num_codewords=32, seed=2)
    )
    kwargs.setdefault("num_shards", 3)
    return IndexedSearcher.from_dataset(dataset, constraint=constraint, **kwargs)


class TestFullBudgetEquivalence:
    @pytest.mark.parametrize("constraint", FAMILIES)
    def test_c_equals_n_reproduces_engine_rankings(self, dataset, constraint):
        searcher = _build(dataset, constraint)
        for qi in (0, 5, 13):
            query = dataset[qi].values
            indexed = searcher.query(query, k=5, candidates=len(dataset))
            exact = searcher.engine.query(query, 5)
            assert indexed.indices == exact.indices
            for mine, theirs in zip(indexed.hits, exact.hits):
                assert mine.distance == theirs.distance
                assert mine.identifier == theirs.identifier

    @pytest.mark.parametrize("constraint", FAMILIES)
    def test_recall_is_one_at_full_budget(self, dataset, constraint):
        searcher = _build(dataset, constraint)
        queries = [dataset[i].values for i in range(4)]
        report = searcher.recall_at_k(queries, k=10, candidates=len(dataset))
        assert report.mean_recall == 1.0

    def test_budget_beyond_collection_size_equivalent_too(self, dataset):
        searcher = _build(dataset, "fc,fw")
        query = dataset[2].values
        indexed = searcher.query(query, k=5, candidates=10 * len(dataset))
        exact = searcher.engine.query(query, 5)
        assert indexed.indices == exact.indices


class TestEscapeHatch:
    def test_exact_bypasses_candidate_generation(self, dataset):
        searcher = _build(dataset, "fc,fw")
        result = searcher.query(dataset[1].values, k=5, exact=True)
        assert result.exact
        assert result.generation_seconds == 0.0
        assert result.candidates_generated == len(dataset)
        exhaustive = searcher.engine.query(dataset[1].values, 5)
        assert result.indices == exhaustive.indices


class TestBudgetedQueries:
    def test_small_budget_restricts_the_scan(self, dataset):
        searcher = _build(dataset, "fc,fw", candidate_budget=6)
        result = searcher.query(dataset[0].values, k=3)
        assert result.candidates_generated == 6
        assert result.stats.candidates <= 6
        assert len(result.hits) == 3

    def test_self_query_finds_itself_in_candidates(self, dataset):
        searcher = _build(dataset, "fc,fw")
        for qi in range(6):
            result = searcher.query(dataset[qi].values, k=1, candidates=5)
            assert result.hits[0].index == qi
            assert result.hits[0].distance == 0.0

    def test_exclude_identifier_respected(self, dataset):
        searcher = _build(dataset, "fc,fw")
        identifier = searcher.engine._stored[0].identifier
        result = searcher.query(
            dataset[0].values, k=3, candidates=len(dataset),
            exclude_identifier=identifier,
        )
        assert 0 not in result.indices

    def test_generate_candidates_is_deterministic(self, dataset):
        searcher = _build(dataset, "fc,fw")
        first = searcher.generate_candidates(dataset[4].values, 8)
        second = searcher.generate_candidates(dataset[4].values, 8)
        assert np.array_equal(first, second)

    def test_batch_query_matches_single_queries(self, dataset):
        searcher = _build(dataset, "fc,fw")
        queries = [dataset[i].values for i in range(3)]
        batch = searcher.batch_query(queries, k=4, candidates=8)
        for qi, values in enumerate(queries):
            single = searcher.query(values, k=4, candidates=8)
            assert batch[qi].indices == single.indices


class TestPersistenceRoundTrip:
    def test_reopened_searcher_answers_identically(self, dataset, tmp_path):
        searcher = _build(dataset, "fc,fw")
        searcher.save(tmp_path / "idx")
        reopened = IndexedSearcher.open(
            tmp_path / "idx", config=CONFIG, constraint="fc,fw",
        )
        assert reopened.index.is_memory_mapped
        for qi in (0, 7, 11):
            query = dataset[qi].values
            original = searcher.query(query, k=5, candidates=10)
            restored = reopened.query(query, k=5, candidates=10)
            assert original.indices == restored.indices
            for mine, theirs in zip(original.hits, restored.hits):
                assert mine.distance == theirs.distance

    def test_reopened_full_budget_still_matches_engine(self, dataset, tmp_path):
        searcher = _build(dataset, "itakura")
        searcher.save(tmp_path / "idx")
        reopened = IndexedSearcher.open(
            tmp_path / "idx", config=CONFIG, constraint="itakura",
        )
        query = dataset[9].values
        indexed = reopened.query(query, k=6, candidates=len(dataset))
        exact = reopened.engine.query(query, 6)
        assert indexed.indices == exact.indices


class TestEngineIndexedPath:
    """``IndexedSearcher.from_engine`` over a Workspace's serving engine
    (the path the retired search-engine shim used to wrap)."""

    def test_from_engine_reuses_the_engine(self, dataset):
        from repro.service import (
            EngineConfig, Workspace, WorkspaceConfig,
        )

        workspace = Workspace(WorkspaceConfig(
            sdtw=CONFIG, engine=EngineConfig(constraint="fc,fw")))
        workspace.add_dataset(dataset)
        searcher = IndexedSearcher.from_engine(
            workspace.engine,
            config=CONFIG,
            codebook_config=CodebookConfig.for_sdtw(CONFIG, num_codewords=32),
            candidate_budget=8,
        )
        assert searcher.engine is workspace.engine
        result = searcher.query(dataset[0].values, k=3,
                                candidates=len(dataset))
        exhaustive = workspace.query(dataset[0].values, 3, mode="exact")
        assert [hit.index for hit in exhaustive.hits] == list(result.indices)

    def test_empty_engine_rejected(self):
        from repro.engine import DistanceEngine

        with pytest.raises(ValidationError):
            IndexedSearcher.from_engine(
                DistanceEngine("fc,fw", config=CONFIG), config=CONFIG)


class TestValidation:
    def test_mismatched_descriptor_bins_rejected(self, dataset):
        searcher = _build(dataset, "fc,fw")
        with pytest.raises(ValidationError):
            IndexedSearcher(
                searcher.index, searcher.codebook, searcher.engine,
                config=SDTWConfig(),  # 64-bin default vs 16-bin codebook
            )

    def test_engine_size_mismatch_rejected(self, dataset):
        searcher = _build(dataset, "fc,fw")
        from repro.engine import DistanceEngine

        small = DistanceEngine("fc,fw", CONFIG)
        small.add(dataset[0].values)
        with pytest.raises(ValidationError):
            IndexedSearcher(searcher.index, searcher.codebook, small, config=CONFIG)


class TestDuplicateIdentifiers:
    def test_from_engine_rejects_duplicate_identifiers(self, dataset):
        from repro.engine import DistanceEngine

        engine = DistanceEngine("fc,fw", CONFIG)
        engine.add(dataset[0].values, identifier="dup")
        engine.add(dataset[1].values, identifier="dup")
        with pytest.raises(ValidationError):
            IndexedSearcher.from_engine(engine, config=CONFIG)

    def test_build_rejects_duplicate_identifiers(self, dataset):
        with pytest.raises(ValidationError):
            IndexedSearcher.build(
                [dataset[0].values, dataset[1].values],
                identifiers=["dup", "dup"],
                config=CONFIG,
            )

    def test_writer_rejects_duplicate_identifiers(self, dataset, tmp_path):
        from repro.indexing import IndexWriter

        searcher = _build(dataset, "fc,fw")
        duplicated = ["same"] * len(dataset)
        with pytest.raises(ValidationError):
            IndexWriter(tmp_path / "idx").write(
                searcher.index, searcher.codebook, duplicated,
            )


class TestPersistedExtractionConfig:
    def test_reopen_reconstructs_build_config(self, dataset, tmp_path):
        searcher = _build(dataset, "fc,fw")
        searcher.save(tmp_path / "idx")
        # No config passed: the persisted (16-bin) configuration is used.
        reopened = IndexedSearcher.open(tmp_path / "idx", constraint="fc,fw")
        assert reopened.config == CONFIG
        query = dataset[3].values
        assert (
            reopened.query(query, k=4, candidates=10).indices
            == searcher.query(query, k=4, candidates=10).indices
        )

    def test_mismatched_config_rejected_on_reopen(self, dataset, tmp_path):
        searcher = _build(dataset, "fc,fw")
        searcher.save(tmp_path / "idx")
        wrong = SDTWConfig(descriptor=DescriptorConfig(num_bins=16),
                           width_fraction=0.25)
        with pytest.raises(ValidationError):
            IndexedSearcher.open(tmp_path / "idx", config=wrong)

    def test_config_dict_round_trip(self):
        restored = SDTWConfig.from_dict(CONFIG.to_dict())
        assert restored == CONFIG
