"""Shared pytest fixtures for the sDTW reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import (
    DescriptorConfig,
    SDTWConfig,
    ScaleSpaceConfig,
)
from repro.core.sdtw import SDTW
from repro.datasets.synthetic import (
    make_fiftywords_like,
    make_gun_like,
    make_trace_like,
)


@pytest.fixture(scope="session")
def rng():
    """A deterministic random generator for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def sine_pair():
    """Two phase-shifted sinusoids of different lengths (classic DTW input)."""
    x = np.sin(np.linspace(0.0, 4.0 * np.pi, 120))
    y = np.sin(np.linspace(0.0, 4.0 * np.pi, 150) - 0.5)
    return x, y


@pytest.fixture(scope="session")
def bumpy_pair():
    """Two series with the same bump structure but locally warped time axes."""
    t = np.linspace(0.0, 1.0, 140)
    x = (
        np.exp(-((t - 0.25) ** 2) / 0.002)
        + 0.8 * np.exp(-((t - 0.6) ** 2) / 0.004)
        - 0.5 * np.exp(-((t - 0.85) ** 2) / 0.001)
    )
    t2 = np.linspace(0.0, 1.0, 160)
    y = (
        np.exp(-((t2 - 0.30) ** 2) / 0.002)
        + 0.8 * np.exp(-((t2 - 0.55) ** 2) / 0.004)
        - 0.5 * np.exp(-((t2 - 0.82) ** 2) / 0.001)
    )
    return x, y


@pytest.fixture(scope="session")
def small_scale_config():
    """A scale-space configuration with three octaves for multi-scale tests."""
    return ScaleSpaceConfig(num_octaves=3)


@pytest.fixture(scope="session")
def default_config():
    """The paper-default sDTW configuration."""
    return SDTWConfig()


@pytest.fixture(scope="session")
def fast_config():
    """A cheaper configuration (short descriptors) for pipeline-level tests."""
    return SDTWConfig(descriptor=DescriptorConfig(num_bins=16))


@pytest.fixture()
def engine(fast_config):
    """A fresh SDTW engine per test (feature cache isolated between tests)."""
    return SDTW(fast_config)


@pytest.fixture(scope="session")
def gun_small():
    """A small Gun-like data set shared across tests."""
    return make_gun_like(num_series=8, seed=3)


@pytest.fixture(scope="session")
def trace_small():
    """A small Trace-like data set shared across tests."""
    return make_trace_like(num_series=8, seed=3)


@pytest.fixture(scope="session")
def words_small():
    """A small 50Words-like data set shared across tests."""
    return make_fiftywords_like(num_series=10, seed=3)


@pytest.fixture(scope="session")
def tiny_series_collection(gun_small):
    """Value arrays of a handful of short series for distance-matrix tests."""
    return [ts.values[:60] for ts in gun_small.series[:5]]
