"""The network service tier: wire schema, HTTP server, client, sharding.

The contract under test is ISSUE 10's redesigned query API: one
versioned wire payload (``repro-query-result``) shared by
``WorkspaceQueryResult.to_dict/from_dict``, the ``repro serve`` HTTP
front end and the ``RemoteWorkspace`` client — with HTTP results
bit-identical to in-process queries at every shard count, a typed 4xx
error contract, admission control, and degraded (partial) reads when a
shard dies.
"""

from __future__ import annotations

import http.client
import json
import re
import threading

import pytest

from repro.core.config import DescriptorConfig, SDTWConfig
from repro.datasets.synthetic import make_gun_like
from repro.exceptions import (
    DatasetError,
    RemoteWorkspaceError,
    ValidationError,
    WorkspaceError,
)
from repro.server import (
    PROMETHEUS_CONTENT_TYPE,
    RemoteWorkspace,
    ShardedWorkspace,
    WorkspaceServer,
    shard_of,
    split_workspace,
)
from repro.service import EngineConfig, IndexConfig, Workspace, WorkspaceConfig
from repro.service.workspace import WIRE_FORMAT, WIRE_VERSION


NUM_SERIES = 24


def _config() -> WorkspaceConfig:
    return WorkspaceConfig(
        sdtw=SDTWConfig(descriptor=DescriptorConfig(num_bins=16)),
        engine=EngineConfig(constraint="ac,aw", backend="vectorized"),
        index=IndexConfig(num_codewords=4, candidate_budget=NUM_SERIES,
                          seed=7),
    )


@pytest.fixture(scope="module")
def dataset():
    return make_gun_like(num_series=NUM_SERIES, seed=5)


@pytest.fixture(scope="module")
def workspace(dataset):
    ws = Workspace.in_memory(_config())
    ws.add_dataset(dataset)
    ws.build_index()
    return ws


@pytest.fixture(scope="module")
def server(workspace):
    with WorkspaceServer(workspace, port=0) as srv:
        yield srv


@pytest.fixture(scope="module")
def client(server):
    with RemoteWorkspace(server.host, server.port) as remote:
        yield remote


def assert_bit_identical(remote, local):
    """The full bit-identity contract between two query results."""
    assert remote.ids == local.ids
    assert remote.indices == local.indices
    assert remote.distances == local.distances  # exact ==, not approx
    assert remote.labels == local.labels
    assert remote.mode == local.mode
    assert remote.k == local.k
    assert remote.collection_size == local.collection_size


def raw_request(server, method, path, body=None, headers=None):
    """One raw HTTP exchange, bypassing RemoteWorkspace's error mapping."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        conn.request(method, path, body=body, headers=dict(headers or {}))
        response = conn.getresponse()
        payload = response.read()
        return response.status, dict(response.getheaders()), payload
    finally:
        conn.close()


# ---------------------------------------------------------------------- #
# Wire schema
# ---------------------------------------------------------------------- #
class TestWireSchema:
    def test_round_trips_through_json_bit_identically(
            self, workspace, dataset):
        result = workspace.query(dataset[0].values, 3, mode="exact")
        payload = json.loads(json.dumps(result.to_dict()))
        rebuilt = type(result).from_dict(payload)
        assert_bit_identical(rebuilt, result)
        assert rebuilt.requested_mode == result.requested_mode
        assert rebuilt.snapshot_version == result.snapshot_version
        assert rebuilt.candidates_generated == result.candidates_generated
        assert rebuilt.stats.to_dict() == result.stats.to_dict()
        assert rebuilt.timings() == result.timings()

    def test_payload_declares_format_and_version(self, workspace, dataset):
        payload = workspace.query(dataset[0].values, 1).to_dict()
        assert payload["format"] == WIRE_FORMAT
        assert payload["version"] == WIRE_VERSION

    def test_include_trace_false_strips_the_trace(self, workspace, dataset):
        result = workspace.query(dataset[0].values, 1, mode="exact")
        assert result.to_dict(include_trace=True)["trace"] is not None
        assert result.to_dict(include_trace=False)["trace"] is None

    def test_sharded_fields_round_trip(self, workspace, dataset):
        sharded = split_workspace(workspace, 2)
        result = sharded.query(dataset[0].values, 3, mode="exact")
        rebuilt = type(result).from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert rebuilt.shard_versions == result.shard_versions
        assert rebuilt.failed_shards == result.failed_shards == ()
        sharded.close()

    def test_rejects_foreign_format(self, workspace, dataset):
        payload = workspace.query(dataset[0].values, 1).to_dict()
        payload["format"] = "something-else"
        with pytest.raises(ValidationError):
            type(workspace.query(dataset[0].values, 1)).from_dict(payload)

    def test_rejects_newer_wire_version(self, workspace, dataset):
        result = workspace.query(dataset[0].values, 1)
        payload = result.to_dict()
        payload["version"] = WIRE_VERSION + 1
        with pytest.raises(ValidationError):
            type(result).from_dict(payload)

    def test_ignores_unknown_additive_keys(self, workspace, dataset):
        result = workspace.query(dataset[0].values, 2, mode="exact")
        payload = result.to_dict()
        payload["future_extension"] = {"anything": True}
        rebuilt = type(result).from_dict(payload)
        assert_bit_identical(rebuilt, result)

    def test_rejects_non_object_payloads(self, workspace, dataset):
        result = workspace.query(dataset[0].values, 1)
        with pytest.raises(ValidationError):
            type(result).from_dict(["not", "an", "object"])


# ---------------------------------------------------------------------- #
# HTTP vs in-process bit-identity
# ---------------------------------------------------------------------- #
class TestHTTPBitIdentity:
    @pytest.mark.parametrize("mode", ["exact", "indexed"])
    def test_http_matches_in_process(self, workspace, client, dataset, mode):
        for ts in (dataset[0], dataset[7], dataset[19]):
            local = workspace.query(ts.values, 5, mode=mode,
                                    exclude_identifier=ts.identifier)
            remote = client.query(ts.values, 5, mode=mode,
                                  exclude_identifier=ts.identifier)
            assert_bit_identical(remote, local)
            assert remote.snapshot_version == local.snapshot_version

    def test_trace_attaches_over_the_wire_on_request(self, client, dataset):
        traced = client.query(dataset[0].values, 2, mode="exact", trace=True)
        assert traced.trace is not None
        assert traced.trace.stages
        untraced = client.query(dataset[0].values, 2, mode="exact")
        assert untraced.trace is None

    def test_concurrent_clients_stay_bit_identical(
            self, workspace, server, dataset):
        queries = [dataset[i] for i in range(8)]
        locals_ = [
            workspace.query(ts.values, 4, mode="exact",
                            exclude_identifier=ts.identifier)
            for ts in queries
        ]
        failures = []

        def worker(slot, ts):
            try:
                with RemoteWorkspace(server.host, server.port) as remote:
                    for _ in range(3):
                        result = remote.query(
                            ts.values, 4, mode="exact",
                            exclude_identifier=ts.identifier)
                        assert_bit_identical(result, locals_[slot])
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                failures.append(exc)

        threads = [
            threading.Thread(target=worker, args=(slot, ts))
            for slot, ts in enumerate(queries)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]


# ---------------------------------------------------------------------- #
# Sharded scatter-gather, in-process and over HTTP
# ---------------------------------------------------------------------- #
class TestSharding:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_in_process_scatter_gather_is_bit_identical(
            self, workspace, dataset, num_shards):
        sharded = split_workspace(workspace, num_shards)
        try:
            for ts in (dataset[3], dataset[11]):
                local = workspace.query(ts.values, 5, mode="exact",
                                        exclude_identifier=ts.identifier)
                merged = sharded.query(ts.values, 5, mode="exact",
                                       exclude_identifier=ts.identifier)
                assert_bit_identical(merged, local)
        finally:
            sharded.close()

    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_http_scatter_gather_is_bit_identical(
            self, workspace, dataset, num_shards):
        sharded = split_workspace(workspace, num_shards)
        try:
            with WorkspaceServer(sharded, port=0) as srv, \
                    RemoteWorkspace(srv.host, srv.port) as remote:
                for mode in ("exact", "indexed"):
                    local = workspace.query(
                        dataset[2].values, 5, mode=mode,
                        candidates=NUM_SERIES,
                        exclude_identifier=dataset[2].identifier)
                    over_http = remote.query(
                        dataset[2].values, 5, mode=mode,
                        candidates=NUM_SERIES,
                        exclude_identifier=dataset[2].identifier)
                    assert_bit_identical(over_http, local)
        finally:
            sharded.close()

    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_result_reports_per_shard_snapshot_versions(
            self, workspace, dataset, num_shards):
        sharded = split_workspace(workspace, num_shards)
        try:
            result = sharded.query(dataset[0].values, 3, mode="exact")
            populated = {
                shard_of(ts.identifier, num_shards) for ts in dataset
            }
            assert result.shard_versions is not None
            assert len(result.shard_versions) == len(populated)
            for name, version in result.shard_versions:
                assert re.fullmatch(r"shard-\d+", name)
                assert version >= 1
        finally:
            sharded.close()

    def test_placement_is_stable(self):
        assert shard_of("series-00001", 4) == shard_of("series-00001", 4)
        with pytest.raises(ValidationError):
            shard_of("x", 0)


# ---------------------------------------------------------------------- #
# Error contract
# ---------------------------------------------------------------------- #
class TestErrorContract:
    def test_malformed_json_is_400_protocol_error(self, server):
        status, _, body = raw_request(
            server, "POST", "/query", body=b"{not json",
            headers={"Content-Type": "application/json"})
        assert status == 400
        error = json.loads(body)["error"]
        assert error["type"] == "ProtocolError"
        assert error["status"] == 400

    def test_missing_values_maps_to_validation_error(self, client):
        with pytest.raises(ValidationError):
            client.query([], 3)

    def test_non_numeric_k_is_400(self, server):
        status, _, body = raw_request(
            server, "POST", "/query",
            body=json.dumps({"values": [1.0, 2.0], "k": "three"}),
            headers={"Content-Type": "application/json"})
        assert status == 400
        assert json.loads(body)["error"]["type"] == "ProtocolError"

    def test_unknown_route_is_404(self, server):
        status, _, body = raw_request(server, "GET", "/no-such-route")
        assert status == 404
        assert json.loads(body)["error"]["type"] == "NotFound"

    def test_wrong_method_is_405_with_allow_header(self, server):
        status, headers, body = raw_request(server, "GET", "/query")
        assert status == 405
        assert headers.get("Allow") == "POST"
        assert json.loads(body)["error"]["type"] == "MethodNotAllowed"

    def test_remove_of_unknown_identifier_keeps_its_type(self, client):
        with pytest.raises(DatasetError):
            client.remove("never-stored")

    def test_duplicate_identifier_is_validation_error(
            self, client, dataset):
        with pytest.raises(ValidationError):
            client.add([1.0, 2.0, 3.0], identifier=dataset[0].identifier)

    def test_oversized_body_is_413(self, workspace):
        with WorkspaceServer(workspace, port=0, max_body_bytes=256) as srv:
            status, _, body = raw_request(
                srv, "POST", "/query",
                body=json.dumps({"values": [0.5] * 4096}),
                headers={"Content-Type": "application/json"})
            assert status == 413
            assert json.loads(body)["error"]["type"] == "ProtocolError"

    def test_query_against_empty_workspace_is_workspace_error(self):
        empty = Workspace.in_memory(_config())
        with WorkspaceServer(empty, port=0) as srv, \
                RemoteWorkspace(srv.host, srv.port) as remote:
            with pytest.raises(WorkspaceError):
                remote.query([1.0, 2.0, 3.0], 1)

    def test_connection_refused_is_remote_workspace_error(self, server):
        dead = RemoteWorkspace(server.host, 1, timeout=2.0)
        with pytest.raises(RemoteWorkspaceError):
            dead.stats()


# ---------------------------------------------------------------------- #
# Mutations over the wire
# ---------------------------------------------------------------------- #
class TestRemoteMutations:
    def test_add_query_remove_round_trip(self, dataset):
        ws = Workspace.in_memory(_config())
        ws.add_dataset(dataset)
        with WorkspaceServer(ws, port=0) as srv, \
                RemoteWorkspace(srv.host, srv.port) as remote:
            before = remote.query(dataset[1].values, 1).snapshot_version
            stored = remote.add(list(dataset[1].values),
                                identifier="wire-added", label=3)
            assert stored == "wire-added"
            assert len(remote) == len(dataset) + 1
            assert "wire-added" in remote.identifiers
            result = remote.query(dataset[1].values, 2, mode="exact")
            assert "wire-added" in result.ids
            assert result.snapshot_version > before
            remote.remove("wire-added")
            assert len(remote) == len(dataset)

    def test_stats_include_server_counters(self, client):
        stats = client.stats()
        assert stats["num_series"] == NUM_SERIES
        server_stats = stats["server"]
        assert server_stats["max_inflight"] >= 1
        assert server_stats["requests_served"] >= 1

    def test_healthz_reports_ok(self, client):
        report = client.health()
        assert report["status"] == "ok"


# ---------------------------------------------------------------------- #
# Degraded reads (kill one shard)
# ---------------------------------------------------------------------- #
class TestDegradedReads:
    def test_partial_scatter_gather_after_shard_death(self, dataset):
        shards = [Workspace.in_memory(_config()) for _ in range(2)]
        for ts in dataset:
            shards[shard_of(ts.identifier, 2)].add(
                ts.values, identifier=ts.identifier, label=ts.label)
        roster = [ts.identifier for ts in dataset]
        servers = [WorkspaceServer(shard, port=0).start()
                   for shard in shards]
        try:
            clients = [
                RemoteWorkspace(srv.host, srv.port, timeout=5.0)
                for srv in servers
            ]
            partial = ShardedWorkspace(clients, roster=roster,
                                       allow_partial=True)
            strict = ShardedWorkspace(
                [RemoteWorkspace(srv.host, srv.port, timeout=5.0)
                 for srv in servers],
                roster=roster)
            complete = partial.query(dataset[0].values, 5, mode="exact")
            assert complete.failed_shards == ()

            servers[1].stop()

            survivors = {
                ts.identifier for ts in dataset
                if shard_of(ts.identifier, 2) == 0
            }
            degraded = partial.query(dataset[0].values, 5, mode="exact")
            assert degraded.failed_shards == ("shard-1",)
            assert degraded.hits
            assert set(degraded.ids) <= survivors
            assert degraded.collection_size == len(survivors)

            health = partial.health()
            assert health["status"] == "degraded"
            assert health["healthy_shards"] == 1

            with pytest.raises(WorkspaceError):
                strict.query(dataset[0].values, 5, mode="exact")
        finally:
            for srv in servers:
                srv.stop()


# ---------------------------------------------------------------------- #
# Admission control
# ---------------------------------------------------------------------- #
class _GatedWorkspace:
    """Duck-typed workspace whose query parks until released — makes the
    server's 503 overload path deterministic."""

    def __init__(self, template_result):
        self._template = template_result
        self.entered = threading.Event()
        self.release = threading.Event()

    def query(self, values, k=None, **kwargs):
        self.entered.set()
        if not self.release.wait(timeout=30):
            raise RuntimeError("gate never released")
        return self._template

    def stats(self):
        return {"num_series": 1}


class TestAdmissionControl:
    def test_overload_is_refused_with_503(self, workspace, dataset):
        template = workspace.query(dataset[0].values, 1, mode="exact")
        gated = _GatedWorkspace(template)
        with WorkspaceServer(gated, port=0, max_inflight=1,
                             max_pending=0) as srv:
            first_done = []

            def occupant():
                with RemoteWorkspace(srv.host, srv.port) as remote:
                    first_done.append(remote.query([1.0, 2.0], 1))

            thread = threading.Thread(target=occupant)
            thread.start()
            try:
                assert gated.entered.wait(timeout=10)
                with RemoteWorkspace(srv.host, srv.port) as remote:
                    with pytest.raises(RemoteWorkspaceError):
                        remote.query([1.0, 2.0], 1)
            finally:
                gated.release.set()
                thread.join(timeout=10)
            assert first_done and first_done[0].ids == template.ids
            assert srv.server_stats()["refused_total"] >= 1


# ---------------------------------------------------------------------- #
# Metrics exposition
# ---------------------------------------------------------------------- #
_METRIC_LINE = re.compile(
    r"[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+")


class TestMetricsExposition:
    def test_metrics_parse_as_prometheus_0_0_4(self, client, server):
        text = client.metrics_prometheus()
        assert text
        for line in text.splitlines():
            if not line or line.startswith(("# HELP ", "# TYPE ")):
                continue
            assert _METRIC_LINE.fullmatch(line), line
        _, headers, _ = raw_request(server, "GET", "/metrics")
        assert headers.get("Content-Type") == PROMETHEUS_CONTENT_TYPE


# ---------------------------------------------------------------------- #
# CLI flag unification
# ---------------------------------------------------------------------- #
class TestCLIUnification:
    """serve / workspace query / engine share one --mode/--k/--trace
    flag family (a single argparse parent supplies all three)."""

    SPELLINGS = [
        ["serve", "some-dir"],
        ["workspace", "query", "some-dir"],
        ["engine", "gun-small"],
    ]

    def test_every_surface_accepts_the_shared_flags(self):
        from repro.cli import _build_parser

        parser = _build_parser()
        for spelling in self.SPELLINGS:
            args = parser.parse_args(
                spelling + ["--mode", "indexed", "--k", "3", "--trace"])
            assert args.mode == "indexed"
            assert args.k == 3
            assert args.trace is True

    def test_surface_specific_defaults(self):
        from repro.cli import _build_parser

        parser = _build_parser()
        serve = parser.parse_args(["serve", "dir"])
        assert serve.mode == "auto" and serve.k is None
        query = parser.parse_args(["workspace", "query", "dir"])
        assert query.mode == "auto" and query.k == 5
        engine = parser.parse_args(["engine", "gun-small"])
        assert engine.mode == "exact"

    def test_mode_choices_reject_drift(self):
        from repro.cli import _build_parser

        parser = _build_parser()
        for spelling in self.SPELLINGS:
            with pytest.raises(SystemExit):
                parser.parse_args(spelling + ["--mode", "turbo"])
