"""Tests for the synthetic shape primitives and deformation transforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.generators import (
    bell_curve,
    dip,
    flat_segment,
    plateau,
    ramp,
    random_walk,
    sine_wave,
    step_edge,
)
from repro.datasets.transforms import (
    add_noise,
    amplitude_scale,
    baseline_shift,
    local_time_warp,
    time_shift,
    time_stretch,
)
from repro.exceptions import ValidationError


class TestGenerators:
    def test_flat_segment_constant(self):
        np.testing.assert_allclose(flat_segment(5, 2.5), 2.5)

    def test_bell_curve_peaks_at_center(self):
        curve = bell_curve(101, center=40.0, width=5.0, height=2.0)
        assert np.argmax(curve) == 40
        assert curve.max() == pytest.approx(2.0)

    def test_dip_is_negative_bell(self):
        np.testing.assert_allclose(
            dip(50, 25.0, 4.0, 1.5), -bell_curve(50, 25.0, 4.0, 1.5)
        )

    def test_plateau_height_and_extent(self):
        curve = plateau(100, start=30.0, end=70.0, height=1.0, ramp_width=2.0)
        assert curve[50] == pytest.approx(1.0, abs=0.01)
        assert curve[5] == pytest.approx(0.0, abs=0.01)
        assert curve[95] == pytest.approx(0.0, abs=0.01)

    def test_plateau_requires_ordered_edges(self):
        with pytest.raises(ValidationError):
            plateau(50, start=30.0, end=20.0)

    def test_ramp_clips_to_unit_range(self):
        curve = ramp(100, start=20.0, end=60.0, height=3.0)
        assert curve[0] == pytest.approx(0.0)
        assert curve[-1] == pytest.approx(3.0)
        assert np.all(np.diff(curve) >= -1e-12)

    def test_ramp_requires_ordered_edges(self):
        with pytest.raises(ValidationError):
            ramp(50, start=30.0, end=30.0)

    def test_step_edge_transitions_at_position(self):
        curve = step_edge(100, position=50.0, height=2.0, smoothness=1.0)
        assert curve[10] < 0.1
        assert curve[90] > 1.9
        assert curve[50] == pytest.approx(1.0, abs=0.05)

    def test_sine_wave_cycles(self):
        wave = sine_wave(200, cycles=4.0)
        # 4 cycles -> 8 zero crossings (excluding endpoints) approximately.
        crossings = np.sum(np.diff(np.signbit(wave)) != 0)
        assert 7 <= crossings <= 9

    def test_random_walk_deterministic_per_seed(self):
        a = random_walk(50, np.random.default_rng(1))
        b = random_walk(50, np.random.default_rng(1))
        np.testing.assert_allclose(a, b)

    def test_invalid_lengths_rejected(self):
        with pytest.raises(ValidationError):
            bell_curve(0, 1.0, 1.0)


class TestTransforms:
    @pytest.fixture()
    def series(self):
        t = np.linspace(0, 1, 120)
        return np.exp(-((t - 0.5) ** 2) / 0.01)

    def test_time_shift_is_circular(self, series):
        shifted = time_shift(series, 10)
        np.testing.assert_allclose(shifted[10:], series[:-10])

    def test_time_stretch_preserves_length_by_default(self, series):
        stretched = time_stretch(series, 1.3)
        assert stretched.size == series.size

    def test_time_stretch_identity_factor(self, series):
        np.testing.assert_allclose(time_stretch(series, 1.0), series, atol=1e-9)

    def test_time_stretch_invalid_factor(self, series):
        with pytest.raises(ValidationError):
            time_stretch(series, 0.0)

    def test_local_time_warp_preserves_length_and_range(self, series):
        warped = local_time_warp(series, rng=3, strength=0.3)
        assert warped.size == series.size
        assert warped.min() >= series.min() - 1e-9
        assert warped.max() <= series.max() + 1e-9

    def test_local_time_warp_zero_strength_is_identity(self, series):
        np.testing.assert_allclose(local_time_warp(series, rng=3, strength=0.0),
                                   series, atol=1e-9)

    def test_local_time_warp_preserves_feature_order(self):
        # Two bumps must remain in the same order after warping.
        t = np.linspace(0, 1, 200)
        series = np.exp(-((t - 0.3) ** 2) / 0.001) + 2 * np.exp(-((t - 0.7) ** 2) / 0.001)
        warped = local_time_warp(series, rng=11, strength=0.4)
        first_peak = np.argmax(warped[:100])
        second_peak = 100 + np.argmax(warped[100:])
        assert first_peak < second_peak
        assert warped[second_peak] > warped[first_peak]

    def test_local_time_warp_deterministic_per_seed(self, series):
        np.testing.assert_allclose(
            local_time_warp(series, rng=5), local_time_warp(series, rng=5)
        )

    def test_local_time_warp_invalid_knots(self, series):
        with pytest.raises(ValidationError):
            local_time_warp(series, rng=1, num_knots=0)

    def test_amplitude_scale(self, series):
        np.testing.assert_allclose(amplitude_scale(series, 2.0), 2.0 * series)

    def test_baseline_shift(self, series):
        np.testing.assert_allclose(baseline_shift(series, -1.0), series - 1.0)

    def test_add_noise_changes_values_but_not_length(self, series):
        noisy = add_noise(series, rng=7, noise_std=0.05)
        assert noisy.size == series.size
        assert not np.allclose(noisy, series)

    def test_add_noise_zero_std_is_identity(self, series):
        np.testing.assert_allclose(add_noise(series, rng=7, noise_std=0.0), series)

    def test_add_noise_negative_std_rejected(self, series):
        with pytest.raises(ValidationError):
            add_noise(series, rng=7, noise_std=-0.1)


class TestStreamGenerators:
    @pytest.fixture()
    def stream_rng(self):
        return np.random.default_rng(77)

    def test_make_stream_patterns_distinct_shapes(self, stream_rng):
        from repro.datasets.generators import make_stream_patterns

        patterns = make_stream_patterns(4, 64, stream_rng)
        assert len(patterns) == 4
        assert all(p.size == 64 for p in patterns)
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.allclose(patterns[i], patterns[j])

    def test_embed_pattern_stream_ground_truth(self, stream_rng):
        from repro.datasets.generators import (
            embed_pattern_stream,
            make_stream_patterns,
        )

        patterns = make_stream_patterns(2, 32, stream_rng)
        stream, truth = embed_pattern_stream(
            800, patterns, stream_rng, occurrences_per_pattern=3
        )
        assert stream.size == 800
        assert len(truth) == 6
        # Sorted, in-range, non-overlapping occurrences.
        for occ in truth:
            assert 0 <= occ.start <= occ.end < 800
            assert occ.pattern_index in (0, 1)
        for first, second in zip(truth, truth[1:]):
            assert first.start <= second.start
            assert first.end < second.start

    def test_embedded_occurrence_correlates_with_pattern(self, stream_rng):
        from repro.datasets.generators import (
            embed_pattern_stream,
            make_stream_patterns,
        )
        from repro.utils.preprocessing import resample_linear

        patterns = make_stream_patterns(1, 48, stream_rng)
        stream, truth = embed_pattern_stream(
            600, patterns, stream_rng, occurrences_per_pattern=2,
            noise_std=0.05,
        )
        for occ in truth:
            segment = stream[occ.start: occ.end + 1]
            reference = resample_linear(patterns[0], segment.size)
            correlation = np.corrcoef(segment, reference)[0, 1]
            assert correlation > 0.8

    def test_warp_occurrence_respects_time_scale_range(self, stream_rng):
        from repro.datasets.generators import warp_occurrence

        pattern = sine_wave(50, 2.0)
        for _ in range(10):
            warped = warp_occurrence(
                pattern, stream_rng, time_scale_range=(0.8, 1.25)
            )
            assert 0.8 * 50 - 1 <= warped.size <= 1.25 * 50 + 1

    def test_overfull_stream_rejected(self, stream_rng):
        from repro.datasets.generators import (
            embed_pattern_stream,
            make_stream_patterns,
        )

        patterns = make_stream_patterns(2, 40, stream_rng)
        with pytest.raises(ValidationError):
            embed_pattern_stream(
                120, patterns, stream_rng, occurrences_per_pattern=5
            )

    def test_stream_occurrence_hit_by(self):
        from repro.datasets.generators import StreamOccurrence

        occ = StreamOccurrence(pattern_index=0, start=10, end=20)
        assert occ.length == 11
        assert occ.hit_by(15, 30)
        assert occ.hit_by(0, 10)
        assert not occ.hit_by(21, 40)
