"""Tests for the experiment harness (tables and figures of Section 4).

The experiments are exercised at very small scale here (few series, few
algorithms) so the suite stays fast; the paper-shape assertions (who wins,
in which direction) are in tests/test_integration.py which uses slightly
larger samples.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    run_fig13,
    run_fig14,
    run_fig15,
    run_fig16,
    run_fig17,
    run_fig18,
    run_table1,
    run_table2,
)
from repro.experiments.runner import (
    AlgorithmSpec,
    default_algorithms,
    evaluate_dataset,
    load_experiment_dataset,
)

SMALL_ALGORITHMS = [
    AlgorithmSpec("(fc,fw) 10%", "fc,fw", 0.10),
    AlgorithmSpec("(ac,aw)", "ac,aw", 0.10),
]


class TestRunnerInfrastructure:
    def test_default_algorithm_roster_matches_paper(self):
        labels = [spec.label for spec in default_algorithms()]
        assert "(fc,fw) 6%" in labels
        assert "(fc,fw) 20%" in labels
        assert "(ac,aw)" in labels
        assert "(ac2,aw)" in labels
        assert len(labels) == 9

    def test_include_full_prepends_reference(self):
        labels = [spec.label for spec in default_algorithms(include_full=True)]
        assert labels[0] == "dtw"

    def test_load_experiment_dataset_subsamples(self):
        dataset = load_experiment_dataset("gun-small", num_series=5, seed=1)
        assert len(dataset) == 5

    def test_load_experiment_dataset_full_when_not_capped(self):
        dataset = load_experiment_dataset("gun-small", num_series=None, seed=1)
        assert len(dataset) == 16

    def test_evaluate_dataset_produces_all_indexes(self):
        dataset = load_experiment_dataset("gun-small", num_series=5, seed=1)
        evaluation = evaluate_dataset(dataset, SMALL_ALGORITHMS, ks=(2,))
        assert set(evaluation.indexes) == {spec.label for spec in SMALL_ALGORITHMS}
        assert set(evaluation.evaluations) == set(evaluation.indexes)
        assert evaluation.reference.constraint == "full"

    def test_algorithm_spec_config_override(self):
        spec = AlgorithmSpec("x", "fc,fw", 0.06)
        assert spec.make_config().width_fraction == pytest.approx(0.06)


class TestExperimentResultObject:
    def test_text_rendering_contains_rows(self):
        result = run_table1(num_series=5)
        text = result.to_text()
        assert "gun" in text
        assert "Table 1" in text

    def test_csv_rendering_has_header_and_rows(self):
        result = run_table1(num_series=5)
        lines = result.to_csv().strip().split("\n")
        assert len(lines) == 1 + len(result.rows)

    def test_row_dict_indexes_by_first_column(self):
        result = run_table1(num_series=5)
        mapping = result.row_dict()
        assert any(key.startswith("gun") for key in mapping)


class TestTable1:
    def test_rows_cover_requested_datasets(self):
        result = run_table1(dataset_names=("gun", "trace"), num_series=4)
        assert len(result.rows) == 2

    def test_lengths_match_paper(self):
        result = run_table1(num_series=4)
        lengths = {row[0].split("-")[0]: row[1] for row in result.rows}
        assert lengths["gun"] == 150
        assert lengths["trace"] == 275
        assert lengths["50words"] == 270


class TestTable2:
    def test_scale_counts_positive_and_summed(self):
        result = run_table2(dataset_names=("gun",), num_series=3)
        row = result.rows[0]
        fine, medium, rough, total = row[1], row[2], row[3], row[4]
        assert fine > 0
        assert total == pytest.approx(fine + medium + rough)

    def test_metadata_records_octaves(self):
        result = run_table2(dataset_names=("gun",), num_series=2)
        assert result.metadata["num_octaves"] == 3


class TestFigureExperiments:
    def test_fig13_row_structure(self):
        result = run_fig13(dataset_names=("gun-small",), num_series=5,
                           algorithms=SMALL_ALGORITHMS, ks=(2,))
        assert len(result.rows) == len(SMALL_ALGORITHMS)
        for row in result.rows:
            accuracy, time_g, cell_g = row[2], row[3], row[4]
            assert 0.0 <= accuracy <= 1.0
            assert cell_g > 0.0
            assert np.isfinite(time_g)

    def test_fig14_reports_distance_error(self):
        result = run_fig14(dataset_names=("gun-small",), num_series=5,
                           algorithms=SMALL_ALGORITHMS)
        errors = {row[1]: row[2] for row in result.rows}
        assert all(value >= 0.0 for value in errors.values())

    def test_fig15_reports_intra_class_errors(self):
        result = run_fig15(dataset_name="trace-small", num_series=6,
                           algorithms=SMALL_ALGORITHMS)
        assert result.metadata["num_intra_class_pairs"] > 0
        for row in result.rows:
            assert row[1] >= 0.0

    def test_fig16_reports_classification_accuracy(self):
        result = run_fig16(dataset_name="50words-tiny", num_series=8,
                           algorithms=SMALL_ALGORITHMS, ks=(2,))
        for row in result.rows:
            assert 0.0 <= row[1] <= 1.0

    def test_fig17_time_breakdown_consistent(self):
        result = run_fig17(dataset_names=("gun-small",), num_series=5,
                           algorithms=SMALL_ALGORITHMS)
        for row in result.rows:
            matching, dp, total, share = row[2], row[3], row[4], row[5]
            assert total == pytest.approx(matching + dp)
            assert 0.0 <= share <= 1.0

    def test_fig17_fixed_core_has_no_matching_time(self):
        result = run_fig17(dataset_names=("gun-small",), num_series=5,
                           algorithms=SMALL_ALGORITHMS)
        by_algorithm = {row[1]: row for row in result.rows}
        assert by_algorithm["(fc,fw) 10%"][2] == pytest.approx(0.0)
        assert by_algorithm["(ac,aw)"][2] > 0.0

    def test_fig18_sweeps_descriptor_lengths(self):
        result = run_fig18(dataset_names=("gun-small",), num_series=4,
                           descriptor_lengths=(4, 16),
                           algorithms=[AlgorithmSpec("(ac,aw)", "ac,aw", 0.10)],
                           k=2)
        lengths = {row[1] for row in result.rows}
        assert lengths == {4, 16}
        assert len(result.rows) == 2

    def test_registry_contains_every_paper_experiment(self):
        # Every table/figure of the paper has a registered runner; extension
        # studies (e.g. the noise sweep) may add further entries.
        assert {
            "table1", "table2", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18"
        } <= set(EXPERIMENTS)
