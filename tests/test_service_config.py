"""Tests for the Workspace configuration objects and their persistence."""

from __future__ import annotations

import json

import pytest

from repro.core.config import DescriptorConfig, SDTWConfig
from repro.exceptions import ConfigurationError
from repro.service import (
    DEFAULT_WORKSPACE_CONFIG,
    EngineConfig,
    IndexConfig,
    ServingConfig,
    WorkspaceConfig,
)


class TestSectionDefaults:
    def test_default_sections_compose(self):
        config = WorkspaceConfig()
        assert isinstance(config.sdtw, SDTWConfig)
        assert isinstance(config.engine, EngineConfig)
        assert isinstance(config.index, IndexConfig)
        assert isinstance(config.serving, ServingConfig)
        assert config.default_k >= 1

    def test_module_default_matches_fresh_instance(self):
        assert DEFAULT_WORKSPACE_CONFIG == WorkspaceConfig()


class TestValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(backend="gpu")

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(num_workers=0)

    def test_invalid_index_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            IndexConfig(num_codewords=0)
        with pytest.raises(ConfigurationError):
            IndexConfig(num_shards=0)
        with pytest.raises(ConfigurationError):
            IndexConfig(candidate_budget=0)

    def test_invalid_serving_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ServingConfig(batch_window_ms=-1.0)
        with pytest.raises(ConfigurationError):
            ServingConfig(max_batch=0)

    def test_invalid_default_k_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkspaceConfig(default_k=0)


class TestRoundTrip:
    def test_default_round_trip_is_identity(self):
        config = WorkspaceConfig()
        assert WorkspaceConfig.from_dict(config.to_dict()) == config

    def test_non_default_round_trip_is_identity(self):
        config = WorkspaceConfig(
            sdtw=SDTWConfig(descriptor=DescriptorConfig(num_bins=16),
                            width_fraction=0.06),
            engine=EngineConfig(constraint="ac,aw", backend="vectorized",
                                prune=False, batch_size=8),
            index=IndexConfig(num_codewords=64, num_shards=2,
                              candidate_budget=25, seed=11, mmap=False),
            serving=ServingConfig(micro_batch=True, batch_window_ms=1.0,
                                  max_batch=8),
            default_k=3,
        )
        rebuilt = WorkspaceConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.sdtw.descriptor.num_bins == 16
        assert rebuilt.engine.backend == "vectorized"
        assert rebuilt.serving.micro_batch is True

    def test_to_dict_is_json_serialisable(self):
        payload = json.dumps(WorkspaceConfig().to_dict())
        assert WorkspaceConfig.from_dict(json.loads(payload)) == WorkspaceConfig()

    def test_section_round_trips(self):
        for section in (
            EngineConfig(constraint="itakura", itakura_max_slope=3.0),
            IndexConfig(seed=3),
            ServingConfig(micro_batch=True),
        ):
            assert type(section).from_dict(section.to_dict()) == section

    def test_from_dict_rejects_bad_values(self):
        payload = WorkspaceConfig().to_dict()
        payload["engine"]["backend"] = "bogus"
        with pytest.raises(ConfigurationError):
            WorkspaceConfig.from_dict(payload)
