"""Tests for the inverted index, shard storage and writer/reader."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DescriptorConfig, SDTWConfig
from repro.core.features import extract_salient_features
from repro.datasets.synthetic import make_gun_like
from repro.exceptions import DatasetError, ValidationError
from repro.indexing import (
    Codebook,
    CodebookConfig,
    IndexReader,
    IndexShard,
    IndexWriter,
    InvertedIndex,
    mmap_npz,
)

CONFIG = SDTWConfig(descriptor=DescriptorConfig(num_bins=16))


def _toy_bags():
    """Three series over a 4-codeword space with hand-checkable overlap."""
    return [
        (np.array([0, 1], dtype=np.int32), np.array([2.0, 1.0])),
        (np.array([1, 2], dtype=np.int32), np.array([1.0, 1.0])),
        (np.array([3], dtype=np.int32), np.array([1.0])),
    ]


@pytest.fixture(scope="module")
def built():
    dataset = make_gun_like(num_series=15, length=96, seed=9)
    features = [extract_salient_features(ts.values, CONFIG) for ts in dataset]
    lengths = [ts.values.size for ts in dataset]
    codebook = Codebook(
        CodebookConfig.for_sdtw(CONFIG, num_codewords=32, seed=1)
    ).fit(features, lengths)
    bags = [codebook.bag(f, n) for f, n in zip(features, lengths)]
    index = InvertedIndex.from_bags(bags, codebook.num_codewords, num_shards=3)
    identifiers = [f"series-{i:03d}" for i in range(len(dataset))]
    labels = dataset.labels
    query_bag = codebook.bag(features[0], lengths[0], query=True)
    return index, codebook, identifiers, labels, query_bag


class TestInvertedIndexScoring:
    def test_manual_tfidf_scores(self):
        index = InvertedIndex.from_bags(_toy_bags(), 4, num_shards=1)
        # Series 0 queried against the index must score itself 1.0
        # (normalised dot with itself) and share only codeword 1 with
        # series 1.
        scores, touched = index.scores(_toy_bags()[0])
        assert scores[0] == pytest.approx(1.0)
        assert touched.tolist() == [True, True, False]
        assert 0.0 < scores[1] < scores[0]
        assert scores[2] == 0.0

    def test_disjoint_bags_never_touch(self):
        index = InvertedIndex.from_bags(_toy_bags(), 4, num_shards=2)
        scores, touched = index.scores(_toy_bags()[2])
        assert touched.tolist() == [False, False, True]
        assert scores[2] == pytest.approx(1.0)

    def test_candidates_ranked_then_padded(self):
        index = InvertedIndex.from_bags(_toy_bags(), 4, num_shards=1)
        ranked = index.candidates(_toy_bags()[0], limit=3)
        # Scored series first (0 then 1), untouched series 2 pads.
        assert ranked.tolist() == [0, 1, 2]
        assert index.candidates(_toy_bags()[0], limit=1).tolist() == [0]

    def test_limit_beyond_collection_returns_everything(self):
        index = InvertedIndex.from_bags(_toy_bags(), 4)
        assert index.candidates(_toy_bags()[2], limit=99).size == 3

    def test_empty_query_bag_pads_in_index_order(self):
        index = InvertedIndex.from_bags(_toy_bags(), 4)
        empty = (np.zeros(0, dtype=np.int32), np.zeros(0))
        assert index.candidates(empty, limit=2).tolist() == [0, 1]

    def test_out_of_range_codeword_rejected(self):
        index = InvertedIndex.from_bags(_toy_bags(), 4)
        bad = (np.array([7], dtype=np.int32), np.array([1.0]))
        with pytest.raises(ValidationError):
            index.scores(bad)

    def test_sharding_preserves_scores(self, built):
        index, codebook, _, _, query_bag = built
        bags_scores = index.scores(query_bag)[0]
        # Rebuild with a different shard count; scores must not move.
        dataset = make_gun_like(num_series=15, length=96, seed=9)
        features = [extract_salient_features(ts.values, CONFIG) for ts in dataset]
        lengths = [ts.values.size for ts in dataset]
        bags = [codebook.bag(f, n) for f, n in zip(features, lengths)]
        other = InvertedIndex.from_bags(bags, codebook.num_codewords, num_shards=7)
        assert np.array_equal(other.scores(query_bag)[0], bags_scores)


class TestShardStorage:
    def test_save_open_mmap_round_trip(self, built, tmp_path):
        index = built[0]
        shard = index.shards[0]
        path = tmp_path / "shard.npz"
        shard.save(path)
        reopened = IndexShard.open(
            path, shard.first_codeword, shard.last_codeword, mmap=True
        )
        assert reopened.is_memory_mapped
        assert np.array_equal(reopened.codeword_ids, shard.codeword_ids)
        assert np.array_equal(reopened.offsets, shard.offsets)
        assert np.array_equal(reopened.series, shard.series)
        assert np.array_equal(reopened.weights, shard.weights)

    def test_open_without_mmap_loads_plain_arrays(self, built, tmp_path):
        shard = built[0].shards[0]
        path = tmp_path / "shard.npz"
        shard.save(path)
        reopened = IndexShard.open(
            path, shard.first_codeword, shard.last_codeword, mmap=False
        )
        assert not reopened.is_memory_mapped
        assert np.array_equal(reopened.series, shard.series)

    def test_mmap_npz_maps_stored_members(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, a=np.arange(10), b=np.linspace(0, 1, 5))
        arrays = mmap_npz(path)
        assert isinstance(arrays["a"], np.memmap)
        assert np.array_equal(arrays["a"], np.arange(10))
        assert np.array_equal(arrays["b"], np.linspace(0, 1, 5))

    def test_mmap_npz_falls_back_on_compressed_members(self, tmp_path):
        path = tmp_path / "compressed.npz"
        np.savez_compressed(path, a=np.arange(10))
        arrays = mmap_npz(path)
        assert not isinstance(arrays["a"], np.memmap)
        assert np.array_equal(arrays["a"], np.arange(10))

    def test_postings_of_missing_codeword_is_empty(self, built):
        shard = built[0].shards[0]
        present = set(np.asarray(shard.codeword_ids).tolist())
        missing = next(
            c for c in range(shard.first_codeword, shard.last_codeword)
            if c not in present
        ) if len(present) < shard.last_codeword - shard.first_codeword else None
        if missing is None:
            pytest.skip("every codeword of the range is present")
        series, weights = shard.postings_of(missing)
        assert series.size == 0 and weights.size == 0


class TestWriterReader:
    def test_round_trip_bit_identical_candidates_and_scores(
        self, built, tmp_path
    ):
        index, codebook, identifiers, labels, query_bag = built
        IndexWriter(tmp_path / "idx").write(index, codebook, identifiers, labels)
        reader = IndexReader.open(tmp_path / "idx")
        assert reader.index.is_memory_mapped
        assert reader.identifiers == identifiers
        assert reader.labels == labels
        original_scores, original_touched = index.scores(query_bag)
        reopened_scores, reopened_touched = reader.index.scores(query_bag)
        # Bit-identical, not approximately equal.
        assert np.array_equal(original_scores, reopened_scores)
        assert np.array_equal(original_touched, reopened_touched)
        for limit in (1, 5, len(identifiers)):
            assert np.array_equal(
                index.candidates(query_bag, limit),
                reader.index.candidates(query_bag, limit),
            )

    def test_reader_without_mmap(self, built, tmp_path):
        index, codebook, identifiers, labels, query_bag = built
        IndexWriter(tmp_path / "idx").write(index, codebook, identifiers, labels)
        reader = IndexReader.open(tmp_path / "idx", mmap=False)
        assert not reader.index.is_memory_mapped
        assert np.array_equal(
            index.scores(query_bag)[0], reader.index.scores(query_bag)[0]
        )

    def test_codebook_round_trips_through_directory(self, built, tmp_path):
        index, codebook, identifiers, labels, _ = built
        IndexWriter(tmp_path / "idx").write(index, codebook, identifiers, labels)
        reader = IndexReader.open(tmp_path / "idx")
        assert np.array_equal(reader.codebook.centroids, codebook.centroids)
        assert reader.codebook.config == codebook.config

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            IndexReader.open(tmp_path / "nowhere")

    def test_identifier_count_mismatch_rejected(self, built, tmp_path):
        index, codebook, identifiers, labels, _ = built
        with pytest.raises(ValidationError):
            IndexWriter(tmp_path / "idx").write(
                index, codebook, identifiers[:-1], labels
            )

    def test_stats_rows_cover_every_shard(self, built, tmp_path):
        index, codebook, identifiers, labels, _ = built
        IndexWriter(tmp_path / "idx").write(index, codebook, identifiers, labels)
        reader = IndexReader.open(tmp_path / "idx")
        assert len(reader.stats_rows()) == len(index.shards)


class TestValidation:
    def test_shards_must_cover_codeword_space(self):
        index = InvertedIndex.from_bags(_toy_bags(), 4)
        shard = index.shards[0]
        with pytest.raises(ValidationError):
            InvertedIndex(3, 8, [shard], np.ones(8))

    def test_idf_length_must_match(self):
        index = InvertedIndex.from_bags(_toy_bags(), 4)
        with pytest.raises(ValidationError):
            InvertedIndex(3, 4, index.shards, np.ones(5))

    def test_bag_codeword_out_of_range_rejected(self):
        bad = [(np.array([9], dtype=np.int32), np.array([1.0]))]
        with pytest.raises(ValidationError):
            InvertedIndex.from_bags(bad, 4)


class TestRebuildIdempotence:
    def test_rewrite_removes_stale_shards(self, built, tmp_path):
        import os

        index, codebook, identifiers, labels, query_bag = built
        target = tmp_path / "idx"
        IndexWriter(target).write(index, codebook, identifiers, labels)
        # Fake a leftover shard from a previous, wider build.
        stale = target / "shard-0099.npz"
        np.savez(stale, junk=np.arange(3))
        IndexWriter(target).write(index, codebook, identifiers, labels)
        assert not stale.exists()
        shard_files = sorted(
            name for name in os.listdir(target)
            if name.startswith("shard-") and name.endswith(".npz")
        )
        assert len(shard_files) == len(index.shards)
        reader = IndexReader.open(target)
        assert np.array_equal(
            index.scores(query_bag)[0], reader.index.scores(query_bag)[0]
        )
