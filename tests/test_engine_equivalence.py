"""Cross-backend equivalence suite for the batch distance engine.

Every future backend or optimisation PR must prove it computes the same
distances: the serial, vectorized and multiprocessing backends are run
over the same synthetic collections, for every constraint family (full,
Sakoe–Chiba, Itakura and the four sDTW locally relevant types), and must
return identical distance matrices and identical k-NN rankings (within
1e-9 — in practice the kernels are bit-identical by construction).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import make_gun_like
from repro.engine import DistanceEngine
from repro.retrieval.knn import batch_top_k

BACKENDS = ("serial", "vectorized", "multiprocessing")
CONSTRAINTS = ("full", "fc,fw", "itakura", "fc,aw", "ac,fw", "ac,aw", "ac2,aw")

TOLERANCE = 1e-9


@pytest.fixture(scope="module")
def equal_length_collection():
    """A small labelled collection where every series has the same length."""
    dataset = make_gun_like(num_series=10, seed=21)
    series = [(ts.identifier or f"s{i}", ts.values, ts.label)
              for i, ts in enumerate(dataset)]
    return series


@pytest.fixture(scope="module")
def unequal_length_collection(rng):
    """Random-walk series of varying lengths (exercises every fallback)."""
    series = []
    for i in range(8):
        length = int(rng.integers(40, 80))
        values = np.cumsum(rng.normal(size=length))
        series.append((f"walk-{i}", values, i % 2))
    return series


def _build_engine(collection, constraint, backend):
    engine = DistanceEngine(constraint, backend=backend, num_workers=2,
                            batch_size=4)
    for identifier, values, label in collection:
        engine.add(values, identifier=identifier, label=label)
    return engine


def _run_all_backends(collection, constraint, k=3, num_queries=3):
    queries = [values for _, values, _ in collection[:num_queries]]
    excludes = [identifier for identifier, _, _ in collection[:num_queries]]
    outcomes = {}
    for backend in BACKENDS:
        engine = _build_engine(collection, constraint, backend)
        knn = engine.knn(queries, k=k, exclude_identifiers=excludes)
        matrix = engine.distance_matrix(queries).distances
        outcomes[backend] = (knn, matrix)
    return outcomes


class TestEqualLengthCollections:
    @pytest.mark.parametrize("constraint", CONSTRAINTS)
    def test_backends_agree(self, equal_length_collection, constraint):
        outcomes = _run_all_backends(equal_length_collection, constraint)
        reference_knn, reference_matrix = outcomes["serial"]
        for backend in BACKENDS[1:]:
            knn, matrix = outcomes[backend]
            # Identical k-NN rankings (indices, in rank order).
            assert knn.rankings() == reference_knn.rankings(), (
                f"{backend} ranking diverged for {constraint}"
            )
            # Identical hit distances.
            for ref_result, result in zip(reference_knn.results, knn.results):
                ref_distances = [hit.distance for hit in ref_result.hits]
                distances = [hit.distance for hit in result.hits]
                assert distances == pytest.approx(ref_distances, abs=TOLERANCE)
            # Identical distance matrices.
            np.testing.assert_allclose(
                matrix, reference_matrix, atol=TOLERANCE, rtol=0.0,
                err_msg=f"{backend} matrix diverged for {constraint}",
            )

    @pytest.mark.parametrize("constraint", CONSTRAINTS)
    def test_cascade_matches_exhaustive_scan(self, equal_length_collection,
                                             constraint):
        """Pruning + abandoning must never change the k-NN result."""
        cascade = _build_engine(equal_length_collection, constraint, "vectorized")
        exhaustive = DistanceEngine(constraint, backend="serial", prune=False,
                                    early_abandon=False)
        for identifier, values, label in equal_length_collection:
            exhaustive.add(values, identifier=identifier, label=label)
        queries = [values for _, values, _ in equal_length_collection[:3]]
        excludes = [ident for ident, _, _ in equal_length_collection[:3]]
        got = cascade.knn(queries, k=3, exclude_identifiers=excludes)
        want = exhaustive.knn(queries, k=3, exclude_identifiers=excludes)
        assert got.rankings() == want.rankings()
        assert want.stats.pruned == 0
        assert want.stats.dtw_abandoned == 0

    def test_matrix_rankings_match_search_rankings(self, equal_length_collection):
        """distance_matrix + batch_top_k reproduces the knn() rankings."""
        engine = _build_engine(equal_length_collection, "fc,fw", "vectorized")
        queries = [values for _, values, _ in equal_length_collection]
        matrix = engine.distance_matrix(queries).distances
        expected = batch_top_k(matrix, 3, exclude=list(range(len(queries))))
        knn = engine.knn(
            queries, k=3,
            exclude_identifiers=[i for i, _, _ in equal_length_collection],
        )
        assert [list(r) for r in knn.rankings()] == expected


class TestUnequalLengthCollections:
    @pytest.mark.parametrize("constraint", ("full", "fc,fw", "itakura", "ac,aw"))
    def test_backends_agree(self, unequal_length_collection, constraint):
        outcomes = _run_all_backends(unequal_length_collection, constraint)
        reference_knn, reference_matrix = outcomes["serial"]
        for backend in BACKENDS[1:]:
            knn, matrix = outcomes[backend]
            assert knn.rankings() == reference_knn.rankings()
            np.testing.assert_allclose(
                matrix, reference_matrix, atol=TOLERANCE, rtol=0.0
            )

    def test_cascade_matches_exhaustive_scan(self, unequal_length_collection):
        cascade = _build_engine(unequal_length_collection, "full", "serial")
        exhaustive = DistanceEngine("full", backend="serial", prune=False,
                                    early_abandon=False)
        for identifier, values, label in unequal_length_collection:
            exhaustive.add(values, identifier=identifier, label=label)
        queries = [values for _, values, _ in unequal_length_collection[:3]]
        got = cascade.knn(queries, k=4)
        want = exhaustive.knn(queries, k=4)
        assert got.rankings() == want.rankings()


class TestBackendPlumbing:
    def test_multiprocessing_single_query_falls_back_in_process(
        self, equal_length_collection
    ):
        engine = _build_engine(equal_length_collection, "fc,fw",
                               "multiprocessing")
        result = engine.knn([equal_length_collection[0][1]], k=2)
        assert len(result) == 1
        assert len(result[0].hits) == 2

    def test_results_arrive_in_query_order(self, equal_length_collection):
        engine = _build_engine(equal_length_collection, "fc,fw",
                               "multiprocessing")
        queries = [values for _, values, _ in equal_length_collection[:4]]
        excludes = [i for i, _, _ in equal_length_collection[:4]]
        batch = engine.knn(queries, k=1, exclude_identifiers=excludes)
        serial = _build_engine(equal_length_collection, "fc,fw", "serial")
        for qi, result in enumerate(batch.results):
            want = serial.query(queries[qi], 1,
                                exclude_identifier=excludes[qi])
            assert result.indices == want.indices
