"""Tests for warp-path representation and utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtw.path import (
    WarpPath,
    is_valid_warp_path,
    path_cost,
    path_from_arrays,
    path_to_alignment,
)
from repro.exceptions import ValidationError


def diagonal_path(n: int) -> WarpPath:
    return WarpPath(tuple((i, i) for i in range(n)))


class TestWarpPath:
    def test_length_and_iteration(self):
        path = diagonal_path(4)
        assert len(path) == 4
        assert list(path)[0] == (0, 0)

    def test_n_and_m_inferred_from_endpoint(self):
        path = WarpPath(((0, 0), (1, 0), (1, 1), (2, 2)))
        assert path.n == 3
        assert path.m == 3

    def test_empty_path_rejected(self):
        with pytest.raises(ValidationError):
            WarpPath(())

    def test_to_arrays_round_trip(self):
        path = diagonal_path(5)
        i_arr, j_arr = path.to_arrays()
        rebuilt = path_from_arrays(i_arr, j_arr)
        assert rebuilt.pairs == path.pairs

    def test_expansion_of_detects_subset(self):
        coarse = WarpPath(((0, 0), (1, 1)))
        fine = WarpPath(((0, 0), (0, 1), (1, 1)))
        assert fine.expansion_of(coarse)
        assert not coarse.expansion_of(fine)

    def test_is_valid_on_valid_path(self):
        assert diagonal_path(6).is_valid()


class TestValidity:
    def test_must_start_at_origin(self):
        assert not is_valid_warp_path([(1, 0), (1, 1)])

    def test_must_end_at_given_corner(self):
        assert not is_valid_warp_path([(0, 0), (1, 1)], n=3, m=3)
        assert is_valid_warp_path([(0, 0), (1, 1), (2, 2)], n=3, m=3)

    def test_step_constraint_enforced(self):
        assert not is_valid_warp_path([(0, 0), (2, 2)])
        assert not is_valid_warp_path([(0, 0), (0, 0)])
        assert not is_valid_warp_path([(0, 0), (1, 1), (0, 1)])

    def test_length_bounds_hold(self):
        # K must satisfy max(N, M) <= K <= N + M.
        assert is_valid_warp_path([(0, 0), (1, 0), (1, 1)])

    def test_single_cell_path_is_valid(self):
        # A single-cell path is the valid alignment of two length-1 series.
        assert is_valid_warp_path([(0, 0)], n=1, m=1)
        assert is_valid_warp_path([(0, 0)])


class TestPathCost:
    def test_cost_of_diagonal_path_on_identical_series(self):
        series = np.linspace(0, 1, 8)
        assert path_cost(diagonal_path(8), series, series) == pytest.approx(0.0)

    def test_cost_accumulates_element_distances(self):
        x = [0.0, 1.0]
        y = [0.0, 3.0]
        path = WarpPath(((0, 0), (1, 1)))
        assert path_cost(path, x, y) == pytest.approx(2.0)

    def test_repeated_indices_count_every_step(self):
        x = [0.0, 1.0]
        y = [2.0]
        path = WarpPath(((0, 0), (1, 0)))
        assert path_cost(path, x, y) == pytest.approx(2.0 + 1.0)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValidationError):
            path_cost([(0, 5)], [1.0, 2.0], [1.0, 2.0])

    def test_negative_index_rejected(self):
        with pytest.raises(ValidationError):
            path_cost([(0, 0), (-1, 0)], [1.0, 2.0], [1.0, 2.0])

    def test_empty_path_rejected(self):
        with pytest.raises(ValidationError):
            path_cost([], [1.0], [1.0])

    def test_warp_path_cost_method_matches_function(self):
        x = np.array([0.0, 1.0, 0.5])
        y = np.array([0.2, 0.9, 0.4])
        path = diagonal_path(3)
        assert path.cost(x, y) == pytest.approx(path_cost(path, x, y))


class TestAlignmentExpansion:
    def test_path_to_alignment_covers_every_index(self):
        path = WarpPath(((0, 0), (1, 0), (2, 1), (3, 2)))
        x_to_y, y_to_x = path_to_alignment(path)
        assert len(x_to_y) == 4
        assert len(y_to_x) == 3
        assert all(matched for matched in x_to_y)
        assert all(matched for matched in y_to_x)

    def test_path_from_arrays_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            path_from_arrays([0, 1], [0])
