"""Tests for dominant salient-feature matching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MatchingConfig, SDTWConfig, DescriptorConfig
from repro.core.features import SalientFeature, extract_salient_features
from repro.core.matching import MatchedPair, match_salient_features


def make_feature(position, sigma=2.0, amplitude=1.0, descriptor=None,
                 mean_amplitude=None):
    descriptor = np.asarray(
        descriptor if descriptor is not None else [0.5, 0.5, 0.5, 0.5], dtype=float
    )
    return SalientFeature(
        position=float(position),
        sigma=float(sigma),
        scope_start=float(position) - 3 * sigma,
        scope_end=float(position) + 3 * sigma,
        octave=0,
        level=0,
        amplitude=float(amplitude),
        mean_amplitude=float(mean_amplitude if mean_amplitude is not None else amplitude),
        dog_value=0.1,
        scale_class="fine",
        descriptor=descriptor,
    )


class TestMatchedPair:
    def test_similarity_decreases_with_distance(self):
        close = MatchedPair(make_feature(0), make_feature(1), 0.1)
        far = MatchedPair(make_feature(0), make_feature(1), 2.0)
        assert close.descriptor_similarity > far.descriptor_similarity

    def test_center_offset(self):
        pair = MatchedPair(make_feature(10), make_feature(14), 0.0)
        assert pair.center_offset == pytest.approx(4.0)


class TestMatching:
    def test_empty_inputs_give_no_matches(self):
        assert match_salient_features([], [make_feature(0)]) == []
        assert match_salient_features([make_feature(0)], []) == []

    def test_identical_feature_sets_match_one_to_one(self):
        descriptors = [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
        ]
        fx = [make_feature(10 * i, descriptor=d) for i, d in enumerate(descriptors)]
        fy = [make_feature(10 * i + 2, descriptor=d) for i, d in enumerate(descriptors)]
        matches = match_salient_features(fx, fy)
        assert len(matches) == 3
        for pair in matches:
            assert pair.descriptor_distance == pytest.approx(0.0)

    def test_amplitude_gate_blocks_dissimilar_amplitudes(self):
        fx = [make_feature(10, amplitude=0.0)]
        fy = [make_feature(12, amplitude=10.0)]
        config = MatchingConfig(max_amplitude_difference=1.0)
        assert match_salient_features(fx, fy, config) == []

    def test_scale_gate_blocks_dissimilar_scales(self):
        fx = [make_feature(10, sigma=1.0)]
        fy = [make_feature(12, sigma=16.0)]
        config = MatchingConfig(max_scale_ratio=4.0)
        assert match_salient_features(fx, fy, config) == []

    def test_scale_gate_allows_similar_scales(self):
        fx = [make_feature(10, sigma=2.0)]
        fy = [make_feature(12, sigma=3.0)]
        config = MatchingConfig(max_scale_ratio=4.0, require_distinctive=False)
        assert len(match_salient_features(fx, fy, config)) == 1

    def test_distinctiveness_rejects_ambiguous_matches(self):
        # Two nearly identical candidates: the ratio test must reject.
        fx = [make_feature(10, descriptor=[1.0, 0.0, 0.0, 0.0])]
        fy = [
            make_feature(12, descriptor=[0.95, 0.05, 0.0, 0.0]),
            make_feature(40, descriptor=[0.94, 0.06, 0.0, 0.0]),
        ]
        strict = MatchingConfig(distinctiveness_ratio=1.5)
        assert match_salient_features(fx, fy, strict) == []

    def test_distinctiveness_can_be_disabled(self):
        fx = [make_feature(10, descriptor=[1.0, 0.0, 0.0, 0.0])]
        fy = [
            make_feature(12, descriptor=[0.95, 0.05, 0.0, 0.0]),
            make_feature(40, descriptor=[0.94, 0.06, 0.0, 0.0]),
        ]
        relaxed = MatchingConfig(distinctiveness_ratio=1.5, require_distinctive=False)
        assert len(match_salient_features(fx, fy, relaxed)) == 1

    def test_best_candidate_selected_by_descriptor_distance(self):
        fx = [make_feature(10, descriptor=[1.0, 0.0, 0.0, 0.0])]
        fy = [
            make_feature(5, descriptor=[0.0, 1.0, 0.0, 0.0]),
            make_feature(80, descriptor=[1.0, 0.0, 0.0, 0.0]),
        ]
        config = MatchingConfig(require_distinctive=False)
        matches = match_salient_features(fx, fy, config)
        assert len(matches) == 1
        assert matches[0].feature_y.position == pytest.approx(80.0)

    def test_matches_sorted_by_first_series_position(self):
        descriptors = [[1.0, 0, 0, 0], [0, 1.0, 0, 0], [0, 0, 1.0, 0]]
        fx = [make_feature(pos, descriptor=d)
              for pos, d in zip((50, 10, 30), descriptors)]
        fy = [make_feature(pos + 1, descriptor=d)
              for pos, d in zip((50, 10, 30), descriptors)]
        matches = match_salient_features(fx, fy)
        positions = [pair.feature_x.position for pair in matches]
        assert positions == sorted(positions)

    def test_real_series_pair_produces_matches(self, bumpy_pair):
        x, y = bumpy_pair
        config = SDTWConfig(descriptor=DescriptorConfig(num_bins=16))
        fx = extract_salient_features(x, config)
        fy = extract_salient_features(y, config)
        matches = match_salient_features(fx, fy, config.matching)
        assert len(matches) >= 2

    def test_mixed_descriptor_lengths_compared_on_common_prefix(self):
        fx = [make_feature(10, descriptor=[1.0, 0.0, 0.0, 0.0, 0.7, 0.7])]
        fy = [make_feature(12, descriptor=[1.0, 0.0, 0.0, 0.0])]
        config = MatchingConfig(require_distinctive=False)
        matches = match_salient_features(fx, fy, config)
        assert len(matches) == 1
        assert matches[0].descriptor_distance == pytest.approx(0.0)
