"""Tests for the 1-D Gaussian scale space / DoG pyramid."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ScaleSpaceConfig
from repro.core.scale_space import ScaleLevel, build_scale_space, classify_scale
from repro.exceptions import EmptySeriesError


@pytest.fixture(scope="module")
def example_series():
    t = np.linspace(0, 1, 256)
    return (
        np.exp(-((t - 0.3) ** 2) / 0.001)
        + 0.6 * np.exp(-((t - 0.7) ** 2) / 0.01)
    )


class TestBuildScaleSpace:
    def test_number_of_levels_per_octave(self, example_series):
        config = ScaleSpaceConfig(num_octaves=2, levels_per_octave=3)
        space = build_scale_space(example_series, config)
        assert len(space.levels_of_octave(0)) == 3
        assert len(space.levels_of_octave(1)) == 3

    def test_default_octave_rule_applied(self, example_series):
        space = build_scale_space(example_series)
        # floor(log2(256)) - 6 = 2 octaves
        assert space.num_octaves == 2

    def test_octave_downsampling_halves_lengths(self, example_series):
        config = ScaleSpaceConfig(num_octaves=3)
        space = build_scale_space(example_series, config)
        lengths = [space.levels_of_octave(k)[0].length for k in range(3)]
        assert lengths[1] == lengths[0] // 2
        assert lengths[2] == lengths[1] // 2

    def test_sigma_grows_monotonically_across_levels(self, example_series):
        config = ScaleSpaceConfig(num_octaves=3, levels_per_octave=2)
        space = build_scale_space(example_series, config)
        sigmas = [level.sigma for level in space.levels]
        assert all(b > a for a, b in zip(sigmas, sigmas[1:]))

    def test_sigma_doubles_between_octaves(self, example_series):
        config = ScaleSpaceConfig(num_octaves=2, levels_per_octave=2)
        space = build_scale_space(example_series, config)
        first_octave = space.levels_of_octave(0)
        second_octave = space.levels_of_octave(1)
        assert second_octave[0].sigma == pytest.approx(2 * first_octave[0].sigma)

    def test_sampling_step_is_power_of_two(self, example_series):
        config = ScaleSpaceConfig(num_octaves=3)
        space = build_scale_space(example_series, config)
        for level in space.levels:
            assert level.sampling_step == 2 ** level.octave

    def test_position_mapping_back_to_original(self, example_series):
        config = ScaleSpaceConfig(num_octaves=2)
        space = build_scale_space(example_series, config)
        coarse = space.levels_of_octave(1)[0]
        assert coarse.to_original_position(10) == pytest.approx(20.0)

    def test_dog_of_constant_series_is_zero(self):
        space = build_scale_space(np.full(64, 3.0))
        for level in space.levels:
            np.testing.assert_allclose(level.dog, 0.0, atol=1e-12)

    def test_empty_series_rejected(self):
        with pytest.raises(EmptySeriesError):
            build_scale_space([])

    def test_short_series_still_produces_one_octave(self):
        space = build_scale_space(np.arange(10.0))
        assert space.num_octaves >= 1

    def test_sigma_range_reports_extremes(self, example_series):
        config = ScaleSpaceConfig(num_octaves=2)
        space = build_scale_space(example_series, config)
        low, high = space.sigma_range()
        assert low == min(level.sigma for level in space.levels)
        assert high == max(level.sigma for level in space.levels)

    def test_smoothed_series_preserves_mean_roughly(self, example_series):
        space = build_scale_space(example_series)
        level = space.levels[0]
        assert level.smoothed.mean() == pytest.approx(example_series.mean(), rel=0.05)


class TestClassifyScale:
    def _level(self, octave: int) -> ScaleLevel:
        return ScaleLevel(
            octave=octave,
            level=0,
            sigma=1.0 * 2 ** octave,
            sampling_step=2 ** octave,
            smoothed=np.zeros(4),
            dog=np.zeros(4),
        )

    def test_single_octave_everything_fine(self):
        assert classify_scale(self._level(0), num_octaves=1) == "fine"

    def test_two_octaves_fine_and_rough(self):
        assert classify_scale(self._level(0), num_octaves=2) == "fine"
        assert classify_scale(self._level(1), num_octaves=2) == "rough"

    def test_three_octaves_fine_medium_rough(self):
        assert classify_scale(self._level(0), num_octaves=3) == "fine"
        assert classify_scale(self._level(1), num_octaves=3) == "medium"
        assert classify_scale(self._level(2), num_octaves=3) == "rough"
