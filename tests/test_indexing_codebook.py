"""Tests for the salient-feature codebook (k-means quantizer)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DescriptorConfig, SDTWConfig
from repro.core.descriptors import descriptor_matrix
from repro.core.features import extract_salient_features
from repro.datasets.synthetic import make_gun_like
from repro.exceptions import ConfigurationError, ValidationError
from repro.indexing import Codebook, CodebookConfig, feature_embedding


CONFIG = SDTWConfig(descriptor=DescriptorConfig(num_bins=16))


@pytest.fixture(scope="module")
def collection():
    dataset = make_gun_like(num_series=12, length=96, seed=3)
    features = [extract_salient_features(ts.values, CONFIG) for ts in dataset]
    lengths = [ts.values.size for ts in dataset]
    return dataset, features, lengths


@pytest.fixture(scope="module")
def fitted(collection):
    _, features, lengths = collection
    config = CodebookConfig.for_sdtw(CONFIG, num_codewords=32, seed=5)
    return Codebook(config).fit(features, lengths)


class TestDescriptorMatrix:
    def test_shape_and_padding(self, collection):
        _, features, _ = collection
        matrix = descriptor_matrix(features[0], 16)
        assert matrix.shape == (len(features[0]), 16)

    def test_truncates_longer_descriptors(self, collection):
        _, features, _ = collection
        matrix = descriptor_matrix(features[0], 4)
        assert matrix.shape == (len(features[0]), 4)
        expected = np.asarray(features[0][0].descriptor[:4], dtype=float)
        assert np.array_equal(matrix[0], expected)

    def test_empty_features(self):
        assert descriptor_matrix([], 8).shape == (0, 8)


class TestFeatureEmbedding:
    def test_embedding_appends_four_augmentation_columns(self, collection):
        _, features, lengths = collection
        config = CodebookConfig.for_sdtw(CONFIG)
        embedded = feature_embedding(features[0], lengths[0], config)
        assert embedded.shape == (len(features[0]), CONFIG.descriptor.num_bins + 4)

    def test_position_column_normalised_by_length(self, collection):
        _, features, lengths = collection
        config = CodebookConfig.for_sdtw(CONFIG, position_weight=1.0)
        embedded = feature_embedding(features[0], lengths[0], config)
        positions = embedded[:, CONFIG.descriptor.num_bins]
        assert np.all(positions >= 0.0) and np.all(positions <= 1.0)


class TestCodebookConfig:
    def test_for_sdtw_matches_descriptor_bins(self):
        config = CodebookConfig.for_sdtw(CONFIG)
        assert config.descriptor_bins == CONFIG.descriptor.num_bins

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            CodebookConfig(num_codewords=0)
        with pytest.raises(ConfigurationError):
            CodebookConfig(position_weight=-1.0)
        with pytest.raises(ConfigurationError):
            CodebookConfig(store_multiplicity=0)


class TestFit:
    def test_fit_is_deterministic(self, collection):
        _, features, lengths = collection
        config = CodebookConfig.for_sdtw(CONFIG, num_codewords=16, seed=11)
        first = Codebook(config).fit(features, lengths)
        second = Codebook(config).fit(features, lengths)
        assert np.array_equal(first.centroids, second.centroids)

    def test_codebook_size_clamped_to_sample(self, collection):
        _, features, lengths = collection
        config = CodebookConfig.for_sdtw(CONFIG, num_codewords=10 ** 6)
        book = Codebook(config).fit(features, lengths)
        assert book.num_codewords <= sum(len(f) for f in features)

    def test_fit_without_features_rejected(self):
        book = Codebook(CodebookConfig.for_sdtw(CONFIG))
        with pytest.raises(ValidationError):
            book.fit([[], []], [50, 50])

    def test_mismatched_lengths_rejected(self, collection):
        _, features, _ = collection
        book = Codebook(CodebookConfig.for_sdtw(CONFIG))
        with pytest.raises(ValidationError):
            book.fit(features, [96])


class TestAssign:
    def test_assign_shape_and_range(self, fitted, collection):
        _, features, lengths = collection
        assigned = fitted.assign(features[0], lengths[0], multiplicity=3)
        assert assigned.shape == (len(features[0]), 3)
        assert assigned.min() >= 0
        assert assigned.max() < fitted.num_codewords

    def test_assign_columns_ordered_by_distance(self, fitted, collection):
        _, features, lengths = collection
        assigned = fitted.assign(features[0], lengths[0], multiplicity=2)
        embedded = feature_embedding(features[0], lengths[0], fitted.config)
        for row in range(assigned.shape[0]):
            first = np.linalg.norm(embedded[row] - fitted.centroids[assigned[row, 0]])
            second = np.linalg.norm(embedded[row] - fitted.centroids[assigned[row, 1]])
            assert first <= second

    def test_assign_empty_features(self, fitted):
        assert fitted.assign([], 50, multiplicity=2).shape == (0, 2)

    def test_unfitted_codebook_rejects_assign(self):
        with pytest.raises(ValidationError):
            Codebook(CodebookConfig.for_sdtw(CONFIG)).assign([], 50)


class TestBag:
    def test_bag_counts_are_soft_weighted(self, fitted, collection):
        _, features, lengths = collection
        codewords, counts = fitted.bag(features[0], lengths[0], multiplicity=2)
        assert codewords.size == np.unique(codewords).size
        assert np.all(counts > 0)
        # Total soft mass: each feature contributes 1 + 1/2.
        assert counts.sum() == pytest.approx(1.5 * len(features[0]))

    def test_query_bag_uses_query_multiplicity(self, collection):
        _, features, lengths = collection
        config = CodebookConfig.for_sdtw(
            CONFIG, num_codewords=32, store_multiplicity=1, query_multiplicity=3
        )
        book = Codebook(config).fit(features, lengths)
        _, stored_counts = book.bag(features[0], lengths[0])
        _, query_counts = book.bag(features[0], lengths[0], query=True)
        assert stored_counts.sum() == pytest.approx(len(features[0]))
        assert query_counts.sum() == pytest.approx(1.75 * len(features[0]))

    def test_empty_bag(self, fitted):
        codewords, counts = fitted.bag([], 50)
        assert codewords.size == 0 and counts.size == 0


class TestPersistence:
    def test_save_load_round_trip(self, fitted, collection, tmp_path):
        _, features, lengths = collection
        path = tmp_path / "codebook.npz"
        fitted.save(path)
        reloaded = Codebook.load(path)
        assert reloaded.config == fitted.config
        assert np.array_equal(reloaded.centroids, fitted.centroids)
        original = fitted.assign(features[0], lengths[0], multiplicity=2)
        restored = reloaded.assign(features[0], lengths[0], multiplicity=2)
        assert np.array_equal(original, restored)

    def test_save_unfitted_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            Codebook(CodebookConfig.for_sdtw(CONFIG)).save(tmp_path / "c.npz")
