"""Unit tests for the batch distance engine: stats accounting, backend
resolution, pruning switches, and the rewired retrieval entry points."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SDTWConfig
from repro.core.sdtw import SDTW
from repro.datasets.synthetic import make_gun_like
from repro.engine import (
    DistanceEngine,
    EngineStats,
    banded_dtw_batch,
    normalize_constraint,
    resolve_backend,
)
from repro.dtw.banded import banded_dtw
from repro.dtw.constraints import sakoe_chiba_band
from repro.exceptions import DatasetError, ValidationError
from repro.retrieval.index import compute_distance_index
from repro.retrieval.knn import batch_top_k


@pytest.fixture(scope="module")
def dataset():
    return make_gun_like(num_series=10, seed=33)


@pytest.fixture(scope="module")
def engine(dataset):
    built = DistanceEngine("fc,fw", backend="serial")
    built.add_dataset(dataset)
    return built


class TestBackendResolution:
    def test_aliases(self):
        assert resolve_backend(None) == "serial"
        assert resolve_backend("mp") == "multiprocessing"
        assert resolve_backend("Vectorised") == "vectorized"
        assert resolve_backend("numpy") == "vectorized"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError):
            resolve_backend("gpu")

    def test_unknown_constraint_rejected(self):
        with pytest.raises(ValidationError):
            DistanceEngine("no-such-constraint")

    def test_constraint_normalisation(self):
        assert normalize_constraint("Full") == "full"
        assert normalize_constraint("sakoe-chiba") == "fc,fw"
        assert normalize_constraint("ITAKURA") == "itakura"
        assert normalize_constraint("ac2,aw") == "ac2,aw"


class TestStatsAccounting:
    def test_cascade_counters_partition_the_candidates(self, engine, dataset):
        result = engine.query(dataset[0].values, 3,
                              exclude_identifier=dataset[0].identifier)
        stats = result.stats
        assert stats.candidates == len(dataset) - 1
        assert stats.pruned + stats.refined == stats.candidates
        assert stats.dtw_computed >= 3
        assert stats.cells_filled > 0
        assert stats.total_cells >= stats.cells_filled
        assert 0.0 <= stats.prune_rate <= 1.0
        assert 0.0 <= stats.cell_gain <= 1.0

    def test_merge_sums_counters(self):
        a = EngineStats(queries=1, candidates=5, dtw_computed=3,
                        cells_filled=10, dp_seconds=0.5)
        b = EngineStats(queries=1, candidates=7, dtw_computed=4,
                        cells_filled=20, dp_seconds=0.25)
        merged = EngineStats.merged([a, b])
        assert merged.queries == 2
        assert merged.candidates == 12
        assert merged.dtw_computed == 7
        assert merged.cells_filled == 30
        assert merged.dp_seconds == pytest.approx(0.75)

    def test_time_gain_against_reference(self):
        stats = EngineStats(elapsed_seconds=1.0)
        assert stats.time_gain(4.0) == pytest.approx(0.75)
        assert stats.time_gain(0.0) == 0.0

    def test_cascade_rows_render(self, engine, dataset):
        result = engine.query(dataset[1].values, 2)
        rows = result.stats.cascade_rows()
        assert any("LB_Kim" in str(row[0]) for row in rows)
        assert any("cells" in str(row[0]) for row in rows)


class TestPruningSwitches:
    def test_prune_false_scans_everything(self, dataset):
        engine = DistanceEngine("fc,fw", prune=False, early_abandon=False)
        engine.add_dataset(dataset)
        result = engine.query(dataset[0].values, 2,
                              exclude_identifier=dataset[0].identifier)
        stats = result.stats
        assert stats.pruned == 0
        assert stats.dtw_computed == stats.candidates
        assert stats.lb_kim_computed == 0
        assert stats.lb_keogh_computed == 0

    def test_bounds_disabled_for_non_absolute_distances(self, dataset):
        engine = DistanceEngine(
            "fc,fw", SDTWConfig(pointwise_distance="squared")
        )
        engine.add_dataset(dataset)
        result = engine.query(dataset[0].values, 2)
        # LB_Kim / LB_Keogh are derived for the absolute distance only, so
        # they must be skipped; abandonment remains valid.
        assert result.stats.lb_kim_computed == 0
        assert result.stats.lb_keogh_computed == 0
        assert result.stats.pruned == 0

    def test_invalid_itakura_slope_rejected(self):
        with pytest.raises(ValidationError):
            DistanceEngine("itakura", itakura_max_slope=1.0)


class TestEngineBasics:
    def test_empty_engine_raises(self):
        with pytest.raises(DatasetError):
            DistanceEngine("full").knn([[1.0, 2.0]], 1)

    def test_mismatched_exclude_list_rejected(self, engine, dataset):
        with pytest.raises(ValidationError):
            engine.knn([dataset[0].values, dataset[1].values], 1,
                       exclude_identifiers=["only-one"])

    def test_k_larger_than_collection_returns_everything(self, dataset):
        engine = DistanceEngine("fc,fw")
        engine.add_dataset(dataset)
        result = engine.query(dataset[0].values, 50)
        assert len(result.hits) == len(dataset)

    def test_from_dataset_builds_collection(self, dataset):
        engine = DistanceEngine.from_dataset(dataset, "fc,fw")
        assert len(engine) == len(dataset)

    def test_add_dataset_returns_identifiers(self, dataset):
        engine = DistanceEngine("fc,fw")
        identifiers = engine.add_dataset(dataset)
        assert len(identifiers) == len(dataset)
        result = engine.query(dataset[0].values, 1,
                              exclude_identifier=identifiers[0])
        assert result.hits[0].identifier != identifiers[0]

    def test_auto_identifiers_never_collide_with_explicit_ones(self):
        # Regression: an auto-generated "series-NNNNN" name must not alias
        # a user-supplied identifier, or exclusion would silently drop an
        # unrelated series.
        engine = DistanceEngine("full")
        engine.add([1.0, 2.0], identifier="series-00001")
        auto = engine.add([3.0, 4.0])
        assert auto != "series-00001"
        result = engine.query([1.0, 2.0], 1,
                              exclude_identifier="series-00001")
        assert [hit.identifier for hit in result.hits] == [auto]

    def test_exclusion_skips_every_duplicate_identifier(self):
        # Regression: like the sequential engine, leave-one-out exclusion
        # must skip *all* stored copies sharing the identifier, not only
        # the most recently added one.
        series = np.sin(np.linspace(0.0, 5.0, 30))
        other = np.cos(np.linspace(0.0, 5.0, 30))
        engine = DistanceEngine("full")
        engine.add(series, identifier="dup")
        engine.add(other, identifier="other")
        engine.add(series, identifier="dup")
        result = engine.query(series, 2, exclude_identifier="dup")
        assert [hit.identifier for hit in result.hits] == ["other"]

    def test_prepare_is_idempotent_and_invalidated_by_add(self, dataset):
        engine = DistanceEngine("fc,fw")
        engine.add_dataset(dataset)
        engine.prepare()
        first = engine._prepared
        engine.prepare()
        assert engine._prepared is first
        engine.add(dataset[0].values, identifier="extra")
        assert engine._prepared is None

    def test_distance_matrix_matches_sdtw(self, dataset):
        engine = DistanceEngine("fc,fw", backend="vectorized")
        engine.add_dataset(dataset)
        queries = [dataset[0].values, dataset[1].values]
        matrix = engine.distance_matrix(queries).distances
        sdtw = SDTW()
        for qi, query in enumerate(queries):
            for ci, ts in enumerate(dataset):
                want = sdtw.distance(query, ts.values, "fc,fw").distance
                assert matrix[qi, ci] == pytest.approx(want, abs=1e-9)

    def test_batch_kernel_matches_per_pair(self, rng):
        query = rng.normal(size=30)
        candidates = rng.normal(size=(7, 30))
        band = sakoe_chiba_band(30, 30, 4)
        from repro.dtw.distances import absolute_distance

        distances, cells, abandoned = banded_dtw_batch(
            query, candidates, band, absolute_distance
        )
        assert not abandoned.any()
        for c in range(7):
            reference = banded_dtw(query, candidates[c], band, return_path=False)
            assert distances[c] == reference.distance
            assert cells[c] == reference.cells_filled


class TestBatchTopK:
    def test_matches_row_wise_ranking(self):
        matrix = np.array([[3.0, 1.0, 2.0], [0.5, 0.5, 0.1]])
        assert batch_top_k(matrix, 2) == [[1, 2], [2, 0]]

    def test_exclusion_per_row(self):
        matrix = np.array([[0.0, 1.0, 2.0], [5.0, 0.0, 2.0]])
        assert batch_top_k(matrix, 1, exclude=[0, 1]) == [[1], [2]]

    def test_bad_exclude_length_rejected(self):
        with pytest.raises(ValidationError):
            batch_top_k(np.zeros((2, 3)), 1, exclude=[0])


class TestRewiredRetrievalFrontDoor:
    """The Workspace facade took over the retired search-engine shim."""

    def test_batch_knn_matches_single_queries(self, dataset):
        from repro.service import EngineConfig, Workspace, WorkspaceConfig

        workspace = Workspace(WorkspaceConfig(engine=EngineConfig(
            constraint="fc,fw", backend="vectorized")))
        workspace.add_dataset(dataset)
        queries = [dataset[i].values for i in range(3)]
        excludes = [dataset[i].identifier for i in range(3)]
        batch = workspace.knn(queries, 3, exclude_identifiers=excludes)
        for qi, result in enumerate(batch.results):
            single = workspace.query(queries[qi], 3, mode="exact",
                                     exclude_identifier=excludes[qi])
            assert [h.index for h in result.hits] == [
                h.index for h in single.hits
            ]

    def test_workspace_exposes_underlying_engine(self, dataset):
        from repro.service import Workspace

        workspace = Workspace()
        workspace.add_dataset(dataset)
        assert isinstance(workspace.engine, DistanceEngine)
        assert len(workspace.engine) == len(dataset)


class TestParallelDistanceIndex:
    def test_num_workers_matches_serial(self, dataset):
        values = [ts.values for ts in dataset][:6]
        serial = compute_distance_index(values, "fc,fw")
        parallel = compute_distance_index(values, "fc,fw", num_workers=2)
        np.testing.assert_allclose(parallel.distances, serial.distances,
                                   atol=1e-9, rtol=0.0)
        assert parallel.cells_filled == serial.cells_filled
        assert parallel.total_cells == serial.total_cells

    def test_num_workers_full_constraint(self, dataset):
        values = [ts.values for ts in dataset][:5]
        serial = compute_distance_index(values, "full")
        parallel = compute_distance_index(values, "full", num_workers=2)
        np.testing.assert_allclose(parallel.distances, serial.distances,
                                   atol=1e-9, rtol=0.0)

    def test_progress_reported_with_workers(self, dataset):
        values = [ts.values for ts in dataset][:5]
        calls = []
        compute_distance_index(values, "fc,fw", num_workers=2,
                               progress=lambda done, total: calls.append((done, total)))
        assert calls
        assert calls[-1][0] == calls[-1][1]


class TestCandidateRestriction:
    """The indexing subsystem's re-rank hook: scans restricted to subsets."""

    def test_restricted_scan_matches_full_scan_on_subset(self, dataset):
        engine = DistanceEngine("fc,fw")
        engine.add_dataset(dataset)
        subset = [1, 3, 4, 8]
        restricted = engine.query(dataset[0].values, 3,
                                  candidate_indices=subset)
        small = DistanceEngine("fc,fw")
        for index in subset:
            small.add(dataset[index].values)
        reference = small.query(dataset[0].values, 3)
        assert [subset[h.index] for h in reference.hits] == \
            [h.index for h in restricted.hits]
        assert [h.distance for h in reference.hits] == \
            [h.distance for h in restricted.hits]

    def test_full_candidate_list_equals_unrestricted_query(self, dataset):
        engine = DistanceEngine("fc,fw")
        engine.add_dataset(dataset)
        everything = list(range(len(dataset)))
        restricted = engine.query(dataset[2].values, 4,
                                  candidate_indices=everything)
        unrestricted = engine.query(dataset[2].values, 4)
        assert restricted.indices == unrestricted.indices
        assert [h.distance for h in restricted.hits] == \
            [h.distance for h in unrestricted.hits]

    def test_restriction_composes_with_exclusion(self, dataset):
        engine = DistanceEngine("fc,fw")
        identifiers = engine.add_dataset(dataset)
        result = engine.query(dataset[0].values, 2,
                              exclude_identifier=identifiers[1],
                              candidate_indices=[0, 1, 2])
        assert 1 not in result.indices
        assert set(result.indices) <= {0, 2}

    def test_candidate_stats_reflect_the_subset(self, dataset):
        engine = DistanceEngine("fc,fw")
        engine.add_dataset(dataset)
        result = engine.query(dataset[0].values, 2, candidate_indices=[0, 5, 6])
        assert result.stats.candidates == 3

    def test_out_of_range_candidates_rejected(self, dataset):
        engine = DistanceEngine("fc,fw")
        engine.add_dataset(dataset)
        with pytest.raises(ValidationError):
            engine.query(dataset[0].values, 1,
                         candidate_indices=[0, len(dataset)])

    def test_per_query_candidate_lists_in_batch(self, dataset):
        engine = DistanceEngine("fc,fw", backend="vectorized")
        engine.add_dataset(dataset)
        queries = [dataset[0].values, dataset[1].values]
        batch = engine.knn(queries, 2, candidate_indices=[[0, 1, 2], None])
        assert set(batch.results[0].indices) <= {0, 1, 2}
        assert batch.results[1].indices == engine.query(queries[1], 2).indices

    def test_mismatched_candidate_list_length_rejected(self, dataset):
        engine = DistanceEngine("fc,fw")
        engine.add_dataset(dataset)
        with pytest.raises(ValidationError):
            engine.knn([dataset[0].values], 1, candidate_indices=[[0], [1]])

    def test_multiprocessing_backend_honours_candidates(self, dataset):
        engine = DistanceEngine("fc,fw", backend="multiprocessing",
                                num_workers=2)
        engine.add_dataset(dataset)
        queries = [dataset[0].values, dataset[1].values]
        batch = engine.knn(queries, 2, candidate_indices=[[0, 1, 2], [3, 4, 5]])
        assert set(batch.results[0].indices) <= {0, 1, 2}
        assert set(batch.results[1].indices) <= {3, 4, 5}
