"""Tests for the full (unconstrained) DTW dynamic program."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtw.full import dtw, dtw_distance, dtw_distance_matrix
from repro.dtw.path import is_valid_warp_path, path_cost


class TestDTWDistanceBasics:
    def test_identical_series_have_zero_distance(self):
        series = np.sin(np.linspace(0, 3, 40))
        assert dtw_distance(series, series) == pytest.approx(0.0)

    def test_distance_is_symmetric(self, sine_pair):
        x, y = sine_pair
        assert dtw_distance(x, y) == pytest.approx(dtw_distance(y, x))

    def test_distance_is_non_negative(self, rng):
        x = rng.normal(size=30)
        y = rng.normal(size=25)
        assert dtw_distance(x, y) >= 0.0

    def test_single_element_series(self):
        assert dtw_distance([2.0], [5.0]) == pytest.approx(3.0)

    def test_single_vs_multi_element(self):
        # One element must align against everything: cost is the sum.
        assert dtw_distance([1.0], [2.0, 3.0, 0.0]) == pytest.approx(1 + 2 + 1)

    def test_constant_shift_two_points(self):
        assert dtw_distance([0.0, 0.0], [1.0, 1.0]) == pytest.approx(2.0)

    def test_known_small_example(self):
        # Classic textbook example: warping absorbs the temporal shift.
        x = [0.0, 0.0, 1.0, 2.0, 1.0, 0.0]
        y = [0.0, 1.0, 2.0, 1.0, 0.0, 0.0]
        assert dtw_distance(x, y) == pytest.approx(0.0)

    def test_dtw_at_most_euclidean_for_equal_lengths(self, rng):
        x = rng.normal(size=40)
        y = rng.normal(size=40)
        euclidean = float(np.sum(np.abs(x - y)))
        assert dtw_distance(x, y) <= euclidean + 1e-9

    def test_squared_distance_option(self):
        x = [0.0, 2.0]
        y = [0.0, 4.0]
        assert dtw_distance(x, y, distance="squared") == pytest.approx(4.0)

    def test_warping_beats_shift(self):
        # A shifted bump should be much closer under DTW than pointwise.
        t = np.linspace(0, 1, 80)
        x = np.exp(-((t - 0.4) ** 2) / 0.005)
        y = np.exp(-((t - 0.5) ** 2) / 0.005)
        pointwise = float(np.sum(np.abs(x - y)))
        assert dtw_distance(x, y) < 0.25 * pointwise


class TestDTWResultObject:
    def test_two_implementations_agree(self, sine_pair):
        x, y = sine_pair
        assert dtw(x, y).distance == pytest.approx(dtw_distance(x, y))

    def test_cells_filled_equals_grid_size(self, sine_pair):
        x, y = sine_pair
        result = dtw(x, y)
        assert result.cells_filled == x.size * y.size

    def test_path_is_valid_and_reaches_corners(self, sine_pair):
        x, y = sine_pair
        result = dtw(x, y)
        assert result.path is not None
        assert result.path.pairs[0] == (0, 0)
        assert result.path.pairs[-1] == (x.size - 1, y.size - 1)
        assert is_valid_warp_path(result.path.pairs, x.size, y.size)

    def test_path_cost_equals_reported_distance(self, bumpy_pair):
        x, y = bumpy_pair
        result = dtw(x, y)
        assert path_cost(result.path, x, y) == pytest.approx(result.distance)

    def test_return_path_false_skips_backtracking(self, sine_pair):
        x, y = sine_pair
        result = dtw(x, y, return_path=False)
        assert result.path is None

    def test_keep_matrix_returns_accumulated_costs(self):
        x = [0.0, 1.0, 2.0]
        y = [0.0, 2.0]
        result = dtw(x, y, keep_matrix=True)
        assert result.accumulated is not None
        assert result.accumulated.shape == (3, 2)
        assert result.accumulated[-1, -1] == pytest.approx(result.distance)

    def test_accumulated_matrix_is_monotone_along_rows_start(self):
        x = np.linspace(0, 1, 10)
        y = np.linspace(0, 1, 10) + 0.5
        result = dtw(x, y, keep_matrix=True)
        # The first column accumulates, so it must be non-decreasing.
        first_column = result.accumulated[:, 0]
        assert np.all(np.diff(first_column) >= -1e-12)


class TestDistanceMatrix:
    def test_self_matrix_is_symmetric_with_zero_diagonal(self, tiny_series_collection):
        matrix = dtw_distance_matrix(tiny_series_collection)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 0.0)

    def test_cross_matrix_shape(self, tiny_series_collection):
        left = tiny_series_collection[:3]
        right = tiny_series_collection[3:]
        matrix = dtw_distance_matrix(left, right)
        assert matrix.shape == (3, len(right))

    def test_cross_matrix_matches_pairwise_calls(self, tiny_series_collection):
        left = tiny_series_collection[:2]
        right = tiny_series_collection[2:4]
        matrix = dtw_distance_matrix(left, right)
        assert matrix[0, 1] == pytest.approx(dtw_distance(left[0], right[1]))

    def test_triangle_inequality_can_fail(self):
        # DTW is famously not a metric; document that with a concrete case
        # (this specific triple violates the triangle inequality).
        a = [0.0, 0.0, 1.0]
        b = [0.0, 1.0, 1.0]
        c = [0.0, 1.0, 0.0]
        d_ab = dtw_distance(a, b)
        d_bc = dtw_distance(b, c)
        d_ac = dtw_distance(a, c)
        # Not asserting violation universally - just that DTW distances are
        # all finite and non-negative here; the metric property is not
        # relied upon anywhere in the library.
        assert min(d_ab, d_bc, d_ac) >= 0.0
