"""Incremental index maintenance: delta shards, tombstones, compaction.

Covers the three contracts of the incremental layer:

* ``add_series`` is O(new features): it appends one delta shard, never
  touches existing shards, and the new series is immediately scoreable.
* ``remove_series`` tombstones a slot: the series disappears from every
  score and candidate list (at any budget) without a rebuild.
* ``compact()`` folds base + deltas - tombstones into a fresh base shard
  set that is **bit-identical** to ``InvertedIndex.from_bags`` over the
  surviving bags (a from-scratch rebuild under the same frozen
  codebook), including the PQ code CSRs.

Plus the persistence satellite: add -> save -> open -> query round
trips, tombstones surviving reopen, and the Workspace-level incremental
path (auto-compaction, removal, close/open cycles).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DescriptorConfig, SDTWConfig
from repro.datasets.synthetic import make_gun_like
from repro.exceptions import DatasetError, ValidationError
from repro.indexing import (
    CodebookConfig,
    IndexReader,
    IndexedSearcher,
    InvertedIndex,
    IndexWriter,
    PQConfig,
)
from repro.indexing.searcher import pq_entry_for
from repro.indexing.shards import OPTIONAL_SHARD_MEMBERS, SHARD_MEMBERS
from repro.service import IndexConfig, Workspace, WorkspaceConfig

CONFIG = SDTWConfig(descriptor=DescriptorConfig(num_bins=16))

ALL_SHARD_MEMBERS = SHARD_MEMBERS + OPTIONAL_SHARD_MEMBERS


def _bag(codewords, counts):
    return (
        np.asarray(codewords, dtype=np.int64),
        np.asarray(counts, dtype=np.float64),
    )


def _manual_bags():
    return [
        _bag([0, 2, 5], [1.0, 2.0, 1.0]),
        _bag([1, 2], [1.5, 0.5]),
        _bag([3, 4, 5, 7], [1.0, 1.0, 1.0, 1.0]),
        _bag([0, 7], [2.0, 1.0]),
    ]


def assert_indexes_bit_identical(left: InvertedIndex, right: InvertedIndex):
    assert left.num_series == right.num_series
    assert left.num_codewords == right.num_codewords
    assert np.array_equal(left.idf, right.idf)
    assert len(left.shards) == len(right.shards)
    assert not left.delta_shards and not right.delta_shards
    for ours, theirs in zip(left.shards, right.shards):
        assert ours.first_codeword == theirs.first_codeword
        assert ours.last_codeword == theirs.last_codeword
        for member in ALL_SHARD_MEMBERS:
            mine, other = getattr(ours, member), getattr(theirs, member)
            assert (mine is None) == (other is None), member
            if mine is not None:
                assert np.array_equal(np.asarray(mine), np.asarray(other)), member


@pytest.fixture(scope="module")
def dataset():
    return make_gun_like(num_series=14, seed=23)


@pytest.fixture()
def searcher(dataset):
    return IndexedSearcher.from_dataset(
        dataset,
        config=CONFIG,
        codebook_config=CodebookConfig.for_sdtw(
            CONFIG, num_codewords=24, seed=11
        ),
        num_shards=3,
        candidate_budget=6,
        pq_config=PQConfig(subquantizers=4, seed=11),
    )


class TestInvertedIndexIncremental:
    def test_add_series_is_scoreable_and_rankable(self):
        index = InvertedIndex.from_bags(_manual_bags(), 8, num_shards=2)
        base_shards = list(index.shards)
        slot = index.add_series(_bag([2, 6], [1.0, 1.0]))
        assert slot == 4
        assert index.num_series == 5
        assert index.num_delta_shards == 1
        assert index.shards == base_shards  # base untouched
        scores, touched = index.scores(_bag([6], [1.0]))
        assert touched[slot]
        assert scores[slot] > 0.0
        assert slot in index.candidates(_bag([2, 6], [1.0, 1.0]), 5).tolist()

    def test_add_series_validates_bag(self):
        index = InvertedIndex.from_bags(_manual_bags(), 8)
        with pytest.raises(ValidationError):
            index.add_series(_bag([9], [1.0]))  # out of range
        with pytest.raises(ValidationError):
            index.add_series(_bag([3, 1], [1.0, 1.0]))  # unsorted

    def test_remove_series_tombstones_at_any_budget(self):
        index = InvertedIndex.from_bags(_manual_bags(), 8, num_shards=2)
        index.remove_series(1)
        assert index.num_tombstones == 1
        assert index.num_live == 3
        scores, touched = index.scores(_bag([1, 2], [1.0, 1.0]))
        assert not touched[1]
        assert scores[1] == 0.0
        for limit in (1, 2, 4, 100):
            assert 1 not in index.candidates(_bag([2], [1.0]), limit).tolist()

    def test_remove_series_out_of_range(self):
        index = InvertedIndex.from_bags(_manual_bags(), 8)
        with pytest.raises(ValidationError):
            index.remove_series(4)
        with pytest.raises(ValidationError):
            index.remove_series(-1)

    def test_clone_isolates_mutations(self):
        index = InvertedIndex.from_bags(_manual_bags(), 8)
        clone = index.clone()
        clone.add_series(_bag([0], [1.0]))
        clone.remove_series(0)
        assert index.num_series == 4
        assert index.num_delta_shards == 0
        assert index.num_tombstones == 0

    def test_compact_bit_identical_to_from_bags(self):
        bags = _manual_bags()
        extra = [_bag([2, 6], [1.0, 2.0]), _bag([0, 1, 3], [1.0, 1.0, 1.0])]
        incremental = InvertedIndex.from_bags(bags, 8, num_shards=2)
        for bag in extra:
            incremental.add_series(bag)
        compacted, slot_map = incremental.compact(num_shards=2)
        fresh = InvertedIndex.from_bags(bags + extra, 8, num_shards=2)
        assert slot_map.tolist() == list(range(6))
        assert_indexes_bit_identical(compacted, fresh)

    def test_compact_drops_tombstones_and_renumbers(self):
        bags = _manual_bags()
        incremental = InvertedIndex.from_bags(bags, 8, num_shards=2)
        incremental.add_series(_bag([2, 6], [1.0, 2.0]))
        incremental.remove_series(1)
        incremental.remove_series(4)
        compacted, slot_map = incremental.compact(num_shards=2)
        assert slot_map.tolist() == [0, -1, 1, 2, -1]
        survivors = [bags[0], bags[2], bags[3]]
        assert_indexes_bit_identical(
            compacted, InvertedIndex.from_bags(survivors, 8, num_shards=2)
        )

    def test_compact_with_every_slot_removed_rejected(self):
        index = InvertedIndex.from_bags(_manual_bags()[:1], 8)
        index.remove_series(0)
        with pytest.raises(ValidationError):
            index.compact()

    def test_compact_requires_counts(self):
        index = InvertedIndex.from_bags(_manual_bags(), 8)
        stripped = [
            type(shard)(
                first_codeword=shard.first_codeword,
                last_codeword=shard.last_codeword,
                codeword_ids=shard.codeword_ids,
                offsets=shard.offsets,
                series=shard.series,
                weights=shard.weights,
            )
            for shard in index.shards
        ]
        legacy = InvertedIndex(
            num_series=index.num_series,
            num_codewords=index.num_codewords,
            shards=stripped,
            idf=index.idf,
        )
        assert not legacy.supports_incremental
        with pytest.raises(ValidationError):
            legacy.compact()


class TestSearcherIncremental:
    def test_add_series_then_query_finds_it(self, searcher, dataset):
        probe = dataset[0].values * 0.9 + 0.05
        identifier = searcher.add_series(probe, identifier="fresh")
        assert identifier == "fresh"
        assert searcher.index.num_delta_shards == 1
        result = searcher.query(probe, 3)
        assert "fresh" in [hit.identifier for hit in result.hits]
        # C = N still reproduces the exhaustive ranking bit for bit.
        exact = searcher.query(probe, 3, exact=True)
        full = searcher.query(probe, 3, candidates=len(searcher.engine))
        assert full.indices == exact.indices

    def test_add_series_rejects_duplicate_identifier(self, searcher, dataset):
        taken = searcher.engine.stored_items()[0][0]
        with pytest.raises(ValidationError):
            searcher.add_series(dataset[0].values, identifier=taken)

    def test_compact_matches_fresh_build_under_frozen_codebook(
        self, searcher, dataset
    ):
        for offset in range(3):
            searcher.add_series(
                dataset[offset].values * (0.8 + 0.1 * offset),
                identifier=f"delta-{offset}",
            )
        stored = searcher.engine.stored_items()
        lengths = [values.size for _, values, _ in stored]
        features = searcher._features
        bags = [
            searcher.codebook.bag(feats, length)
            for feats, length in zip(features, lengths)
        ]
        entries = [
            pq_entry_for(searcher.codebook, searcher.pq, feats, length)
            for feats, length in zip(features, lengths)
        ]
        fresh = InvertedIndex.from_bags(
            bags, searcher.codebook.num_codewords,
            num_shards=len(searcher.index.shards), pq_entries=entries,
        )
        searcher.compact()
        assert_indexes_bit_identical(searcher.index, fresh)

    def test_compact_preserves_full_budget_results(self, searcher, dataset):
        searcher.add_series(dataset[1].values * 1.1, identifier="later")
        probe = dataset[2].values
        before = searcher.query(probe, 4, candidates=len(searcher.engine))
        searcher.compact()
        after = searcher.query(probe, 4, candidates=len(searcher.engine))
        assert before.indices == after.indices
        assert [hit.distance for hit in before.hits] == [
            hit.distance for hit in after.hits
        ]


class TestDeltaPersistence:
    def test_add_save_open_query_round_trip(self, searcher, dataset, tmp_path):
        probe = dataset[0].values * 0.85
        searcher.add_series(probe, identifier="delta-a")
        searcher.add_series(dataset[3].values * 1.15, identifier="delta-b")
        expected = searcher.query(probe, 4)
        directory = str(tmp_path / "idx")
        searcher.save(directory)

        reader = IndexReader.open(directory)
        assert reader.index.num_delta_shards == 2
        assert reader.index.supports_incremental
        reopened = IndexedSearcher.from_reader(reader, candidate_budget=6)
        result = reopened.query(probe, 4)
        assert [hit.identifier for hit in result.hits] == [
            hit.identifier for hit in expected.hits
        ]
        assert [hit.distance for hit in result.hits] == [
            hit.distance for hit in expected.hits
        ]

    def test_tombstones_survive_reopen(self, searcher, dataset, tmp_path):
        searcher.add_series(dataset[0].values * 0.7, identifier="doomed")
        searcher.index.remove_series(searcher.index.num_series - 1)
        directory = str(tmp_path / "idx")
        stored = searcher.engine.stored_items()
        store = None  # assembled manually: engine holds the tombstoned one
        from repro.retrieval.feature_store import FeatureStore

        store = FeatureStore(config=CONFIG)
        for slot, (identifier, values, _) in enumerate(stored):
            if not searcher.index.tombstones[slot]:
                store.add_series(identifier, values)
        IndexWriter(directory).write(
            searcher.index,
            searcher.codebook,
            [identifier for identifier, _, _ in stored],
            [label for _, _, label in stored],
            feature_store=store,
            extraction_config=CONFIG,
            pq=searcher.pq,
        )
        reader = IndexReader.open(directory)
        assert reader.index.num_tombstones == 1
        assert "doomed" not in reader.live_identifiers()
        reopened = IndexedSearcher.from_reader(reader, candidate_budget=6)
        result = reopened.query(dataset[0].values * 0.7, 5,
                                candidates=reader.index.num_series)
        assert "doomed" not in [hit.identifier for hit in result.hits]

    def test_save_with_tombstones_requires_compaction(self, searcher, tmp_path):
        searcher.index.remove_series(0)
        with pytest.raises(ValidationError):
            searcher.save(str(tmp_path / "idx"))


class TestWorkspaceIncremental:
    @pytest.fixture()
    def config(self):
        return WorkspaceConfig(
            sdtw=CONFIG,
            index=IndexConfig(
                num_codewords=24, num_shards=2, candidate_budget=6,
                pq_subquantizers=4, seed=11,
            ),
            default_k=3,
        )

    def test_close_open_cycle_keeps_incremental_index(
        self, tmp_path, dataset, config
    ):
        path = str(tmp_path / "ws")
        with Workspace.create(path, config) as workspace:
            for ts in dataset.series[:8]:
                workspace.add(ts.values, identifier=ts.identifier,
                              label=ts.label)
            workspace.build_index()
            for ts in dataset.series[8:11]:
                workspace.add(ts.values, identifier=ts.identifier,
                              label=ts.label)
            assert workspace.has_index
            expected = workspace.query(dataset[9].values, 3,
                                       exclude_identifier=dataset[9].identifier)
            assert expected.mode == "indexed"

        reopened = Workspace.open(path)
        stats = reopened.stats()["index"]
        assert stats["delta_shards"] == 3
        assert not stats["stale"]
        result = reopened.query(dataset[9].values, 3,
                                exclude_identifier=dataset[9].identifier)
        assert result.mode == "indexed"
        assert result.ids == expected.ids
        assert result.distances == expected.distances
        # ...and the incremental path keeps working after reopening.
        reopened.add(dataset[11].values, identifier=dataset[11].identifier)
        assert reopened.has_index
        assert reopened.stats()["index"]["delta_shards"] == 4
        reopened.close()

    def test_removed_series_never_returned(self, dataset, config):
        workspace = Workspace(config)
        for ts in dataset.series[:10]:
            workspace.add(ts.values, identifier=ts.identifier, label=ts.label)
        workspace.build_index()
        victim = dataset[4].identifier
        workspace.remove(victim)
        assert workspace.has_index
        assert victim not in workspace.identifiers
        result = workspace.query(dataset[4].values, 5, candidates=100)
        assert result.mode == "indexed"
        assert victim not in result.ids
        exact = workspace.query(dataset[4].values, 5, mode="exact")
        assert victim not in exact.ids

    def test_remove_unknown_identifier_rejected(self, dataset, config):
        workspace = Workspace(config)
        workspace.add(dataset[0].values, identifier="only")
        with pytest.raises(DatasetError):
            workspace.remove("missing")

    def test_auto_compaction_bounds_delta_shards(self, dataset, config):
        bounded = WorkspaceConfig(
            sdtw=CONFIG,
            index=IndexConfig(
                num_codewords=24, num_shards=2, candidate_budget=6,
                pq_subquantizers=4, seed=11, max_delta_shards=2,
            ),
            default_k=3,
        )
        workspace = Workspace(bounded)
        for ts in dataset.series[:6]:
            workspace.add(ts.values, identifier=ts.identifier, label=ts.label)
        workspace.build_index()
        for ts in dataset.series[6:11]:
            workspace.add(ts.values, identifier=ts.identifier, label=ts.label)
        stats = workspace.stats()["index"]
        assert stats["delta_shards"] <= 2
        assert stats["num_live"] == 11
        # Every series is retrievable after the automatic folds.
        result = workspace.query(dataset[10].values, 3, candidates=11,
                                 exclude_identifier=dataset[10].identifier)
        exact = workspace.query(dataset[10].values, 3, mode="exact",
                                exclude_identifier=dataset[10].identifier)
        assert result.ids == exact.ids

    def test_compact_index_is_invisible_to_full_budget_queries(
        self, dataset, config
    ):
        workspace = Workspace(config)
        for ts in dataset.series[:9]:
            workspace.add(ts.values, identifier=ts.identifier, label=ts.label)
        workspace.build_index()
        workspace.add(dataset[9].values, identifier=dataset[9].identifier)
        workspace.remove(dataset[2].identifier)
        before = workspace.query(dataset[0].values, 4, candidates=100,
                                 exclude_identifier=dataset[0].identifier)
        workspace.compact_index()
        stats = workspace.stats()["index"]
        assert stats["delta_shards"] == 0
        assert stats["tombstones"] == 0
        after = workspace.query(dataset[0].values, 4, candidates=100,
                                exclude_identifier=dataset[0].identifier)
        assert before.ids == after.ids
        assert before.distances == after.distances
