"""Tests for the DTW lower bounds (LB_Kim, LB_Yi, LB_Keogh)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtw.full import dtw_distance
from repro.dtw.lower_bounds import keogh_envelope, lb_keogh, lb_kim, lb_yi


@pytest.fixture(scope="module")
def random_pairs():
    rng = np.random.default_rng(99)
    pairs = []
    for _ in range(10):
        n = int(rng.integers(20, 60))
        x = np.cumsum(rng.normal(size=n))
        y = np.cumsum(rng.normal(size=n))
        pairs.append((x, y))
    return pairs


class TestLBKim:
    def test_is_lower_bound(self, random_pairs):
        for x, y in random_pairs:
            assert lb_kim(x, y) <= dtw_distance(x, y) + 1e-9

    def test_zero_for_identical_series(self):
        series = np.linspace(0, 1, 30)
        assert lb_kim(series, series) == pytest.approx(0.0)

    def test_symmetric(self, random_pairs):
        x, y = random_pairs[0]
        assert lb_kim(x, y) == pytest.approx(lb_kim(y, x))


class TestLBYi:
    def test_is_lower_bound(self, random_pairs):
        for x, y in random_pairs:
            assert lb_yi(x, y) <= dtw_distance(x, y) + 1e-9

    def test_zero_when_ranges_overlap_completely(self):
        x = np.array([0.2, 0.5, 0.8])
        y = np.array([0.0, 1.0])
        assert lb_yi(x, y) == pytest.approx(0.0)

    def test_positive_when_query_exceeds_range(self):
        x = np.array([2.0, 3.0])
        y = np.array([0.0, 1.0])
        assert lb_yi(x, y) == pytest.approx(1.0 + 2.0)


class TestKeoghEnvelope:
    def test_envelope_bounds_the_series(self):
        series = np.sin(np.linspace(0, 6, 50))
        upper, lower = keogh_envelope(series, 4)
        assert np.all(upper >= series - 1e-12)
        assert np.all(lower <= series + 1e-12)

    def test_radius_zero_envelope_is_the_series(self):
        series = np.linspace(0, 1, 20)
        upper, lower = keogh_envelope(series, 0)
        np.testing.assert_allclose(upper, series)
        np.testing.assert_allclose(lower, series)

    def test_wider_radius_widens_envelope(self):
        series = np.sin(np.linspace(0, 6, 50))
        up1, lo1 = keogh_envelope(series, 1)
        up5, lo5 = keogh_envelope(series, 5)
        assert np.all(up5 >= up1 - 1e-12)
        assert np.all(lo5 <= lo1 + 1e-12)


class TestLBKeogh:
    def test_lower_bounds_constrained_dtw_at_same_radius(self, random_pairs):
        from repro.dtw.banded import banded_dtw
        from repro.dtw.constraints import sakoe_chiba_band

        for x, y in random_pairs:
            radius = max(3, x.size // 10)
            bound = lb_keogh(x, y, radius=radius)
            band = sakoe_chiba_band(x.size, y.size, radius)
            constrained = banded_dtw(x, y, band, return_path=False).distance
            assert bound <= constrained + 1e-9

    def test_full_radius_bounds_unconstrained_dtw(self, random_pairs):
        for x, y in random_pairs:
            bound = lb_keogh(x, y, radius=x.size)
            assert bound <= dtw_distance(x, y) + 1e-9

    def test_zero_for_identical_series(self):
        series = np.sin(np.linspace(0, 6, 40))
        assert lb_keogh(series, series, radius=3) == pytest.approx(0.0)

    def test_zero_when_query_inside_envelope(self):
        y = np.sin(np.linspace(0, 6, 40))
        x = 0.5 * y  # always within [min, max] window of y around each point
        assert lb_keogh(x, y, radius=5) >= 0.0

    def test_precomputed_envelope_matches_direct_call(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=30)
        y = rng.normal(size=30)
        envelope = keogh_envelope(y, 4)
        assert lb_keogh(x, y, 4, envelope=envelope) == pytest.approx(
            lb_keogh(x, y, 4)
        )

    def test_monotone_in_radius(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=40)
        y = rng.normal(size=40)
        tight = lb_keogh(x, y, radius=1)
        loose = lb_keogh(x, y, radius=10)
        assert loose <= tight + 1e-9
