"""True positives for RPR102: post-__init__ writes to shared objects."""


class _PreparedSegment:
    def __init__(self, matrix):
        self.matrix = matrix

    def update(self, matrix):
        self.matrix = matrix  # expect[RPR102]


def patch_segment(matrix):
    segment = _PreparedSegment(matrix)
    segment.tight_upper = matrix  # expect[RPR102]
    return segment


def grow_shard(payload, postings):
    shard = IndexShard(payload)
    shard.weights = postings  # expect[RPR102]
    return shard
