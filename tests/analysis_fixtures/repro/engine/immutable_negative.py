"""True negatives for RPR102: constructor writes and the sanctioned
mutable cache fields of :class:`IndexShard` / ``_PersistedIndex``."""


class _PreparedSegment:
    def __init__(self, matrix, tight_upper):
        self.matrix = matrix
        self.tight_upper = tight_upper


class IndexShard:
    def __init__(self):
        self._postings_cache = None
        self._postings_cache_capacity = 0
        self.postings_cache_hits = 0
        self.postings_cache_misses = 0

    def enable_postings_cache(self, capacity):
        self._postings_cache = {}
        self._postings_cache_capacity = int(capacity)

    def record(self, hit):
        if hit:
            self.postings_cache_hits += 1
        else:
            self.postings_cache_misses += 1


def mark_stale(index_factory):
    index = _PersistedIndex(index_factory)
    index.stale = True
    return index


class _PersistedIndex:
    def __init__(self, index):
        self.index = index
        self.stale = False


def build_segment(matrix, envelopes):
    segment = _PreparedSegment(matrix, envelopes)
    return segment
