"""RPR204: truthiness branches on telemetry objects vs the sanctioned
construction-time and '.enabled' forms."""

NULL_REGISTRY = object()


class Instrumented:
    def __init__(self, telemetry):
        # Construction-time None-comparison: sanctioned.
        self._metrics = telemetry if telemetry is not None else NULL_REGISTRY

    def record(self, value):
        if self._metrics:  # expect[RPR204]
            self._metrics.observe(value)

    def record_branchless(self, value):
        self._metrics.observe(value)

    def trace_decision(self):
        if self._metrics.enabled:
            return "tracing"
        return "idle"


def build(telemetry):
    if telemetry:  # expect[RPR204]
        return Instrumented(telemetry)
    if not telemetry:  # expect[RPR204]
        return Instrumented(None)
    return Instrumented(telemetry if telemetry is not None else None)
