"""RPR202 in the compute core: any float32 is a violation."""

import numpy as np


def accumulate(costs):
    totals = np.zeros(len(costs), dtype=np.float32)  # expect[RPR202]
    rounded = costs.astype(np.float32)  # expect[RPR202]
    banded = np.full(4, np.inf, dtype="float32")  # expect[RPR202]
    return totals + rounded + banded


def accumulate_correctly(costs):
    totals = np.zeros(len(costs), dtype=np.float64)
    return totals + costs.astype(np.float64)
