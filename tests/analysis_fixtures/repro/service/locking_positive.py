"""True positives for the service-layer lock-discipline checkers.

Annotation comments mark the line each finding must anchor to; the
harness in ``tests/test_analysis.py`` asserts the exact set.
"""

import threading


class RacyWorkspace:
    def __init__(self):
        self._lock = threading.Lock()
        self._serving = None
        self._generation = 0

    def publish(self, snapshot):
        with self._lock:
            self._generation += 1
            self._serving = snapshot

    def sneaky_publish(self, snapshot):
        self._serving = snapshot  # expect[RPR101]

    def bump(self):
        self._generation += 1  # expect[RPR101]

    def edit_published(self, engine):
        self._serving.engine = engine  # expect[RPR103]

    def edit_alias(self, engine):
        snapshot = self._serving
        snapshot.engine = engine  # expect[RPR103]

    def fail(self):
        raise WorkspaceError("boom")  # expect[RPR203]
