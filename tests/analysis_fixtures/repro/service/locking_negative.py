"""True negatives: disciplined locking must produce zero findings."""

import threading


class GuardedWorkspace:
    def __init__(self):
        self._lock = threading.RLock()
        self._serving = None
        self._generation = 0
        self._closed = False

    def publish(self, snapshot):
        with self._lock:
            self._generation += 1
            self._serving = snapshot

    def _swap(self, snapshot):
        """Install the snapshot (caller holds the lock)."""
        self._serving = snapshot

    def replace(self, snapshot):
        with self._lock:
            self._swap(snapshot)

    def close(self):
        if self._closed:
            raise self._error("workspace is closed")
        with self._lock:
            self._closed = True

    def read(self):
        snapshot = self._serving
        return snapshot

    def _error(self, message):
        return RuntimeError(message)

    @classmethod
    def open(cls, path):
        raise WorkspaceError(f"no workspace at {path}")
