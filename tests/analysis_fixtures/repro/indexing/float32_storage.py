"""RPR202 in the storage layer: casts are sanctioned, accumulators
are not."""

import numpy as np


def save_weights(weights):
    return np.asarray(weights, dtype=np.float32)


def pack(weights):
    return weights.astype(np.float32)


def score(weights):
    scores = np.zeros(len(weights), dtype=np.float32)  # expect[RPR202]
    total = weights.sum(dtype=np.float32)  # expect[RPR202]
    return scores, total
