"""True negatives: idiomatic code the convention checkers must pass."""

import sys
import time
from json import dumps as dumps  # explicit re-export convention

__all__ = ["measure", "collect", "label", "exported_name"]

exported_name = "kept alive via __all__"


def measure():
    start = time.perf_counter()
    return time.perf_counter() - start


def collect(items=None):
    if items is None:
        items = []
    return items


def label(n):
    parts = f"n={n}" f" of {n}"
    return parts


def tallies(values):
    total = sum(values)
    return total + sys.maxsize
