"""RPR000: this file deliberately does not parse."""

def broken(:
    return
