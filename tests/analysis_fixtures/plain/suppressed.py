"""Inline suppressions: these violations are acknowledged and silent."""

import time

WALL_CLOCK = time.time()  # repro: noqa[RPR201]
ALSO_QUIET = time.time()  # repro: noqa


def loud():
    return time.time()  # expect[RPR201]
