"""True positives for the convention checkers that run everywhere."""

import os  # expect[RPR207]
import time
from time import time as wall


def measure():
    return time.time()  # expect[RPR201]


def measure_alias():
    return wall()  # expect[RPR201]


def collect(items=[]):  # expect[RPR205]
    return items


def cache(table=dict()):  # expect[RPR205]
    return table


def label():
    text = f"static label"  # expect[RPR206]
    return text


def leftover(values):
    total = sum(values)  # expect[RPR208]
    return len(values)
