"""Tests for the internal validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro._validation import (
    as_series,
    check_fraction,
    check_int_at_least,
    check_non_negative,
    check_positive,
    check_probability_vector,
)
from repro.exceptions import EmptySeriesError, ValidationError


class TestAsSeries:
    def test_list_input_converted_to_float_array(self):
        arr = as_series([1, 2, 3])
        assert arr.dtype == float
        assert arr.tolist() == [1.0, 2.0, 3.0]

    def test_numpy_input_copied_not_aliased(self):
        original = np.array([1.0, 2.0])
        arr = as_series(original)
        arr[0] = 99.0
        assert original[0] == 1.0

    def test_generator_input_accepted(self):
        arr = as_series(float(v) for v in range(5))
        assert arr.size == 5

    def test_empty_input_raises_empty_series_error(self):
        with pytest.raises(EmptySeriesError):
            as_series([])

    def test_two_dimensional_input_rejected(self):
        with pytest.raises(ValidationError):
            as_series(np.zeros((3, 3)))

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            as_series([1.0, np.nan, 2.0])

    def test_infinity_rejected(self):
        with pytest.raises(ValidationError):
            as_series([1.0, np.inf])

    def test_name_appears_in_error_message(self):
        with pytest.raises(ValidationError, match="myarg"):
            as_series([np.nan], name="myarg")

    def test_result_is_contiguous(self):
        arr = as_series(np.arange(10.0)[::2])
        assert arr.flags["C_CONTIGUOUS"]


class TestScalarChecks:
    def test_check_positive_accepts_positive(self):
        assert check_positive(2.5, "v") == 2.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive(0.0, "v")

    def test_check_positive_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive(-1.0, "v")

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative(0.0, "v") == 0.0

    def test_check_non_negative_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative(-0.1, "v")

    def test_check_fraction_inclusive_bounds(self):
        assert check_fraction(0.0, "v") == 0.0
        assert check_fraction(1.0, "v") == 1.0

    def test_check_fraction_exclusive_bounds(self):
        with pytest.raises(ValidationError):
            check_fraction(0.0, "v", inclusive=False)
        with pytest.raises(ValidationError):
            check_fraction(1.0, "v", inclusive=False)

    def test_check_fraction_out_of_range(self):
        with pytest.raises(ValidationError):
            check_fraction(1.5, "v")

    def test_check_int_at_least_accepts_minimum(self):
        assert check_int_at_least(3, 3, "v") == 3

    def test_check_int_at_least_rejects_below_minimum(self):
        with pytest.raises(ValidationError):
            check_int_at_least(2, 3, "v")

    def test_check_int_at_least_rejects_non_integer(self):
        with pytest.raises(ValidationError):
            check_int_at_least(2.5, 1, "v")


class TestProbabilityVector:
    def test_normalises_to_unit_sum(self):
        vec = check_probability_vector([1.0, 1.0, 2.0])
        assert vec.sum() == pytest.approx(1.0)
        assert vec[2] == pytest.approx(0.5)

    def test_rejects_negative_entries(self):
        with pytest.raises(ValidationError):
            check_probability_vector([0.5, -0.5])

    def test_rejects_zero_sum(self):
        with pytest.raises(ValidationError):
            check_probability_vector([0.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            check_probability_vector([])
