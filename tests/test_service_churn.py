"""Churn equivalence: interleaved add/remove/query against a Workspace
must be bit-identical to a fresh Workspace rebuilt from the surviving
series — across exact, indexed-tfidf and indexed-pq paths, with derived
snapshots on and off, and for readers holding pre-mutation snapshots.

These are the PR 6 acceptance tests for the incremental serving
snapshot: derivation (shared prepared segments + appended segments +
query-time tombstones) is an implementation detail that must never be
observable in results.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.datasets.synthetic import make_gun_like
from repro.service import (
    EngineConfig,
    IndexConfig,
    ServingConfig,
    Workspace,
    WorkspaceConfig,
)

K = 3


@pytest.fixture(scope="module")
def dataset():
    return make_gun_like(num_series=16, seed=41)


def _config(*, incremental_snapshots=True, rank_mode="tfidf", backend="serial"):
    return WorkspaceConfig(
        engine=EngineConfig(constraint="fc,fw", backend=backend),
        index=IndexConfig(
            num_codewords=24,
            num_shards=2,
            candidate_budget=6,
            pq=True,
            pq_subquantizers=4,
            rank_mode=rank_mode,
        ),
        serving=ServingConfig(incremental_snapshots=incremental_snapshots),
        default_k=K,
    )


def _series_map(dataset):
    return {ts.identifier: (ts.values, ts.label) for ts in dataset.series}


def _fresh_from_survivors(config, dataset, survivors):
    """A from-scratch Workspace over the surviving roster, in order."""
    by_id = _series_map(dataset)
    fresh = Workspace(config)
    for identifier in survivors:
        values, label = by_id[identifier]
        fresh.add(values, identifier=identifier, label=label)
    return fresh


# One churn script: (op, identifier-index or None).  Queries interleave
# with adds and removes, including a remove-then-readd of the same id.
CHURN_SCRIPT = [
    ("query", None),
    ("add", 6), ("query", None),
    ("add", 7), ("add", 8), ("query", None),
    ("remove", 2), ("query", None),
    ("remove", 7), ("add", 9), ("query", None),
    ("add", 7), ("query", None),      # re-add a previously removed id
    ("remove", 0), ("remove", 5), ("query", None),
    ("add", 10), ("add", 11), ("remove", 3), ("query", None),
]


def _run_churn(workspace, dataset, *, mode, candidates=None, check=None):
    """Drive CHURN_SCRIPT; call `check(workspace, survivors)` per query."""
    by_id = _series_map(dataset)
    ids = [ts.identifier for ts in dataset.series]
    for position in range(6):  # seed roster
        values, label = by_id[ids[position]]
        workspace.add(values, identifier=ids[position], label=label)
    survivors = list(ids[:6])
    for op, arg in CHURN_SCRIPT:
        if op == "add":
            identifier = ids[arg]
            values, label = by_id[identifier]
            workspace.add(values, identifier=identifier, label=label)
            survivors.append(identifier)
        elif op == "remove":
            identifier = ids[arg]
            workspace.remove(identifier)
            survivors.remove(identifier)
        else:
            check(workspace, list(survivors))
    return survivors


def _outcomes(workspace, queries, *, mode, candidates=None):
    return [
        (r.ids, r.distances, r.indices)
        for r in (
            workspace.query(q, K, mode=mode, candidates=candidates)
            for q in queries
        )
    ]


class TestChurnExactEquivalence:
    @pytest.mark.parametrize("backend", ["serial", "vectorized"])
    def test_exact_bit_identical_to_fresh_rebuild(self, dataset, backend):
        queries = [ts.values for ts in dataset.series[:3]]
        config = _config(backend=backend)

        def check(workspace, survivors):
            fresh = _fresh_from_survivors(config, dataset, survivors)
            ours = _outcomes(workspace, queries, mode="exact")
            want = _outcomes(fresh, queries, mode="exact")
            assert ours == want

        workspace = Workspace(config)
        _run_churn(workspace, dataset, mode="exact", check=check)

    def test_derived_vs_rebuilt_snapshots_identical(self, dataset):
        """incremental_snapshots on/off must be indistinguishable at any
        candidate budget (same workspace lineage, same index deltas)."""
        queries = [ts.values for ts in dataset.series[:3]]
        derived_cfg = _config(incremental_snapshots=True)
        rebuilt_cfg = _config(incremental_snapshots=False)
        derived = Workspace(derived_cfg)
        rebuilt = Workspace(rebuilt_cfg)
        collected = {"derived": [], "rebuilt": []}

        def check_for(workspace, bucket):
            def check(_, survivors):
                collected[bucket].append(
                    _outcomes(workspace, queries, mode="exact")
                )
            return check

        _run_churn(derived, dataset, mode="exact",
                   check=check_for(derived, "derived"))
        _run_churn(rebuilt, dataset, mode="exact",
                   check=check_for(rebuilt, "rebuilt"))
        assert collected["derived"] == collected["rebuilt"]

    def test_derivation_actually_engaged(self, dataset):
        """The on-path sanity check: after a mutation the next snapshot
        shares the previous engine's prepared segments (it was derived,
        not rebuilt)."""
        workspace = Workspace(_config())
        for ts in dataset.series[:6]:
            workspace.add(ts.values, identifier=ts.identifier, label=ts.label)
        workspace.query(dataset[0].values, 2, mode="exact")
        before = workspace._serving
        assert before is not None
        workspace.add(dataset[6].values, identifier=dataset[6].identifier)
        workspace.query(dataset[0].values, 2, mode="exact")
        after = workspace._serving
        assert after is not None and after is not before
        before_segments = set(map(id, before.engine._prepared.segments))
        after_segments = set(map(id, after.engine._prepared.segments))
        assert before_segments & after_segments, (
            "derived snapshot does not share any prepared segment with "
            "its base — the O(new) derivation path did not engage"
        )


class TestChurnIndexedEquivalence:
    @pytest.mark.parametrize("rank_mode", ["tfidf", "pq"])
    def test_indexed_bit_identical_to_fresh_at_full_budget(
        self, dataset, rank_mode
    ):
        """With candidates >= N the indexed ranking equals the exhaustive
        one, so churned-vs-fresh must match even though delta-shard IDF
        drift can reorder *candidates* (budget covers everything)."""
        queries = [ts.values for ts in dataset.series[:3]]
        config = _config(rank_mode=rank_mode)
        budget = len(dataset.series) + 8

        def check(workspace, survivors):
            if not workspace.has_index:
                return
            fresh = _fresh_from_survivors(config, dataset, survivors)
            fresh.build_index()
            ours = _outcomes(
                workspace, queries, mode="indexed", candidates=budget
            )
            want = _outcomes(
                fresh, queries, mode="indexed", candidates=budget
            )
            assert ours == want

        workspace = Workspace(config)
        _run_churn_with_index(workspace, dataset, check=check, budget=budget)

    @pytest.mark.parametrize("rank_mode", ["tfidf", "pq"])
    def test_indexed_derived_vs_rebuilt_snapshots_identical(
        self, dataset, rank_mode
    ):
        """Derived and rebuilt snapshots over the same index state must be
        bit-identical at any candidate budget (the index deltas are
        shared; only the engine/snapshot lineage differs)."""
        queries = [ts.values for ts in dataset.series[:3]]
        outcomes = {}
        for incremental, bucket in ((True, "derived"), (False, "rebuilt")):
            config = _config(
                incremental_snapshots=incremental, rank_mode=rank_mode
            )
            workspace = Workspace(config)
            collected = []

            def check(ws, survivors, _collected=collected):
                if ws.has_index:
                    _collected.append(
                        _outcomes(ws, queries, mode="indexed", candidates=4)
                    )

            _run_churn_with_index(workspace, dataset, check=check, budget=4)
            outcomes[bucket] = collected
        assert outcomes["derived"] == outcomes["rebuilt"]
        assert outcomes["derived"], "no indexed queries ran"


def _run_churn_with_index(workspace, dataset, *, check, budget):
    """Like _run_churn but builds the index after seeding the roster."""
    by_id = _series_map(dataset)
    ids = [ts.identifier for ts in dataset.series]
    for position in range(6):
        values, label = by_id[ids[position]]
        workspace.add(values, identifier=ids[position], label=label)
    workspace.build_index()
    survivors = list(ids[:6])
    for op, arg in CHURN_SCRIPT:
        if op == "add":
            identifier = ids[arg]
            values, label = by_id[identifier]
            workspace.add(values, identifier=identifier, label=label)
            survivors.append(identifier)
        elif op == "remove":
            identifier = ids[arg]
            workspace.remove(identifier)
            survivors.remove(identifier)
        else:
            check(workspace, list(survivors))
    return survivors


class TestSnapshotIsolation:
    def test_pre_mutation_snapshot_serves_unchanged_results(self, dataset):
        """A reader holding the snapshot taken before a burst of churn
        keeps getting the exact pre-churn results — derivation must
        never mutate its base."""
        workspace = Workspace(_config())
        for ts in dataset.series[:8]:
            workspace.add(ts.values, identifier=ts.identifier, label=ts.label)
        queries = [ts.values for ts in dataset.series[:3]]
        baseline = _outcomes(workspace, queries, mode="exact")
        held = workspace._ensure_serving()

        stop = threading.Event()
        errors = []

        def old_reader():
            while not stop.is_set():
                for qi, values in enumerate(queries):
                    try:
                        result = held.engine.query(values, K)
                        got = (
                            tuple(h.identifier for h in result.hits),
                            tuple(h.distance for h in result.hits),
                        )
                        assert got == baseline[qi][:2]
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)
                        return

        threads = [threading.Thread(target=old_reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for ts in dataset.series[8:12]:
            workspace.add(ts.values, identifier=ts.identifier, label=ts.label)
            workspace.query(queries[0], 2, mode="exact")  # force derivations
        workspace.remove(dataset.series[1].identifier)
        workspace.query(queries[0], 2, mode="exact")
        stop.set()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

        # And the post-churn workspace equals a fresh rebuild.
        survivors = workspace.identifiers
        fresh = _fresh_from_survivors(_config(), dataset, survivors)
        assert _outcomes(workspace, queries, mode="exact") == _outcomes(
            fresh, queries, mode="exact"
        )

    def test_many_consecutive_derivations_stay_exact(self, dataset):
        """Chained derivations (each snapshot derived from the last) never
        drift from the fresh rebuild, and segment merging keeps the
        segment count logarithmic."""
        config = _config()
        workspace = Workspace(config)
        ts0 = dataset.series[0]
        workspace.add(ts0.values, identifier=ts0.identifier, label=ts0.label)
        workspace.query(ts0.values, 1, mode="exact")
        for step, ts in enumerate(dataset.series[1:], start=1):
            workspace.add(ts.values, identifier=ts.identifier, label=ts.label)
            workspace.query(ts0.values, min(K, step + 1), mode="exact")
        snapshot = workspace._ensure_serving()
        num_segments = len(snapshot.engine._prepared.segments)
        assert num_segments <= int(np.log2(len(dataset.series))) + 2
        fresh = _fresh_from_survivors(config, dataset, workspace.identifiers)
        queries = [ts.values for ts in dataset.series[:4]]
        assert _outcomes(workspace, queries, mode="exact") == _outcomes(
            fresh, queries, mode="exact"
        )
