"""Tests for the incremental extractor: exact equivalence with batch extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DescriptorConfig, SDTWConfig
from repro.core.features import extract_salient_features
from repro.streaming.buffer import StreamBuffer
from repro.streaming.incremental import (
    IncrementalExtractor,
    _incremental_smooth,
    _smooth_region,
)
from repro.utils.preprocessing import gaussian_smooth


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(42)
    t = np.linspace(0.0, 60.0, 2000)
    return np.sin(t) + 0.4 * np.sin(3.1 * t) + np.cumsum(rng.normal(0, 0.03, t.size))


@pytest.fixture(scope="module")
def config():
    return SDTWConfig(descriptor=DescriptorConfig(num_bins=16))


def assert_features_identical(batch, incremental):
    assert len(batch) == len(incremental)
    for a, b in zip(batch, incremental):
        assert a.position == b.position
        assert a.sigma == b.sigma
        assert a.scope_start == b.scope_start
        assert a.scope_end == b.scope_end
        assert a.octave == b.octave and a.level == b.level
        assert a.amplitude == b.amplitude
        assert a.mean_amplitude == b.mean_amplitude
        assert a.dog_value == b.dog_value
        assert a.scale_class == b.scale_class
        np.testing.assert_array_equal(a.descriptor, b.descriptor)


class TestIncrementalSmoothing:
    def test_smooth_region_slices_match_full(self, stream):
        base = stream[:200]
        for sigma in (1.0, 1.4142, 2.0):
            full = gaussian_smooth(base, sigma)
            for lo, hi in ((0, 10), (5, 40), (150, 200), (0, 200), (97, 113)):
                np.testing.assert_array_equal(
                    _smooth_region(base, sigma, lo, hi), full[lo:hi]
                )

    def test_incremental_smooth_bitwise_equal(self, stream):
        sigma = 1.5
        n = 160
        prev = gaussian_smooth(stream[:n], sigma)
        for shift in (1, 7, 32):
            base = stream[shift: shift + n]
            smoothed, reused = _incremental_smooth(base, sigma, prev, shift)
            np.testing.assert_array_equal(smoothed, gaussian_smooth(base, sigma))
            assert reused > 0

    def test_incremental_smooth_falls_back_when_shift_too_large(self, stream):
        sigma = 1.5
        n = 40
        prev = gaussian_smooth(stream[:n], sigma)
        base = stream[n - 1: 2 * n - 1]
        smoothed, reused = _incremental_smooth(base, sigma, prev, n - 1)
        np.testing.assert_array_equal(smoothed, gaussian_smooth(base, sigma))
        assert reused == 0

    def test_dirty_margins_respected(self, stream):
        # With declared dirty edges the reused interior shrinks accordingly
        # but the output stays exact.
        sigma = 1.2
        n = 120
        prev = gaussian_smooth(stream[:n], sigma)
        base = stream[8: 8 + n]
        smoothed, reused_clean = _incremental_smooth(base, sigma, prev, 8)
        smoothed_dirty, reused_dirty = _incremental_smooth(
            base, sigma, prev, 8, dirty_head=10, dirty_tail=10
        )
        np.testing.assert_array_equal(smoothed, smoothed_dirty)
        assert reused_dirty < reused_clean


class TestIncrementalExtractor:
    def test_features_identical_to_batch_at_every_refresh(self, stream, config):
        window = 256
        extractor = IncrementalExtractor(window, config)
        buffer = StreamBuffer(window)
        refreshes = 0
        for value in stream[:1200]:
            buffer.append(value)
            if extractor.observe(buffer):
                refreshes += 1
                batch = extract_salient_features(buffer.window(window), config)
                assert_features_identical(batch, extractor.features())
        assert refreshes > 5
        assert extractor.stats.samples_reused > 0
        assert extractor.stats.descriptors_reused > 0

    def test_misaligned_refresh_still_exact(self, stream, config):
        # A hop that is not a multiple of the coarsest octave stride breaks
        # downsampling alignment; coarse octaves fall back to full
        # recomputation but the output must stay identical.
        window = 256
        extractor = IncrementalExtractor(window, config, hop=extractor_hop(window, 13))
        buffer = StreamBuffer(window)
        for value in stream[:800]:
            buffer.append(value)
            if extractor.observe(buffer):
                batch = extract_salient_features(buffer.window(window), config)
                assert_features_identical(batch, extractor.features())

    def test_descriptor_reuse_disabled_gives_same_features(self, stream, config):
        window = 128
        with_cache = IncrementalExtractor(window, config, reuse_descriptors=True)
        without = IncrementalExtractor(window, config, reuse_descriptors=False)
        buf_a = StreamBuffer(window)
        buf_b = StreamBuffer(window)
        for value in stream[:600]:
            buf_a.append(value)
            buf_b.append(value)
            ra = with_cache.observe(buf_a)
            rb = without.observe(buf_b)
            assert ra == rb
            if ra:
                assert_features_identical(without.features(), with_cache.features())
        assert with_cache.stats.descriptors_reused > 0
        assert without.stats.descriptors_reused == 0

    def test_refresh_cadence_and_snapshot_bookkeeping(self, stream, config):
        window = 64
        extractor = IncrementalExtractor(window, config, hop=16)
        buffer = StreamBuffer(window)
        refresh_starts = []
        for value in stream[:300]:
            buffer.append(value)
            if extractor.observe(buffer):
                refresh_starts.append(extractor.snapshot_start)
        assert refresh_starts[0] == 0
        assert all(b - a == 16 for a, b in zip(refresh_starts, refresh_starts[1:]))
        assert extractor.snapshot_end == refresh_starts[-1] + window - 1

    def test_features_absolute_offsets_positions(self, stream, config):
        window = 64
        extractor = IncrementalExtractor(window, config)
        buffer = StreamBuffer(window)
        for value in stream[200:200 + 2 * window]:
            buffer.append(value)
            extractor.observe(buffer)
        start = extractor.snapshot_start
        assert start > 0
        relative = extractor.features()
        absolute = extractor.features_absolute()
        assert len(relative) == len(absolute)
        for rel, abs_ in zip(relative, absolute):
            assert abs_.position == rel.position + start
            assert abs_.scope_start == rel.scope_start + start

    def test_window_size_mismatch_rejected(self, config):
        extractor = IncrementalExtractor(64, config)
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            extractor.refresh(np.zeros(32), 0)


def extractor_hop(window: int, hop: int) -> int:
    """Helper keeping the odd-hop intent readable at the call site."""
    assert hop % 2 == 1
    return hop
