"""Correctness tests for the SPRING and sliding-window stream matchers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DescriptorConfig, SDTWConfig
from repro.dtw.full import dtw_distance
from repro.streaming.buffer import StreamBuffer
from repro.streaming.subsequence import (
    MatchSuppressor,
    SlidingWindowMatcher,
    SpringMatcher,
)


@pytest.fixture(scope="module")
def pattern():
    return np.sin(np.linspace(0.0, 2.0 * np.pi, 12))


@pytest.fixture(scope="module")
def noisy_stream(pattern):
    rng = np.random.default_rng(5)
    stream = rng.normal(0.0, 0.4, 140)
    stream[30:42] = pattern + rng.normal(0.0, 0.02, 12)
    stream[90:102] = pattern + rng.normal(0.0, 0.02, 12)
    return stream


class TestSpringColumns:
    def test_dp_column_equals_brute_force_windowed_dtw(self, pattern):
        """d[i] must equal min over starts of DTW(pattern[:i+1], x[s..t]).

        The brute force runs full DTW on every (start, prefix) pair — a
        completely independent code path (O(n^2 m^2) overall), so
        agreement certifies the carried-column recurrence.
        """
        rng = np.random.default_rng(9)
        stream = rng.normal(0.0, 0.5, 36)
        m = pattern.size
        # Tiny threshold: nothing is ever reported, so no cells are
        # invalidated and the raw DP columns stay observable.
        matcher = SpringMatcher(pattern, threshold=1e-12)
        for t, value in enumerate(stream):
            matcher.update(value)
            for i in range(m):
                brute = min(
                    dtw_distance(pattern[: i + 1], stream[s: t + 1])
                    for s in range(t + 1)
                )
                assert matcher._d[i] == pytest.approx(brute, abs=1e-9)

    def test_reported_distance_is_true_subsequence_dtw(self, pattern, noisy_stream):
        matcher = SpringMatcher(pattern, threshold=1.0)
        matches = []
        for value in noisy_stream:
            matches.extend(matcher.update(value))
        matches.extend(matcher.finalize())
        assert len(matches) == 2
        for match in matches:
            exact = dtw_distance(pattern, noisy_stream[match.start: match.end + 1])
            assert match.distance == pytest.approx(exact, abs=1e-9)
            assert match.distance <= 1.0
        starts = [m.start for m in matches]
        assert 28 <= starts[0] <= 34
        assert 88 <= starts[1] <= 94

    def test_reported_matches_never_overlap(self, pattern):
        rng = np.random.default_rng(17)
        stream = rng.normal(0.0, 0.3, 400)
        for pos in range(30, 360, 40):
            stream[pos: pos + 12] = pattern + rng.normal(0.0, 0.05, 12)
        matcher = SpringMatcher(pattern, threshold=1.5)
        matches = []
        for value in stream:
            matches.extend(matcher.update(value))
        matches.extend(matcher.finalize())
        assert len(matches) >= 2
        for first, second in zip(matches, matches[1:]):
            assert first.end < second.start

    def test_threshold_boundary_inclusive(self, pattern, noisy_stream):
        """A subsequence at distance exactly ε must match (<=, not <)."""
        probe = SpringMatcher(pattern, threshold=10.0)
        best = np.inf
        for value in noisy_stream:
            for match in probe.update(value):
                best = min(best, match.distance)
        exact = SpringMatcher(pattern, threshold=best)
        hits = []
        for value in noisy_stream:
            hits.extend(exact.update(value))
        hits.extend(exact.finalize())
        assert any(h.distance == pytest.approx(best, abs=0.0) for h in hits)
        below = SpringMatcher(pattern, threshold=best * (1 - 1e-9))
        hits_below = []
        for value in noisy_stream:
            hits_below.extend(below.update(value))
        hits_below.extend(below.finalize())
        assert all(h.distance < best for h in hits_below)

    def test_overlapping_candidates_suppressed_to_local_optimum(self, pattern):
        """Two overlapping sub-threshold windows yield one (best) match."""
        rng = np.random.default_rng(3)
        stream = rng.normal(0.0, 0.35, 80)
        # One embedded occurrence; with a loose threshold, many overlapping
        # subsequences around it qualify.
        stream[40:52] = pattern + rng.normal(0.0, 0.01, 12)
        matcher = SpringMatcher(pattern, threshold=2.5)
        matches = []
        for value in stream:
            matches.extend(matcher.update(value))
        matches.extend(matcher.finalize())
        inside = [m for m in matches if m.start <= 51 and m.end >= 40]
        assert len(inside) == 1
        # The survivor is locally optimal: no overlapping window does better.
        best = inside[0]
        m = pattern.size
        for start in range(max(0, best.start - 6), best.start + 7):
            for end in range(start + m // 2, min(stream.size, start + 2 * m)):
                if start <= best.end and best.start <= end:
                    assert (
                        dtw_distance(pattern, stream[start: end + 1])
                        >= best.distance - 1e-9
                    )

    def test_finalize_flushes_pending_candidate(self, pattern):
        rng = np.random.default_rng(8)
        stream = np.concatenate([
            rng.normal(0.0, 0.4, 30),
            pattern + rng.normal(0.0, 0.02, 12),
        ])
        matcher = SpringMatcher(pattern, threshold=1.0)
        matches = []
        for value in stream:
            matches.extend(matcher.update(value))
        # The occurrence runs to the very end of the stream: it is still a
        # pending candidate until finalize.
        assert matches == []
        flushed = matcher.finalize()
        assert len(flushed) == 1
        assert flushed[0].end == stream.size - 1


class TestMatchSuppressor:
    def test_best_of_overlapping_run_wins(self):
        suppressor = MatchSuppressor(window_length=5, threshold=1.0)
        profile = {3: 0.9, 4: 0.5, 5: 0.7}
        emitted = []
        for tick in range(20):
            result = suppressor.observe(tick, profile.get(tick, np.inf))
            if result is not None:
                emitted.append(result)
        final = suppressor.flush()
        if final is not None:
            emitted.append(final)
        assert emitted == [(0, 4, 0.5)]

    def test_non_overlapping_candidates_both_emitted(self):
        suppressor = MatchSuppressor(window_length=4, threshold=1.0)
        emitted = []
        for tick in range(20):
            distance = {5: 0.3, 12: 0.6}.get(tick, np.inf)
            result = suppressor.observe(tick, distance)
            if result is not None:
                emitted.append(result)
        final = suppressor.flush()
        if final is not None:
            emitted.append(final)
        assert emitted == [(2, 5, 0.3), (9, 12, 0.6)]

    def test_pruned_ticks_advance_time(self):
        suppressor = MatchSuppressor(window_length=3, threshold=1.0)
        assert suppressor.observe(0, 0.2) is None
        assert suppressor.observe(1, np.inf) is None
        assert suppressor.observe(2, np.inf) is None
        # tick 3 no longer overlaps the candidate ending at 0.
        assert suppressor.observe(3, np.inf) == (-2, 0, 0.2)


class TestSlidingWindowMatcher:
    @pytest.fixture(scope="class")
    def sliding_setup(self):
        rng = np.random.default_rng(12)
        m = 32
        pattern = np.sin(np.linspace(0.0, 2.0 * np.pi, m)) + 0.2 * np.cos(
            np.linspace(0.0, 9.0, m)
        )
        stream = rng.normal(0.0, 0.4, 500)
        for pos in (80, 240, 420):
            stream[pos: pos + m] = pattern + rng.normal(0.0, 0.03, m)
        config = SDTWConfig(descriptor=DescriptorConfig(num_bins=16))
        return pattern, stream, config

    def run_matcher(self, matcher, stream):
        buffer = StreamBuffer(4 * matcher.window_length)
        matches = []
        for value in stream:
            buffer.append(value)
            matches.extend(matcher.update(buffer))
        matches.extend(matcher.finalize())
        return matches

    def test_finds_embedded_occurrences(self, sliding_setup):
        pattern, stream, config = sliding_setup
        matcher = SlidingWindowMatcher(pattern, 4.0, config=config)
        matches = self.run_matcher(matcher, stream)
        starts = sorted(m.start for m in matches)
        assert len(starts) == 3
        assert all(
            abs(start - pos) <= 2 for start, pos in zip(starts, (80, 240, 420))
        )

    def test_pruning_never_changes_matches(self, sliding_setup):
        """LB_Kim / LB_Keogh / early abandon are exact: identical reports."""
        pattern, stream, config = sliding_setup
        full = SlidingWindowMatcher(
            pattern, 4.0, config=config,
            use_lb_kim=False, use_lb_keogh=False, early_abandon=False,
        )
        cascaded = SlidingWindowMatcher(pattern, 4.0, config=config)
        reference = self.run_matcher(full, stream)
        pruned = self.run_matcher(cascaded, stream)
        assert [(m.start, m.end, m.distance) for m in reference] == [
            (m.start, m.end, m.distance) for m in pruned
        ]
        assert cascaded.stats.pruned > 0
        assert cascaded.stats.cells_filled < full.stats.cells_filled

    def test_adaptive_constraint_runs_and_prunes_cells(self, sliding_setup):
        pattern, stream, config = sliding_setup
        matcher = SlidingWindowMatcher(
            pattern, 4.0, constraint="ac,aw", config=config,
        )
        matches = self.run_matcher(matcher, stream[:300])
        assert matcher.extractor is not None
        assert matcher.stats.evaluated > 0
        # The locally relevant band must be narrower than the full grid.
        assert matcher.stats.cells_filled < matcher.stats.total_cells
        for match in matches:
            assert match.distance <= 4.0

    def test_non_boundable_distance_disables_bounds(self, sliding_setup):
        pattern, stream, config = sliding_setup
        from dataclasses import replace

        squared = replace(config, pointwise_distance="squared")
        matcher = SlidingWindowMatcher(pattern, 4.0, config=squared)
        assert not matcher.use_lb_kim
        assert not matcher.use_lb_keogh
        self.run_matcher(matcher, stream[:200])
        assert matcher.stats.pruned == 0


class TestSpringOracleAgreement:
    """Regression: the per-tick recompute oracle must replay report-time
    cell invalidations at the tick they happened, not retroactively —
    seeds 2 and 8 used to diverge."""

    @pytest.mark.parametrize("seed", [2, 8, 11, 19])
    def test_oracle_matches_online_on_randomised_streams(self, seed):
        from repro.streaming.offline import naive_spring_scan

        rng = np.random.default_rng(seed)
        m = 8
        pattern = np.sin(np.linspace(0.0, 2.0 * np.pi, m))
        stream = rng.normal(0.0, 0.6, 120)
        threshold = float(rng.uniform(1.0, 7.0))
        matcher = SpringMatcher(pattern, threshold)
        online = []
        for value in stream:
            online.extend(matcher.update(value))
        online.extend(matcher.finalize())
        offline = naive_spring_scan(stream, pattern, threshold)
        assert [(x.start, x.end) for x in online] == [
            (x.start, x.end) for x in offline
        ]
        for a, b in zip(online, offline):
            assert a.distance == pytest.approx(b.distance, abs=1e-9)


class TestNonFiniteSamples:
    def test_spring_matcher_rejects_nan(self, pattern):
        from repro.exceptions import ValidationError

        matcher = SpringMatcher(pattern, threshold=1.0)
        matcher.update(0.5)
        with pytest.raises(ValidationError):
            matcher.update(np.nan)
        with pytest.raises(ValidationError):
            matcher.update(np.inf)

    def test_monitor_push_rejects_nan(self, pattern):
        from repro.exceptions import ValidationError
        from repro.streaming import StreamMonitor

        monitor = StreamMonitor()
        monitor.add_stream("s")
        monitor.add_pattern(pattern, name="p", threshold=1.0, mode="spring")
        monitor.push("s", 0.1)
        with pytest.raises(ValidationError):
            monitor.push("s", float("nan"))
        # A rejected sample must not leave the matcher poisoned.
        matcher = monitor.matcher("s", "p")
        assert np.isfinite(matcher._d[np.isfinite(matcher._d)]).all()
