"""Tests for the UCR file format I/O and the data-set registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.base import Dataset, TimeSeries
from repro.datasets.registry import available_datasets, load_dataset, register_dataset
from repro.datasets.synthetic import make_gun_like
from repro.datasets.ucr import read_ucr_file, write_ucr_file
from repro.exceptions import DatasetError


class TestUCRFormat:
    def test_round_trip_comma_separated(self, tmp_path):
        original = make_gun_like(num_series=5, seed=2)
        path = tmp_path / "gun_train.txt"
        write_ucr_file(original, path)
        loaded = read_ucr_file(path, name="gun")
        assert len(loaded) == 5
        assert loaded.labels == original.labels
        for a, b in zip(original, loaded):
            np.testing.assert_allclose(a.values, b.values, atol=1e-5)

    def test_whitespace_separated_files_supported(self, tmp_path):
        path = tmp_path / "space.txt"
        path.write_text("1 0.5 0.7 0.9\n2 0.1 0.2 0.3\n")
        dataset = read_ucr_file(path)
        assert len(dataset) == 2
        assert dataset[0].label == 1
        np.testing.assert_allclose(dataset[1].values, [0.1, 0.2, 0.3])

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blanks.txt"
        path.write_text("1,0.5,0.7\n\n2,0.1,0.2\n\n")
        assert len(read_ucr_file(path)) == 2

    def test_float_labels_rounded_to_int(self, tmp_path):
        path = tmp_path / "floatlabel.txt"
        path.write_text("1.0,0.5,0.7\n")
        assert read_ucr_file(path)[0].label == 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            read_ucr_file(tmp_path / "does_not_exist.txt")

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1,abc,def\n")
        with pytest.raises(DatasetError):
            read_ucr_file(path)

    def test_label_only_line_raises(self, tmp_path):
        path = tmp_path / "short.txt"
        path.write_text("1\n")
        with pytest.raises(DatasetError):
            read_ucr_file(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("\n\n")
        with pytest.raises(DatasetError):
            read_ucr_file(path)

    def test_default_name_from_filename(self, tmp_path):
        path = tmp_path / "MyDataset_TRAIN.txt"
        path.write_text("1,0.5,0.7,0.8\n2,0.2,0.1,0.0\n")
        assert read_ucr_file(path).name == "MyDataset_TRAIN"


class TestRegistry:
    def test_paper_datasets_registered(self):
        names = available_datasets()
        assert "gun" in names
        assert "trace" in names
        assert "50words" in names

    def test_small_variants_registered(self):
        names = available_datasets()
        assert "gun-small" in names
        assert "50words-small" in names

    def test_load_by_name(self):
        dataset = load_dataset("gun-small")
        assert len(dataset) == 16
        assert dataset.num_classes == 2

    def test_load_by_name_case_insensitive(self):
        assert len(load_dataset("GUN-SMALL")) == 16

    def test_load_unknown_name_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("not-a-dataset")

    def test_load_from_ucr_path(self, tmp_path):
        original = make_gun_like(num_series=4, seed=2)
        path = tmp_path / "file.txt"
        write_ucr_file(original, path)
        loaded = load_dataset(str(path))
        assert len(loaded) == 4

    def test_register_custom_builder(self):
        register_dataset(
            "two-lines",
            lambda seed=7: Dataset(
                name="two-lines",
                series=[
                    TimeSeries(values=np.arange(10.0), label=0),
                    TimeSeries(values=np.arange(10.0)[::-1], label=1),
                ],
            ),
        )
        dataset = load_dataset("two-lines")
        assert len(dataset) == 2

    def test_seed_changes_synthetic_content(self):
        a = load_dataset("gun-small", seed=1)
        b = load_dataset("gun-small", seed=2)
        assert any(
            not np.allclose(x.values, y.values) for x, y in zip(a, b)
        )
