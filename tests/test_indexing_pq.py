"""The residual product quantizer and PQ-ranked candidate generation.

Checks the codec itself (fit/encode/decode round trips, asymmetric
distance tables, determinism, persistence, compression accounting) and
its integration with :class:`IndexedSearcher`: ``rank_mode="pq"``
queries stay exact within the candidate set (C = N reproduces the
exhaustive ranking bit for bit), self-queries rank themselves first,
and PQ state survives save/open and compaction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DescriptorConfig, SDTWConfig
from repro.datasets.synthetic import make_gun_like
from repro.exceptions import ConfigurationError, ValidationError
from repro.indexing import (
    CodebookConfig,
    IndexedSearcher,
    PQConfig,
    ResidualPQ,
)
from repro.indexing.pq import pack_codes, unpack_codes
from repro.service import IndexConfig, Workspace, WorkspaceConfig
from repro.utils.rng import rng_from_seed

CONFIG = SDTWConfig(descriptor=DescriptorConfig(num_bins=16))


def _residuals(num=300, dim=20, seed=3):
    rng = rng_from_seed(seed)
    return rng.normal(size=(num, dim))


class TestPQConfig:
    def test_defaults_valid(self):
        config = PQConfig()
        assert config.subquantizers == 8
        assert config.bits == 8

    @pytest.mark.parametrize("kwargs", [
        {"subquantizers": 0},
        {"bits": 0},
        {"bits": 9},
        {"iterations": 0},
        {"training_sample": 0},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PQConfig(**kwargs)


class TestResidualPQ:
    def test_fit_encode_shapes(self):
        pq = ResidualPQ(PQConfig(subquantizers=4, bits=6)).fit(_residuals())
        assert pq.is_fitted
        assert pq.num_subquantizers == 4
        assert pq.num_subcentroids == 64
        assert pq.dim == 20
        codes = pq.encode(_residuals(num=17))
        assert codes.shape == (17, 4)
        assert codes.dtype == np.uint8

    def test_dimension_padding(self):
        # 20 columns over 8 sub-quantizers pads to 24 (sub_dim 3).
        pq = ResidualPQ(PQConfig(subquantizers=8, bits=4)).fit(_residuals())
        assert pq.padded_dim == 24
        decoded = pq.decode(pq.encode(_residuals(num=5)))
        assert decoded.shape == (5, 20)

    def test_fit_is_deterministic(self):
        first = ResidualPQ(PQConfig(subquantizers=4, seed=9)).fit(_residuals())
        second = ResidualPQ(PQConfig(subquantizers=4, seed=9)).fit(_residuals())
        assert np.array_equal(first.centroids, second.centroids)
        probe = _residuals(num=11, seed=5)
        assert np.array_equal(first.encode(probe), second.encode(probe))

    def test_decode_reduces_error(self):
        data = _residuals()
        pq = ResidualPQ(PQConfig(subquantizers=4, bits=8)).fit(data)
        reconstruction = pq.decode(pq.encode(data))
        err = np.linalg.norm(data - reconstruction, axis=1).mean()
        baseline = np.linalg.norm(data, axis=1).mean()
        assert err < baseline

    def test_adc_scores_match_explicit_distances(self):
        data = _residuals()
        pq = ResidualPQ(PQConfig(subquantizers=4, bits=6)).fit(data)
        stored = _residuals(num=9, seed=8)
        codes = pq.encode(stored)
        query = _residuals(num=1, seed=13)[0]
        table = pq.adc_table(query)
        scores = pq.adc_scores(codes, table)
        # ADC distance == exact distance between the query and the
        # *decoded* (quantized) stored vectors, summed per sub-vector.
        padded_query = pq._pad(query.reshape(1, -1))[0]
        m, _, sub_dim = pq.centroids.shape
        expected = np.zeros(len(codes))
        for row in range(len(codes)):
            for sub in range(m):
                centroid = pq.centroids[sub][codes[row, sub]]
                block = padded_query[sub * sub_dim:(sub + 1) * sub_dim]
                expected[row] += ((block - centroid) ** 2).sum()
        assert np.allclose(scores, expected)

    def test_encode_before_fit_rejected(self):
        pq = ResidualPQ(PQConfig())
        with pytest.raises(ValidationError):
            pq.encode(_residuals(num=2))
        with pytest.raises(ValidationError):
            pq.fit(np.zeros((0, 4)))

    def test_mismatched_dim_rejected(self):
        pq = ResidualPQ(PQConfig(subquantizers=4)).fit(_residuals(dim=20))
        with pytest.raises(ValidationError):
            pq.encode(_residuals(num=3, dim=21))

    def test_compression_ratio(self):
        pq = ResidualPQ(PQConfig(subquantizers=5)).fit(_residuals(dim=20))
        # 20 float32 columns = 80 bytes raw vs 5 uint8 code bytes.
        assert pq.compression_ratio == pytest.approx(16.0)
        assert pq.code_bytes == 5

    def test_save_load_round_trip(self, tmp_path):
        pq = ResidualPQ(PQConfig(subquantizers=4, bits=5, seed=2)).fit(
            _residuals()
        )
        path = str(tmp_path / "pq.npz")
        pq.save(path)
        loaded = ResidualPQ.load(path)
        assert loaded.config == pq.config
        assert loaded.dim == pq.dim
        assert np.array_equal(loaded.centroids, pq.centroids)
        probe = _residuals(num=6, seed=21)
        assert np.array_equal(loaded.encode(probe), pq.encode(probe))


class TestPackedCodes:
    """PR 6: sub-byte PQ codes are bit-packed on disk (format v3)."""

    @pytest.mark.parametrize("bits", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_pack_unpack_round_trip(self, bits):
        rng = rng_from_seed(bits)
        codes = rng.integers(0, 2 ** bits, size=(37, 6)).astype(np.uint8)
        packed = pack_codes(codes, bits)
        assert np.array_equal(unpack_codes(packed, bits, 37, 6), codes)

    def test_packed_stream_is_actually_smaller(self):
        codes = rng_from_seed(3).integers(0, 16, size=(100, 8)).astype(np.uint8)
        packed = pack_codes(codes, 4)
        assert packed.nbytes == codes.nbytes // 2

    def test_empty_codes(self):
        packed = pack_codes(np.zeros((0, 4), dtype=np.uint8), 4)
        assert unpack_codes(packed, 4, 0, 4).shape == (0, 4)

    def test_overflowing_code_rejected(self):
        with pytest.raises(ValidationError):
            pack_codes(np.array([[16]], dtype=np.uint8), 4)

    def test_sub_byte_compression_ratio(self):
        # 4-bit codes over 6 sub-quantizers persist as ceil(24/8) = 3
        # bytes per feature instead of 6 — the ratio must reflect the
        # packed (on-disk) footprint, not one byte per code.
        pq = ResidualPQ(PQConfig(subquantizers=6, bits=4)).fit(
            _residuals(dim=18)
        )
        assert pq.code_bytes == 3
        assert pq.compression_ratio == pytest.approx((4.0 * 18) / 3)

    def test_sub_byte_searcher_round_trips_bit_identically(
        self, dataset, tmp_path
    ):
        searcher = IndexedSearcher.from_dataset(
            dataset,
            config=CONFIG,
            codebook_config=CodebookConfig.for_sdtw(
                CONFIG, num_codewords=24, seed=7
            ),
            num_shards=2,
            candidate_budget=6,
            pq_config=PQConfig(subquantizers=4, bits=5, seed=7),
        )
        expected = searcher.query(dataset[1].values, 4, rank_mode="pq")
        directory = str(tmp_path / "idx-packed")
        searcher.save(directory)
        reopened = IndexedSearcher.open(directory, candidate_budget=6)
        for shard in reopened.index.shards:
            if shard.has_pq and shard.pq_codes.size:
                assert int(shard.pq_codes.max()) < 32
        result = reopened.query(dataset[1].values, 4, rank_mode="pq")
        assert [hit.identifier for hit in result.hits] == [
            hit.identifier for hit in expected.hits
        ]
        assert [hit.distance for hit in result.hits] == [
            hit.distance for hit in expected.hits
        ]

    def test_packed_shards_are_smaller_on_disk(self, dataset, tmp_path):
        import os

        sizes = {}
        for bits, name in ((8, "dense"), (4, "packed")):
            searcher = IndexedSearcher.from_dataset(
                dataset,
                config=CONFIG,
                codebook_config=CodebookConfig.for_sdtw(
                    CONFIG, num_codewords=24, seed=7
                ),
                num_shards=1,
                pq_config=PQConfig(subquantizers=8, bits=bits, seed=7),
            )
            directory = str(tmp_path / f"idx-{name}")
            searcher.save(directory)
            sizes[name] = sum(
                os.path.getsize(os.path.join(directory, f))
                for f in os.listdir(directory)
                if f.startswith("shard-")
            )
        assert sizes["packed"] < sizes["dense"]

    def test_v2_dense_shard_still_opens(self, dataset, tmp_path):
        """A version-2 directory (dense pq_codes, manifest version 2)
        must keep opening under the version-3 reader."""
        import json
        import os

        searcher = IndexedSearcher.from_dataset(
            dataset,
            config=CONFIG,
            codebook_config=CodebookConfig.for_sdtw(
                CONFIG, num_codewords=24, seed=7
            ),
            num_shards=2,
            candidate_budget=6,
            pq_config=PQConfig(subquantizers=4, bits=5, seed=7),
        )
        expected = searcher.query(dataset[2].values, 4, rank_mode="pq")
        directory = str(tmp_path / "idx-v2")
        searcher.save(directory)
        # Rewrite the shards dense (the v2 layout: no pq_bits at save
        # time) and stamp the manifest back to version 2.
        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        for entry in manifest["shards"] + manifest.get("delta_shards", []):
            from repro.indexing.shards import IndexShard

            shard = IndexShard.open(
                os.path.join(directory, entry["file"]),
                int(entry["first_codeword"]),
                int(entry["last_codeword"]),
                mmap=False,
            )
            shard.save(os.path.join(directory, entry["file"]))  # dense
        manifest["version"] = 2
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        reopened = IndexedSearcher.open(directory, candidate_budget=6)
        result = reopened.query(dataset[2].values, 4, rank_mode="pq")
        assert [hit.identifier for hit in result.hits] == [
            hit.identifier for hit in expected.hits
        ]


@pytest.fixture(scope="module")
def dataset():
    return make_gun_like(num_series=14, seed=29)


@pytest.fixture(scope="module")
def searcher(dataset):
    return IndexedSearcher.from_dataset(
        dataset,
        config=CONFIG,
        codebook_config=CodebookConfig.for_sdtw(
            CONFIG, num_codewords=24, seed=7
        ),
        num_shards=2,
        candidate_budget=6,
        pq_config=PQConfig(subquantizers=4, seed=7),
    )


class TestSearcherPQMode:
    def test_index_carries_codes(self, searcher):
        assert searcher.pq is not None
        assert searcher.index.has_pq
        assert searcher.index.num_pq_postings > 0
        assert searcher.pq.compression_ratio >= 4.0

    def test_full_budget_pq_reproduces_exhaustive(self, searcher, dataset):
        for probe in (dataset[0].values, dataset[5].values):
            exact = searcher.query(probe, 4, exact=True)
            ranked = searcher.query(
                probe, 4, candidates=len(searcher.engine), rank_mode="pq"
            )
            assert ranked.indices == exact.indices
            assert [hit.distance for hit in ranked.hits] == [
                hit.distance for hit in exact.hits
            ]

    def test_self_query_ranks_itself_first(self, searcher, dataset):
        # A stored series' features quantize to their own codes, so its
        # aggregate asymmetric distance is minimal among candidates.
        candidates = searcher.generate_candidates(
            dataset[3].values, 3, rank_mode="pq"
        )
        assert candidates[0] == 3

    def test_pq_candidates_are_deterministic(self, searcher, dataset):
        first = searcher.generate_candidates(dataset[2].values, 6,
                                             rank_mode="pq")
        second = searcher.generate_candidates(dataset[2].values, 6,
                                              rank_mode="pq")
        assert np.array_equal(first, second)

    def test_rank_mode_validation(self, searcher, dataset):
        with pytest.raises(ValidationError):
            searcher.query(dataset[0].values, 2, rank_mode="cosine")
        plain = IndexedSearcher.from_dataset(
            dataset,
            config=CONFIG,
            codebook_config=CodebookConfig.for_sdtw(
                CONFIG, num_codewords=24, seed=7
            ),
            num_shards=2,
        )
        with pytest.raises(ValidationError):
            plain.query(dataset[0].values, 2, rank_mode="pq")
        with pytest.raises(ValidationError):
            IndexedSearcher(
                plain.index, plain.codebook, plain.engine,
                config=CONFIG, rank_mode="pq",
            )

    def test_pq_survives_save_open(self, searcher, dataset, tmp_path):
        directory = str(tmp_path / "idx")
        expected = searcher.query(dataset[1].values, 4, rank_mode="pq")
        searcher.save(directory)
        reopened = IndexedSearcher.open(directory, candidate_budget=6)
        assert reopened.pq is not None
        assert np.array_equal(reopened.pq.centroids, searcher.pq.centroids)
        result = reopened.query(dataset[1].values, 4, rank_mode="pq")
        assert [hit.identifier for hit in result.hits] == [
            hit.identifier for hit in expected.hits
        ]

    def test_pq_survives_compaction(self, dataset):
        searcher = IndexedSearcher.from_dataset(
            dataset,
            config=CONFIG,
            codebook_config=CodebookConfig.for_sdtw(
                CONFIG, num_codewords=24, seed=7
            ),
            num_shards=2,
            candidate_budget=6,
            pq_config=PQConfig(subquantizers=4, seed=7),
        )
        probe = dataset[0].values * 0.9
        searcher.add_series(probe, identifier="fresh")
        before = searcher.generate_candidates(probe, 6, rank_mode="pq")
        pq_postings = searcher.index.num_pq_postings
        searcher.compact()
        assert searcher.index.num_pq_postings == pq_postings
        after = searcher.generate_candidates(probe, 6, rank_mode="pq")
        assert after[0] == before[0]  # the fresh series still matches itself


class TestWorkspacePQMode:
    def test_workspace_pq_rank_mode(self, dataset):
        config = WorkspaceConfig(
            sdtw=CONFIG,
            index=IndexConfig(
                num_codewords=24, num_shards=2, candidate_budget=6,
                pq_subquantizers=4, rank_mode="pq", seed=7,
            ),
            default_k=3,
        )
        workspace = Workspace(config)
        for ts in dataset.series[:10]:
            workspace.add(ts.values, identifier=ts.identifier, label=ts.label)
        workspace.build_index()
        stats = workspace.stats()["index"]
        assert stats["rank_mode"] == "pq"
        assert stats["pq_compression_ratio"] >= 4.0
        exact = workspace.query(dataset[0].values, 3, mode="exact",
                                exclude_identifier=dataset[0].identifier)
        indexed = workspace.query(dataset[0].values, 3, mode="indexed",
                                  candidates=10,
                                  exclude_identifier=dataset[0].identifier)
        assert indexed.ids == exact.ids
        assert indexed.distances == exact.distances

    def test_rank_mode_pq_requires_pq(self):
        with pytest.raises(ConfigurationError):
            IndexConfig(pq=False, rank_mode="pq")
