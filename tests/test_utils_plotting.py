"""Tests for the ASCII visualisation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtw.constraints import sakoe_chiba_band
from repro.dtw.full import dtw
from repro.exceptions import ValidationError
from repro.utils.plotting import (
    ascii_series,
    render_band,
    render_warp_path,
    side_by_side,
    sparkline,
)


class TestSparkline:
    def test_width_respected(self):
        assert len(sparkline(np.sin(np.linspace(0, 5, 50)), width=40)) == 40

    def test_constant_series_uses_lowest_block(self):
        line = sparkline(np.full(20, 3.0), width=10)
        assert line == line[0] * 10

    def test_peak_uses_highest_block(self):
        series = np.zeros(30)
        series[15] = 1.0
        line = sparkline(series, width=30)
        assert "█" in line

    def test_invalid_width_rejected(self):
        with pytest.raises(ValidationError):
            sparkline([1.0, 2.0], width=0)


class TestAsciiSeries:
    def test_dimensions(self):
        chart = ascii_series(np.sin(np.linspace(0, 6, 100)), width=40, height=8)
        lines = chart.splitlines()
        # 8 chart rows + separator + caption.
        assert len(lines) == 10
        assert all(len(line) == 40 for line in lines[:8])

    def test_marker_used(self):
        chart = ascii_series([0.0, 1.0, 0.0], width=12, height=4, marker="@")
        assert "@" in chart

    def test_caption_reports_extremes(self):
        chart = ascii_series([2.0, 8.0], width=10, height=4)
        assert "min=2" in chart
        assert "max=8" in chart

    def test_multichar_marker_rejected(self):
        with pytest.raises(ValidationError):
            ascii_series([1.0, 2.0], marker="**")


class TestRenderBand:
    def test_grid_dimensions_capped(self):
        band = sakoe_chiba_band(100, 100, 5)
        rendering = render_band(band, 100, max_width=40, max_height=20)
        lines = rendering.splitlines()
        assert len(lines) == 20
        assert all(len(line) == 40 for line in lines)

    def test_inside_and_outside_markers(self):
        band = sakoe_chiba_band(30, 30, 2)
        rendering = render_band(band, 30, max_width=30, max_height=30)
        assert "#" in rendering
        assert "." in rendering

    def test_full_band_has_no_outside_cells(self):
        band = np.zeros((10, 2), dtype=int)
        band[:, 1] = 9
        rendering = render_band(band, 10, max_width=10, max_height=10)
        assert "." not in rendering

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValidationError):
            render_band(np.zeros((5, 3)), 5)


class TestRenderWarpPath:
    def test_path_corners_marked(self):
        x = np.sin(np.linspace(0, 3, 40))
        y = np.sin(np.linspace(0, 3, 40) - 0.3)
        result = dtw(x, y)
        rendering = render_warp_path(result.path, 40, 40,
                                     max_width=40, max_height=40)
        lines = rendering.splitlines()
        assert lines[0][0] == "o"
        assert lines[-1][-1] == "o"

    def test_empty_path_rejected(self):
        with pytest.raises(ValidationError):
            render_warp_path([], 2, 2)


class TestSideBySide:
    def test_blocks_joined_line_by_line(self):
        combined = side_by_side("ab\ncd", "XY\nZW", gap=2)
        lines = combined.splitlines()
        assert lines[0] == "ab  XY"
        assert lines[1] == "cd  ZW"

    def test_uneven_heights_padded(self):
        combined = side_by_side("a", "X\nY")
        assert len(combined.splitlines()) == 2
