"""End-to-end integration tests: do the paper's headline claims hold?

These tests run the full pipeline on small (but non-trivial) synthetic data
and check the *qualitative* findings of Section 4:

* constrained distances always upper-bound the optimal DTW distance;
* adaptive-core constraints approximate the optimal distance far better
  than fixed-core fixed-width bands of comparable size;
* matching/inconsistency-removal time is a minor share of the total;
* all algorithms save a large fraction of the DTW grid cells.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DescriptorConfig, SDTWConfig
from repro.core.sdtw import SDTW
from repro.datasets.synthetic import make_trace_like
from repro.experiments.runner import AlgorithmSpec, evaluate_dataset
from repro.retrieval.index import compute_distance_index


@pytest.fixture(scope="module")
def trace_eval():
    """Evaluate a representative algorithm subset on a Trace-like sample."""
    dataset = make_trace_like(num_series=10, seed=21)
    algorithms = [
        AlgorithmSpec("(fc,fw) 6%", "fc,fw", 0.06),
        AlgorithmSpec("(fc,fw) 10%", "fc,fw", 0.10),
        AlgorithmSpec("(ac,fw) 10%", "ac,fw", 0.10),
        AlgorithmSpec("(ac,aw)", "ac,aw", 0.10),
        AlgorithmSpec("(ac2,aw)", "ac2,aw", 0.10),
    ]
    base_config = SDTWConfig(descriptor=DescriptorConfig(num_bins=32))
    return evaluate_dataset(dataset, algorithms, base_config=base_config, ks=(5,))


class TestHeadlineClaims:
    def test_every_constrained_distance_upper_bounds_reference(self, trace_eval):
        reference = trace_eval.reference.distances
        for index in trace_eval.indexes.values():
            assert np.all(index.distances - reference >= -1e-9)

    def test_adaptive_core_beats_fixed_core_on_distance_error(self, trace_eval):
        evaluations = trace_eval.evaluations
        fixed_error = evaluations["(fc,fw) 10%"].distance_error
        adaptive_error = evaluations["(ac,aw)"].distance_error
        assert adaptive_error < fixed_error

    def test_adaptive_core_retrieval_accuracy_competitive(self, trace_eval):
        """On a small sample the top-k overlap is a coarse metric, so the
        adaptive algorithms are required to be at least comparable to the
        narrow fixed band (the paper's larger-scale runs show clear wins,
        especially on 50Words where ranking is harder)."""
        evaluations = trace_eval.evaluations
        fixed_acc = evaluations["(fc,fw) 6%"].retrieval_accuracy[5]
        adaptive_acc = evaluations["(ac,aw)"].retrieval_accuracy[5]
        assert adaptive_acc >= fixed_acc - 0.08

    def test_wider_fixed_band_is_more_accurate(self, trace_eval):
        evaluations = trace_eval.evaluations
        assert (
            evaluations["(fc,fw) 10%"].distance_error
            <= evaluations["(fc,fw) 6%"].distance_error + 1e-9
        )

    def test_all_algorithms_save_grid_cells(self, trace_eval):
        for result in trace_eval.evaluations.values():
            assert result.cell_gain > 0.3

    def test_matching_is_minor_share_of_total_time(self, trace_eval):
        adaptive = trace_eval.indexes["(ac,aw)"]
        share = adaptive.matching_seconds / max(adaptive.compute_seconds, 1e-12)
        assert share < 0.5

    def test_neighbor_averaged_variant_close_to_plain_adaptive(self, trace_eval):
        evaluations = trace_eval.evaluations
        plain = evaluations["(ac,aw)"].distance_error
        averaged = evaluations["(ac2,aw)"].distance_error
        assert averaged <= plain * 3 + 0.05


class TestCrossConstraintConsistency:
    def test_distance_matrices_agree_on_self_similarity(self, trace_eval):
        """The nearest neighbour of a series under every constrained index
        should usually coincide with the full-DTW nearest neighbour for the
        adaptive variants (spot-check of the retrieval mechanism)."""
        reference = trace_eval.reference.distances
        adaptive = trace_eval.indexes["(ac,aw)"].distances
        agreements = 0
        count = reference.shape[0]
        for query in range(count):
            ref_order = np.argsort(reference[query] + np.eye(count)[query] * 1e9)
            est_order = np.argsort(adaptive[query] + np.eye(count)[query] * 1e9)
            agreements += int(ref_order[0] == est_order[0])
        assert agreements >= count // 2


class TestFeatureCacheAmortisation:
    def test_shared_engine_reuses_features_across_pairs(self):
        dataset = make_trace_like(num_series=6, seed=3)
        values = [ts.values for ts in dataset]
        engine = SDTW(SDTWConfig(descriptor=DescriptorConfig(num_bins=16)))
        compute_distance_index(values, "ac,aw", engine, symmetrize=False)
        # After the index is built every series' features are cached, so a
        # follow-up extraction must be free.
        for series in values:
            _, elapsed = engine.extract_features(series)
            assert elapsed == 0.0
