"""StreamMonitor tests: offline-scan equivalence and multiplexing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DescriptorConfig, SDTWConfig
from repro.datasets.generators import embed_pattern_stream, make_stream_patterns
from repro.exceptions import ValidationError
from repro.streaming import StreamMonitor
from repro.streaming.offline import naive_sliding_scan, naive_spring_scan


@pytest.fixture(scope="module")
def config():
    return SDTWConfig(descriptor=DescriptorConfig(num_bins=16))


@pytest.fixture(scope="module")
def stream_setup():
    rng = np.random.default_rng(23)
    m = 48
    pattern = np.sin(np.linspace(0.0, 2.0 * np.pi, m)) + 0.3 * np.sin(
        np.linspace(0.0, 6.0 * np.pi, m)
    )
    stream = rng.normal(0.0, 0.5, 700)
    for pos in (90, 330, 560):
        stream[pos: pos + m] = pattern + rng.normal(0.0, 0.05, m)
    return pattern, stream


def assert_same_matches(online, offline):
    assert len(online) == len(offline)
    for a, b in zip(online, offline):
        assert a.start == b.start
        assert a.end == b.end
        assert a.distance == pytest.approx(b.distance, abs=1e-12)


class TestOfflineEquivalence:
    """The acceptance criterion: online == offline sliding-window scan."""

    @pytest.mark.parametrize("constraint", ["fc,fw", "full", "itakura", "ac,aw"])
    def test_sliding_monitor_equals_offline_scan(
        self, stream_setup, config, constraint
    ):
        pattern, stream = stream_setup
        threshold = 6.0
        monitor = StreamMonitor(config)
        monitor.add_stream("s", capacity=4 * pattern.size)
        monitor.add_pattern(
            pattern, name="p", threshold=threshold,
            mode="sliding", constraint=constraint,
        )
        online = monitor.extend("s", stream) + monitor.finalize("s")
        offline, profile = naive_sliding_scan(
            stream, pattern, threshold, constraint=constraint, config=config
        )
        assert_same_matches(online, offline)
        assert len(online) == 3
        assert np.isfinite(profile[pattern.size - 1:]).all()

    def test_equivalence_survives_pruning_toggle(self, stream_setup, config):
        pattern, stream = stream_setup
        threshold = 6.0
        results = []
        for prune in (True, False):
            monitor = StreamMonitor(config, prune=prune, early_abandon=prune)
            monitor.add_stream("s", capacity=4 * pattern.size)
            monitor.add_pattern(
                pattern, name="p", threshold=threshold, mode="sliding"
            )
            results.append(
                monitor.extend("s", stream) + monitor.finalize("s")
            )
        assert_same_matches(results[0], results[1])

    def test_spring_monitor_equals_naive_scan(self, stream_setup):
        pattern, stream = stream_setup
        short_pattern = pattern[:16]
        prefix = stream[:260]
        threshold = 2.0
        monitor = StreamMonitor()
        monitor.add_stream("s", capacity=128)
        monitor.add_pattern(
            short_pattern, name="p", threshold=threshold, mode="spring"
        )
        online = monitor.extend("s", prefix) + monitor.finalize("s")
        offline = naive_spring_scan(prefix, short_pattern, threshold)
        assert_same_matches(online, offline)


class TestMultiplexing:
    def test_many_patterns_over_many_streams(self, config):
        rng = np.random.default_rng(31)
        m = 40
        patterns = make_stream_patterns(2, m, rng)
        streams = {}
        truths = {}
        for name in ("alpha", "beta"):
            streams[name], truths[name] = embed_pattern_stream(
                600, patterns, rng, occurrences_per_pattern=2
            )
        monitor = StreamMonitor(config)
        for name in streams:
            monitor.add_stream(name, capacity=4 * m)
        names = [
            monitor.add_pattern(p, threshold=8.0, mode="sliding")
            for p in patterns
        ]
        matches = []
        for name, values in streams.items():
            matches += monitor.extend(name, values)
        matches += monitor.finalize()
        assert {m.stream for m in matches} <= set(streams)
        assert {m.pattern for m in matches} <= set(names)
        # Every matcher saw every tick of its stream.
        for pattern_name in names:
            stats = monitor.stats(pattern_name)
            assert stats.ticks == sum(len(v) for v in streams.values())
            per_stream = monitor.stats(pattern_name, stream="alpha")
            assert per_stream.ticks == len(streams["alpha"])

    def test_pattern_restricted_to_one_stream(self, config):
        monitor = StreamMonitor(config)
        monitor.add_stream("a", capacity=128)
        monitor.add_stream("b", capacity=128)
        pattern = np.sin(np.linspace(0, 6.28, 24))
        monitor.add_pattern(
            pattern, name="only-a", threshold=1.0, streams=("a",)
        )
        monitor.extend("a", np.zeros(30))
        monitor.extend("b", np.zeros(30))
        assert monitor.stats("only-a").ticks == 30
        with pytest.raises(ValidationError):
            monitor.matcher("b", "only-a")

    def test_streams_added_after_patterns_are_monitored(self, config):
        monitor = StreamMonitor(config)
        pattern = np.sin(np.linspace(0, 6.28, 24))
        monitor.add_pattern(pattern, name="p", threshold=1.0, mode="spring")
        monitor.add_stream("late")
        monitor.extend("late", np.zeros(10))
        assert monitor.stats("p").ticks == 10


class TestValidation:
    def test_unknown_stream_rejected(self):
        monitor = StreamMonitor()
        with pytest.raises(ValidationError):
            monitor.push("ghost", 1.0)

    def test_duplicate_names_rejected(self):
        monitor = StreamMonitor()
        monitor.add_stream("s")
        with pytest.raises(ValidationError):
            monitor.add_stream("s")
        pattern = np.ones(8)
        monitor.add_pattern(pattern, name="p", threshold=1.0)
        with pytest.raises(ValidationError):
            monitor.add_pattern(pattern, name="p", threshold=1.0)

    def test_unknown_mode_rejected(self):
        monitor = StreamMonitor()
        with pytest.raises(ValidationError):
            monitor.add_pattern(np.ones(8), threshold=1.0, mode="warp9")

    def test_pattern_longer_than_buffer_rejected(self):
        monitor = StreamMonitor()
        monitor.add_stream("s", capacity=16)
        with pytest.raises(ValidationError):
            monitor.add_pattern(np.ones(32), threshold=1.0, mode="sliding")

    def test_stats_for_unknown_pattern_rejected(self):
        monitor = StreamMonitor()
        with pytest.raises(ValidationError):
            monitor.stats("nope")


class TestSharedExtractor:
    def test_adaptive_patterns_share_one_extractor_per_stream(self, config):
        rng = np.random.default_rng(41)
        m = 48
        patterns = make_stream_patterns(2, m, rng)
        stream = rng.normal(0.0, 0.4, 300)

        monitor = StreamMonitor(config)
        monitor.add_stream("s", capacity=4 * m)
        names = [
            monitor.add_pattern(p, threshold=5.0, mode="sliding",
                                constraint="ac,aw")
            for p in patterns
        ]
        extractors = {
            id(monitor.matcher("s", name).extractor) for name in names
        }
        assert len(extractors) == 1

        # Shared-extractor results must equal per-matcher extractors.
        solo = StreamMonitor(config)
        solo.add_stream("s", capacity=4 * m)
        solo.add_pattern(patterns[0], name="only", threshold=5.0,
                         mode="sliding", constraint="ac,aw")
        shared_matches = monitor.extend("s", stream) + monitor.finalize("s")
        solo_matches = solo.extend("s", stream) + solo.finalize("s")
        mine = [(x.start, x.end, x.distance) for x in shared_matches
                if x.pattern == names[0]]
        theirs = [(x.start, x.end, x.distance) for x in solo_matches]
        assert mine == theirs

    def test_different_window_lengths_get_distinct_extractors(self, config):
        monitor = StreamMonitor(config)
        monitor.add_stream("s", capacity=512)
        a = monitor.add_pattern(np.sin(np.linspace(0, 6.28, 48)),
                                threshold=1.0, mode="sliding",
                                constraint="ac,aw")
        b = monitor.add_pattern(np.sin(np.linspace(0, 6.28, 64)),
                                threshold=1.0, mode="sliding",
                                constraint="ac,aw")
        assert (monitor.matcher("s", a).extractor
                is not monitor.matcher("s", b).extractor)
