"""Tests for the SDTW driver: the public distance API and its guarantees."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DescriptorConfig, SDTWConfig
from repro.core.sdtw import SDTW, sdtw_distance
from repro.dtw.full import dtw_distance
from repro.dtw.path import is_valid_warp_path
from repro.exceptions import ValidationError

CONSTRAINTS = ["fc,fw", "fc,aw", "ac,fw", "ac,aw", "ac2,aw"]


class TestDistanceBasics:
    def test_full_constraint_matches_exact_dtw(self, engine, sine_pair):
        x, y = sine_pair
        result = engine.distance(x, y, constraint="full")
        assert result.distance == pytest.approx(dtw_distance(x, y))
        assert result.constraint == "full"
        assert result.cells_filled == x.size * y.size

    @pytest.mark.parametrize("constraint", CONSTRAINTS)
    def test_constrained_distance_upper_bounds_full_dtw(self, engine, bumpy_pair,
                                                        constraint):
        x, y = bumpy_pair
        exact = dtw_distance(x, y)
        result = engine.distance(x, y, constraint=constraint)
        assert result.distance >= exact - 1e-9

    @pytest.mark.parametrize("constraint", CONSTRAINTS)
    def test_constrained_fills_fewer_cells_than_full(self, engine, bumpy_pair,
                                                     constraint):
        x, y = bumpy_pair
        result = engine.distance(x, y, constraint=constraint)
        assert result.cells_filled <= result.total_cells
        assert result.cells_filled > 0

    @pytest.mark.parametrize("constraint", CONSTRAINTS)
    def test_identical_series_distance_zero(self, engine, constraint):
        series = np.sin(np.linspace(0, 7, 130)) + 0.2 * np.cos(np.linspace(0, 29, 130))
        result = engine.distance(series, series, constraint=constraint)
        assert result.distance == pytest.approx(0.0, abs=1e-9)

    def test_unknown_constraint_rejected(self, engine, sine_pair):
        x, y = sine_pair
        with pytest.raises(ValidationError):
            engine.distance(x, y, constraint="bogus")

    def test_result_reports_constraint_label(self, engine, sine_pair):
        x, y = sine_pair
        assert engine.distance(x, y, "ac2,aw").constraint == "ac2,aw"

    def test_cell_savings_between_zero_and_one(self, engine, bumpy_pair):
        x, y = bumpy_pair
        result = engine.distance(x, y, "fc,fw")
        assert 0.0 <= result.cell_savings < 1.0

    def test_return_path_produces_valid_path(self, engine, bumpy_pair):
        x, y = bumpy_pair
        result = engine.distance(x, y, "ac,aw", return_path=True)
        assert result.path is not None
        assert is_valid_warp_path(result.path.pairs, x.size, y.size)

    def test_path_stays_inside_returned_band(self, engine, bumpy_pair):
        x, y = bumpy_pair
        result = engine.distance(x, y, "ac,fw", return_path=True)
        band = result.band
        for i, j in result.path:
            assert band[i, 0] <= j <= band[i, 1]

    def test_adaptive_constraint_is_tighter_than_loose_fixed(self, engine, bumpy_pair):
        """The adaptive-core band achieves a closer approximation of the true
        DTW distance than a fixed band of comparable size (the key claim)."""
        x, y = bumpy_pair
        exact = dtw_distance(x, y)
        fixed = engine.distance(x, y, "fc,fw").distance
        adaptive = engine.distance(x, y, "ac,aw").distance
        assert abs(adaptive - exact) <= abs(fixed - exact) + 1e-9

    def test_timing_fields_populated(self, engine, bumpy_pair):
        x, y = bumpy_pair
        result = engine.distance(x, y, "ac,aw")
        assert result.dp_seconds > 0.0
        assert result.matching_seconds >= 0.0
        assert result.compute_seconds >= result.dp_seconds

    def test_fixed_core_fixed_width_needs_no_alignment(self, engine, sine_pair):
        x, y = sine_pair
        result = engine.distance(x, y, "fc,fw")
        assert result.alignment is None
        assert result.matching_seconds == 0.0


class TestFeatureCache:
    def test_second_extraction_hits_cache(self, engine, sine_pair):
        x, _ = sine_pair
        _, first_time = engine.extract_features(x)
        features, second_time = engine.extract_features(x)
        assert second_time == 0.0
        assert len(features) >= 0

    def test_clear_cache_forces_recomputation(self, engine, sine_pair):
        x, _ = sine_pair
        engine.extract_features(x)
        engine.clear_cache()
        _, elapsed = engine.extract_features(x)
        assert elapsed > 0.0

    def test_distance_extract_seconds_zero_on_cache_hit(self, engine, bumpy_pair):
        x, y = bumpy_pair
        engine.distance(x, y, "ac,aw")
        second = engine.distance(x, y, "ac,aw")
        assert second.extract_seconds == 0.0


class TestAlignment:
    def test_alignment_exposes_pipeline_artifacts(self, engine, bumpy_pair):
        x, y = bumpy_pair
        alignment = engine.align(x, y)
        assert len(alignment.features_x) > 0
        assert len(alignment.features_y) > 0
        assert alignment.partition.n == x.size
        assert alignment.partition.m == y.size
        assert alignment.matching_seconds >= 0.0

    def test_consistent_pairs_subset_of_matches(self, engine, bumpy_pair):
        x, y = bumpy_pair
        alignment = engine.align(x, y)
        match_ids = {id(p.feature_x) for p in alignment.matches}
        for pair in alignment.consistent.pairs:
            assert id(pair.feature_x) in match_ids


class TestDistanceMatrixAndSymmetry:
    def test_distance_matrix_shape_and_diagonal(self, engine, tiny_series_collection):
        matrix = engine.distance_matrix(tiny_series_collection[:4], "fc,fw")
        assert matrix.shape == (4, 4)
        np.testing.assert_allclose(np.diag(matrix), 0.0)
        np.testing.assert_allclose(matrix, matrix.T)

    def test_symmetric_band_mode_yields_symmetric_band_distance(self, bumpy_pair):
        x, y = bumpy_pair
        config = SDTWConfig(descriptor=DescriptorConfig(num_bins=16),
                            symmetric_band=True)
        engine = SDTW(config)
        forward = engine.distance(x, y, "ac,aw").distance
        exact = dtw_distance(x, y)
        assert forward >= exact - 1e-9

    def test_symmetric_band_never_worse_than_asymmetric(self, bumpy_pair):
        x, y = bumpy_pair
        base_cfg = SDTWConfig(descriptor=DescriptorConfig(num_bins=16))
        sym_cfg = SDTWConfig(descriptor=DescriptorConfig(num_bins=16),
                             symmetric_band=True)
        asym = SDTW(base_cfg).distance(x, y, "ac,aw").distance
        sym = SDTW(sym_cfg).distance(x, y, "ac,aw").distance
        # The symmetric band is a superset, so its distance can only be <=.
        assert sym <= asym + 1e-9


class TestFunctionalAPI:
    def test_sdtw_distance_matches_engine(self, bumpy_pair, fast_config):
        x, y = bumpy_pair
        engine = SDTW(fast_config)
        assert sdtw_distance(x, y, "ac,aw", fast_config) == pytest.approx(
            engine.distance(x, y, "ac,aw").distance
        )

    def test_sdtw_distance_default_config(self, sine_pair):
        x, y = sine_pair
        value = sdtw_distance(x, y)
        assert value >= 0.0


class TestDegenerateInputs:
    def test_very_short_series(self, engine):
        result = engine.distance([1.0, 2.0, 3.0], [1.0, 3.0], "ac,aw")
        assert np.isfinite(result.distance)

    def test_constant_series_fall_back_gracefully(self, engine):
        x = np.full(80, 1.0)
        y = np.full(90, 2.0)
        result = engine.distance(x, y, "ac,aw")
        # No features exist; the band falls back and the distance is the
        # accumulated constant difference along the (constrained) path.
        assert np.isfinite(result.distance)
        assert result.distance >= 0.0

    def test_nan_input_rejected(self, engine):
        with pytest.raises(ValidationError):
            engine.distance([1.0, np.nan], [1.0, 2.0], "ac,aw")

    def test_empty_input_rejected(self, engine):
        with pytest.raises(Exception):
            engine.distance([], [1.0, 2.0], "ac,aw")

    def test_single_sample_series(self, engine):
        result = engine.distance([5.0], [1.0, 2.0, 3.0], "fc,fw")
        assert result.distance == pytest.approx(4 + 3 + 2)
