"""Tests for the query-by-example search engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DescriptorConfig, SDTWConfig
from repro.datasets.synthetic import make_gun_like
from repro.exceptions import DatasetError, ValidationError
from repro.retrieval.search import TimeSeriesSearchEngine


@pytest.fixture(scope="module")
def config():
    return SDTWConfig(descriptor=DescriptorConfig(num_bins=16))


@pytest.fixture(scope="module")
def dataset():
    return make_gun_like(num_series=10, seed=13)


@pytest.fixture(scope="module")
def engine(config, dataset):
    search = TimeSeriesSearchEngine(constraint="ac,aw", config=config)
    search.add_dataset(dataset)
    return search


class TestDeprecationShim:
    def test_construction_emits_deprecation_warning(self, config):
        with pytest.warns(DeprecationWarning, match="Workspace"):
            TimeSeriesSearchEngine(config=config)

    def test_shim_matches_workspace_exact_mode(self, config, dataset):
        from repro.service import EngineConfig, Workspace, WorkspaceConfig

        with pytest.warns(DeprecationWarning):
            shim = TimeSeriesSearchEngine(constraint="fc,fw", config=config)
        shim.add_dataset(dataset)
        workspace = Workspace(WorkspaceConfig(
            sdtw=config, engine=EngineConfig(constraint="fc,fw")))
        workspace.add_dataset(dataset)
        ours = shim.query(dataset[0].values, k=3,
                          exclude_identifier=dataset[0].identifier)
        want = workspace.query(dataset[0].values, 3, mode="exact",
                               exclude_identifier=dataset[0].identifier)
        assert tuple(h.identifier for h in ours.hits) == want.ids
        assert tuple(h.distance for h in ours.hits) == want.distances


class TestIndexing:
    def test_add_returns_identifier(self, config):
        search = TimeSeriesSearchEngine(config=config)
        identifier = search.add(np.sin(np.linspace(0, 5, 80)))
        assert identifier.startswith("series-")
        assert len(search) == 1

    def test_add_dataset_preserves_labels(self, engine, dataset):
        assert len(engine) == len(dataset)

    def test_invalid_lb_radius_rejected(self, config):
        with pytest.raises(ValidationError):
            TimeSeriesSearchEngine(config=config, lb_radius_fraction=0.0)

    def test_query_on_empty_engine_raises(self, config):
        search = TimeSeriesSearchEngine(config=config)
        with pytest.raises(DatasetError):
            search.query([1.0, 2.0, 3.0], k=1)


class TestQuerying:
    def test_query_returns_k_hits_sorted_by_distance(self, engine, dataset):
        result = engine.query(dataset[0].values, k=3,
                              exclude_identifier=dataset[0].identifier)
        assert len(result.hits) == 3
        distances = [hit.distance for hit in result.hits]
        assert distances == sorted(distances)

    def test_self_query_without_exclusion_returns_itself_first(self, engine, dataset):
        result = engine.query(dataset[2].values, k=1)
        assert result.hits[0].identifier == dataset[2].identifier
        assert result.hits[0].distance == pytest.approx(0.0, abs=1e-9)

    def test_exclusion_skips_the_stored_copy(self, engine, dataset):
        result = engine.query(dataset[2].values, k=3,
                              exclude_identifier=dataset[2].identifier)
        assert all(hit.identifier != dataset[2].identifier for hit in result.hits)

    def test_query_accounts_for_work(self, engine, dataset):
        result = engine.query(dataset[1].values, k=3,
                              exclude_identifier=dataset[1].identifier)
        assert result.distances_computed + result.candidates_pruned <= len(dataset)
        assert result.distances_computed >= 3
        assert result.cells_filled > 0
        assert result.elapsed_seconds > 0.0

    def test_nearest_neighbour_usually_same_class(self, engine, dataset):
        agreements = 0
        for ts in dataset:
            result = engine.query(ts.values, k=1, exclude_identifier=ts.identifier)
            agreements += int(result.hits[0].label == ts.label)
        assert agreements >= len(dataset) // 2

    def test_full_constraint_supported(self, config, dataset):
        search = TimeSeriesSearchEngine(constraint="full", config=config,
                                        lb_radius_fraction=None)
        search.add_dataset(dataset)
        result = search.query(dataset[0].values, k=2,
                              exclude_identifier=dataset[0].identifier)
        assert len(result.hits) == 2
        assert result.candidates_pruned == 0

    def test_lower_bound_disabled_computes_every_candidate(self, config, dataset):
        search = TimeSeriesSearchEngine(constraint="ac,aw", config=config,
                                        lb_radius_fraction=None)
        search.add_dataset(dataset)
        result = search.query(dataset[0].values, k=2,
                              exclude_identifier=dataset[0].identifier)
        assert result.distances_computed == len(dataset) - 1


class TestClassification:
    def test_classify_returns_a_known_label(self, engine, dataset):
        label = engine.classify(dataset[0].values, k=3,
                                exclude_identifier=dataset[0].identifier)
        assert label in set(dataset.labels)

    def test_classify_unlabelled_collection_returns_none(self, config):
        search = TimeSeriesSearchEngine(config=config)
        rng = np.random.default_rng(0)
        for _ in range(4):
            search.add(np.cumsum(rng.normal(size=60)))
        assert search.classify(np.cumsum(rng.normal(size=60)), k=2) is None

    def test_leave_one_out_accuracy_reasonable(self, engine, dataset):
        correct = 0
        for ts in dataset:
            predicted = engine.classify(ts.values, k=3,
                                        exclude_identifier=ts.identifier)
            correct += int(predicted == ts.label)
        assert correct / len(dataset) >= 0.5
