"""Query-by-example coverage, post-shim: the Workspace in exact mode.

The ``TimeSeriesSearchEngine`` shim has been removed; the behaviours it
guaranteed (sorted hits, leave-one-out exclusion, pruning accounting,
label agreement) are contracts of :meth:`repro.service.Workspace.query`
now, so this file pins them there — plus the removal itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DescriptorConfig, SDTWConfig
from repro.datasets.synthetic import make_gun_like
from repro.exceptions import WorkspaceError
from repro.service import EngineConfig, Workspace, WorkspaceConfig


@pytest.fixture(scope="module")
def config():
    return SDTWConfig(descriptor=DescriptorConfig(num_bins=16))


@pytest.fixture(scope="module")
def dataset():
    return make_gun_like(num_series=10, seed=13)


def _workspace(config, constraint="ac,aw", **engine_kwargs):
    return Workspace(WorkspaceConfig(
        sdtw=config,
        engine=EngineConfig(constraint=constraint, **engine_kwargs),
    ))


@pytest.fixture(scope="module")
def workspace(config, dataset):
    ws = _workspace(config)
    ws.add_dataset(dataset)
    return ws


def _classify(workspace, values, k, *, exclude_identifier=None):
    """Majority-vote k-NN label (closest-neighbour tie-break), the way
    the retired search-engine shim classified."""
    result = workspace.query(values, k, mode="exact",
                             exclude_identifier=exclude_identifier)
    votes: dict = {}
    for hit in result.hits:
        if hit.label is None:
            continue
        votes[hit.label] = votes.get(hit.label, 0) + 1
    if not votes:
        return None
    top = max(votes.values())
    tied = {label for label, count in votes.items() if count == top}
    for hit in result.hits:
        if hit.label in tied:
            return hit.label
    return None


class TestShimRemoved:
    def test_search_module_is_gone(self):
        import importlib

        with pytest.raises(ImportError):
            importlib.import_module("repro.retrieval.search")

    def test_engine_name_not_exported(self):
        import repro.retrieval as retrieval

        assert not hasattr(retrieval, "TimeSeriesSearchEngine")

    def test_distance_index_alias_is_gone(self):
        import repro.retrieval as retrieval
        import repro.retrieval.index as index_module

        with pytest.raises(AttributeError):
            index_module.DistanceIndex
        with pytest.raises(AttributeError):
            retrieval.DistanceIndex


class TestQuerying:
    def test_query_returns_k_hits_sorted_by_distance(self, workspace, dataset):
        result = workspace.query(dataset[0].values, 3, mode="exact",
                                 exclude_identifier=dataset[0].identifier)
        assert len(result.hits) == 3
        distances = [hit.distance for hit in result.hits]
        assert distances == sorted(distances)

    def test_self_query_without_exclusion_returns_itself_first(
            self, workspace, dataset):
        result = workspace.query(dataset[2].values, 1, mode="exact")
        assert result.hits[0].identifier == dataset[2].identifier
        assert result.hits[0].distance == pytest.approx(0.0, abs=1e-9)

    def test_exclusion_skips_the_stored_copy(self, workspace, dataset):
        result = workspace.query(dataset[2].values, 3, mode="exact",
                                 exclude_identifier=dataset[2].identifier)
        assert all(hit.identifier != dataset[2].identifier
                   for hit in result.hits)

    def test_query_accounts_for_work(self, workspace, dataset):
        result = workspace.query(dataset[1].values, 3, mode="exact",
                                 exclude_identifier=dataset[1].identifier)
        stats = result.stats
        assert stats.refined + stats.pruned <= len(dataset)
        assert stats.refined >= 3
        assert stats.cells_filled > 0
        assert result.elapsed_seconds > 0.0

    def test_query_on_empty_workspace_raises(self, config):
        with pytest.raises(WorkspaceError):
            _workspace(config).query([1.0, 2.0, 3.0], 1, mode="exact")

    def test_full_constraint_supported(self, config, dataset):
        ws = _workspace(config, constraint="full", prune=False)
        ws.add_dataset(dataset)
        result = ws.query(dataset[0].values, 2, mode="exact",
                          exclude_identifier=dataset[0].identifier)
        assert len(result.hits) == 2
        assert result.stats.pruned == 0

    def test_pruning_disabled_computes_every_candidate(self, config, dataset):
        ws = _workspace(config, prune=False)
        ws.add_dataset(dataset)
        result = ws.query(dataset[0].values, 2, mode="exact",
                          exclude_identifier=dataset[0].identifier)
        assert result.stats.refined == len(dataset) - 1

    def test_nearest_neighbour_usually_same_class(self, workspace, dataset):
        agreements = 0
        for ts in dataset:
            result = workspace.query(ts.values, 1, mode="exact",
                                     exclude_identifier=ts.identifier)
            agreements += int(result.hits[0].label == ts.label)
        assert agreements >= len(dataset) // 2


class TestClassification:
    def test_classify_returns_a_known_label(self, workspace, dataset):
        label = _classify(workspace, dataset[0].values, 3,
                          exclude_identifier=dataset[0].identifier)
        assert label in set(dataset.labels)

    def test_classify_unlabelled_collection_returns_none(self, config):
        ws = _workspace(config)
        rng = np.random.default_rng(0)
        for _ in range(4):
            ws.add(np.cumsum(rng.normal(size=60)))
        assert _classify(ws, np.cumsum(rng.normal(size=60)), 2) is None

    def test_leave_one_out_accuracy_reasonable(self, workspace, dataset):
        correct = 0
        for ts in dataset:
            predicted = _classify(workspace, ts.values, 3,
                                  exclude_identifier=ts.identifier)
            correct += int(predicted == ts.label)
        assert correct / len(dataset) >= 0.5
