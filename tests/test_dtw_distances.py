"""Tests for pointwise distances and the cost matrix."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtw.distances import (
    absolute_distance,
    get_pointwise_distance,
    pointwise_cost_matrix,
    register_pointwise_distance,
    squared_distance,
)
from repro.exceptions import ValidationError


class TestElementDistances:
    def test_absolute_distance_scalar(self):
        assert absolute_distance(np.array(3.0), np.array(5.0)) == 2.0

    def test_absolute_distance_broadcasting(self):
        out = absolute_distance(np.array([[1.0], [2.0]]), np.array([1.0, 3.0]))
        assert out.shape == (2, 2)
        assert out[1, 1] == 1.0

    def test_squared_distance_scalar(self):
        assert squared_distance(np.array(3.0), np.array(5.0)) == 4.0

    def test_squared_distance_is_non_negative(self):
        values = np.linspace(-2, 2, 7)
        assert np.all(squared_distance(values, values[::-1]) >= 0)


class TestRegistry:
    def test_none_resolves_to_absolute(self):
        assert get_pointwise_distance(None) is absolute_distance

    def test_name_lookup_case_insensitive(self):
        assert get_pointwise_distance("ABSOLUTE") is absolute_distance
        assert get_pointwise_distance("Squared") is squared_distance

    def test_callable_passthrough(self):
        func = lambda a, b: np.abs(a - b)  # noqa: E731
        assert get_pointwise_distance(func) is func

    def test_unknown_name_raises(self):
        with pytest.raises(ValidationError, match="unknown pointwise distance"):
            get_pointwise_distance("no-such-distance")

    def test_register_custom_distance(self):
        register_pointwise_distance("half_abs", lambda a, b: 0.5 * np.abs(a - b))
        func = get_pointwise_distance("half_abs")
        assert func(np.array(2.0), np.array(6.0)) == 2.0

    def test_register_non_callable_rejected(self):
        with pytest.raises(ValidationError):
            register_pointwise_distance("bad", "not callable")


class TestCostMatrix:
    def test_shape_matches_series_lengths(self):
        matrix = pointwise_cost_matrix([1.0, 2.0, 3.0], [0.0, 1.0])
        assert matrix.shape == (3, 2)

    def test_values_are_pairwise_absolute_differences(self):
        matrix = pointwise_cost_matrix([1.0, 4.0], [2.0, 2.0, 0.0])
        expected = np.array([[1.0, 1.0, 1.0], [2.0, 2.0, 4.0]])
        np.testing.assert_allclose(matrix, expected)

    def test_squared_variant(self):
        matrix = pointwise_cost_matrix([1.0, 4.0], [2.0], distance="squared")
        np.testing.assert_allclose(matrix, [[1.0], [4.0]])

    def test_identical_series_zero_diagonal(self):
        series = np.linspace(0, 1, 10)
        matrix = pointwise_cost_matrix(series, series)
        np.testing.assert_allclose(np.diag(matrix), 0.0)

    def test_empty_series_rejected(self):
        with pytest.raises(Exception):
            pointwise_cost_matrix([], [1.0])
