"""Tests for the command-line interface."""

from __future__ import annotations

import json
import shutil

import pytest

from repro.cli import main


class TestCLIBasics:
    def test_no_command_prints_help_and_fails(self, capsys):
        assert main([]) == 1
        assert "experiment" in capsys.readouterr().out

    def test_datasets_command_lists_registry(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "gun" in out
        assert "50words" in out


class TestDistanceCommand:
    def test_distance_between_two_series(self, capsys):
        code = main([
            "distance", "gun-small", "0", "1", "--constraint", "fc,fw",
            "--constraint", "ac,aw",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fc,fw" in out
        assert "ac,aw" in out
        assert "distance=" in out

    def test_distance_default_constraints_include_full(self, capsys):
        assert main(["distance", "gun-small", "0", "2"]) == 0
        out = capsys.readouterr().out
        assert "full" in out

    def test_out_of_range_index_reports_error(self, capsys):
        assert main(["distance", "gun-small", "0", "999"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_dataset_reports_error(self, capsys):
        assert main(["distance", "no-such-dataset", "0", "1"]) == 2
        assert "error" in capsys.readouterr().err


class TestExperimentCommand:
    def test_table1_runs_and_prints(self, capsys):
        assert main(["experiment", "table1", "--num-series", "4"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_unknown_experiment_reports_error(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_csv_output_written(self, tmp_path, capsys):
        target = tmp_path / "table1.csv"
        code = main([
            "experiment", "table1", "--num-series", "4", "--csv", str(target)
        ])
        assert code == 0
        assert target.exists()
        assert target.read_text().startswith("Data Set,")


class TestEngineCommand:
    def test_engine_prints_cascade_and_timing(self, capsys):
        code = main([
            "engine", "gun-small", "--num-series", "8", "--num-queries", "2",
            "--k", "2", "--constraint", "fc,fw",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Pruning cascade" in out
        assert "LB_Kim" in out
        assert "Time breakdown" in out
        assert "nearest=" in out

    def test_engine_multiprocessing_backend(self, capsys):
        code = main([
            "engine", "gun-small", "--num-series", "8", "--num-queries", "2",
            "--k", "2", "--constraint", "fc,fw",
            "--backend", "multiprocessing", "--workers", "2",
        ])
        assert code == 0
        assert "backend=multiprocessing" in capsys.readouterr().out

    def test_engine_no_cascade_flag(self, capsys):
        code = main([
            "engine", "gun-small", "--num-series", "6", "--num-queries", "1",
            "--k", "2", "--constraint", "full", "--no-cascade", "--no-abandon",
        ])
        assert code == 0
        out = capsys.readouterr().out
        import re

        match = re.search(r"pruned by LB_Kim\s*\|\s*(\d+)", out)
        assert match is not None and match.group(1) == "0"

    def test_engine_unknown_dataset_reports_error(self, capsys):
        assert main(["engine", "no-such-dataset"]) == 2
        assert "error" in capsys.readouterr().err

    def test_engine_unknown_constraint_reports_error(self, capsys):
        code = main(["engine", "gun-small", "--constraint", "bogus"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestStreamCommand:
    def test_stream_sliding_reports_matches_and_stats(self, capsys):
        code = main([
            "stream", "--length", "700", "--patterns", "2",
            "--pattern-length", "48", "--mode", "sliding", "--seed", "7",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "points/sec" in out
        assert "Reported matches" in out
        assert "pruned by LB_Keogh" in out
        assert "detected" in out

    def test_stream_spring_mode(self, capsys):
        code = main([
            "stream", "--length", "500", "--patterns", "1",
            "--pattern-length", "32", "--mode", "spring", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mode=spring" in out
        assert "pattern-0" in out

    def test_stream_explicit_threshold_and_no_cascade(self, capsys):
        code = main([
            "stream", "--length", "400", "--patterns", "1",
            "--pattern-length", "32", "--threshold", "3.5",
            "--no-cascade", "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "threshold 3.500" in out
        import re

        match = re.search(r"pruned by LB_Kim\s*\|\s*(\d+)", out)
        assert match is not None and match.group(1) == "0"

    def test_stream_unknown_constraint_reports_error(self, capsys):
        code = main([
            "stream", "--length", "300", "--pattern-length", "32",
            "--constraint", "bogus",
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_stream_itakura_autocalibration(self, capsys):
        # Regression: auto-calibration used to crash on the itakura label.
        code = main([
            "stream", "--length", "400", "--patterns", "1",
            "--pattern-length", "32", "--constraint", "itakura",
            "--seed", "6",
        ])
        assert code == 0
        assert "constraint=itakura" in capsys.readouterr().out


class TestIndexCommand:
    def test_index_requires_subcommand(self, capsys):
        assert main(["index"]) == 2
        assert "subcommand" in capsys.readouterr().err

    def test_build_query_stats_round_trip(self, tmp_path, capsys):
        index_dir = str(tmp_path / "idx")
        code = main([
            "index", "build", "gun-small", "--num-series", "10",
            "--output", index_dir, "--codewords", "32", "--shards", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Indexed 10 series" in out
        assert "manifest" in out

        assert main(["index", "stats", index_dir]) == 0
        out = capsys.readouterr().out
        assert "repro-salient-index" in out
        assert "shard-0000.npz" in out

        code = main([
            "index", "query", index_dir, "--k", "3", "--candidates", "5",
            "--num-queries", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "nearest" in out
        assert "recall@3" in out

    def test_query_exact_mode_skips_recall(self, tmp_path, capsys):
        index_dir = str(tmp_path / "idx")
        assert main([
            "index", "build", "gun-small", "--num-series", "8",
            "--output", index_dir, "--codewords", "16",
        ]) == 0
        capsys.readouterr()
        assert main([
            "index", "query", index_dir, "--k", "2", "--num-queries", "1",
            "--exact",
        ]) == 0
        out = capsys.readouterr().out
        assert "exact" in out
        assert "recall@" not in out

    def test_stats_on_missing_directory_reports_error(self, tmp_path, capsys):
        assert main(["index", "stats", str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err


class TestWorkspaceCommand:
    def test_workspace_requires_subcommand(self, capsys):
        assert main(["workspace"]) == 2
        assert "subcommand" in capsys.readouterr().err

    def test_init_add_query_stats_round_trip(self, tmp_path, capsys):
        ws_dir = str(tmp_path / "ws")
        assert main([
            "workspace", "init", ws_dir, "--constraint", "fc,fw",
            "--codewords", "24", "--shards", "2", "--candidates", "5",
        ]) == 0
        assert "Created workspace" in capsys.readouterr().out

        assert main([
            "workspace", "add", ws_dir, "gun-small", "--num-series", "10",
            "--build-index",
        ]) == 0
        out = capsys.readouterr().out
        assert "Added 10 series" in out
        assert "index: built" in out

        assert main([
            "workspace", "query", ws_dir, "--k", "3", "--num-queries", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "indexed C=" in out
        assert "nearest" in out

        assert main([
            "workspace", "query", ws_dir, "--k", "3", "--num-queries", "1",
            "--mode", "exact",
        ]) == 0
        assert "exact" in capsys.readouterr().out

        assert main(["workspace", "stats", ws_dir]) == 0
        out = capsys.readouterr().out
        assert "series: 10" in out
        assert "postings" in out

    def test_add_without_index_leaves_exact_mode(self, tmp_path, capsys):
        ws_dir = str(tmp_path / "ws")
        assert main(["workspace", "init", ws_dir]) == 0
        assert main([
            "workspace", "add", ws_dir, "gun-small", "--num-series", "6",
        ]) == 0
        assert "exact scans" in capsys.readouterr().out
        assert main([
            "workspace", "query", ws_dir, "--k", "2", "--num-queries", "1",
        ]) == 0
        assert "exact" in capsys.readouterr().out

    def test_init_twice_reports_clean_error(self, tmp_path, capsys):
        ws_dir = str(tmp_path / "ws")
        assert main(["workspace", "init", ws_dir]) == 0
        capsys.readouterr()
        assert main(["workspace", "init", ws_dir]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_open_missing_workspace_reports_clean_error(self, tmp_path, capsys):
        assert main(["workspace", "stats", str(tmp_path / "nope")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_query_on_empty_workspace_reports_error(self, tmp_path, capsys):
        ws_dir = str(tmp_path / "ws")
        assert main(["workspace", "init", ws_dir]) == 0
        capsys.readouterr()
        assert main(["workspace", "query", ws_dir]) == 2
        assert "no series" in capsys.readouterr().err

    def test_indexed_mode_without_index_reports_error(self, tmp_path, capsys):
        ws_dir = str(tmp_path / "ws")
        assert main(["workspace", "init", ws_dir]) == 0
        assert main([
            "workspace", "add", ws_dir, "gun-small", "--num-series", "6",
        ]) == 0
        capsys.readouterr()
        assert main([
            "workspace", "query", ws_dir, "--mode", "indexed",
        ]) == 2
        assert "error" in capsys.readouterr().err


class TestWorkspaceTelemetryCLI:
    """The PR 7 surfaces end to end: traced queries and metric exports."""

    @pytest.fixture(scope="class")
    def ws_dir(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("cli-telemetry") / "ws")
        assert main([
            "workspace", "init", path, "--codewords", "24", "--shards", "2",
            "--candidates", "5",
        ]) == 0
        assert main([
            "workspace", "add", path, "gun-small", "--num-series", "8",
            "--build-index",
        ]) == 0
        return path

    def test_query_trace_prints_stage_table(self, ws_dir, capsys):
        capsys.readouterr()
        assert main([
            "workspace", "query", ws_dir, "--k", "2", "--num-queries", "1",
            "--mode", "exact", "--trace",
        ]) == 0
        out = capsys.readouterr().out
        assert "Trace of" in out
        assert "stage" in out
        # The exact path's stages (cascade bounds + DP) must be listed
        # with millisecond timings.
        assert "dp" in out
        assert "bounds" in out
        assert "ms" in out

    def test_stats_metrics_json_parses_end_to_end(self, ws_dir, capsys):
        capsys.readouterr()
        assert main([
            "workspace", "stats", ws_dir, "--metrics", "--probe", "2",
            "--format", "json",
        ]) == 0
        exported = json.loads(capsys.readouterr().out)
        assert "repro_queries_total" in exported["counters"]
        total = exported["counters"]["repro_queries_total"]
        assert total["labels"] == ["mode"]
        assert sum(total["values"].values()) >= 2  # the probe queries

    def test_stats_metrics_prom_is_valid_exposition(self, ws_dir, capsys):
        capsys.readouterr()
        assert main([
            "workspace", "stats", ws_dir, "--metrics", "--probe", "2",
            "--format", "prom",
        ]) == 0
        out = capsys.readouterr().out
        assert "# HELP repro_queries_total" in out
        assert "# TYPE repro_query_seconds histogram" in out
        for line in out.strip().splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE ")), line
            else:
                name, _, value = line.rpartition(" ")
                assert name, line
                float(value)  # every sample value must be numeric
        assert 'le="+Inf"' in out


class TestDiagnosticsCLI:
    @pytest.fixture(scope="class")
    def ws_dir(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("cli-diagnostics") / "ws")
        assert main([
            "workspace", "init", path, "--codewords", "24", "--shards", "2",
            "--candidates", "5", "--slow-query-threshold", "0",
        ]) == 0
        assert main([
            "workspace", "add", path, "gun-small", "--num-series", "8",
            "--build-index",
        ]) == 0
        return path

    def test_version_flag_and_subcommand(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        flag_out = capsys.readouterr().out
        assert main(["version"]) == 0
        sub_out = capsys.readouterr().out
        for out in (flag_out, sub_out):
            out = " ".join(out.split())  # argparse wraps --version output
            assert "repro-sdtw" in out
            assert "workspace format v" in out
            assert "index format v" in out
            assert "feature-store format v" in out

    def test_doctor_healthy_workspace_exits_zero(self, ws_dir, capsys):
        capsys.readouterr()
        assert main(["workspace", "doctor", ws_dir]) == 0
        out = capsys.readouterr().out
        assert "index_accounting" in out
        assert "FAIL" not in out
        assert "healthy" in out

    def test_doctor_json_output(self, ws_dir, capsys):
        capsys.readouterr()
        assert main(["workspace", "doctor", ws_dir, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["healthy"] is True
        names = {check["name"] for check in report["checks"]}
        assert {"manifest", "store", "index_accounting"} <= names

    def test_doctor_detects_corruption_and_exits_one(
        self, ws_dir, tmp_path, capsys
    ):
        corrupt = str(tmp_path / "corrupt-ws")
        shutil.copytree(ws_dir, corrupt)
        with open(f"{corrupt}/events.jsonl", "a", encoding="utf-8") as handle:
            handle.write("{definitely not json\n")
        capsys.readouterr()
        assert main(["workspace", "doctor", corrupt]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "UNHEALTHY" in out

    def test_slow_query_log_captures_cli_queries(self, ws_dir, capsys):
        capsys.readouterr()
        assert main([
            "workspace", "query", ws_dir, "--k", "2", "--num-queries", "2",
        ]) == 0
        with open(f"{ws_dir}/slow_queries.jsonl", encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        assert len(records) >= 2
        assert records[-1]["trace"]["stages"]

    def test_flight_record_to_stdout_and_file(self, ws_dir, tmp_path, capsys):
        capsys.readouterr()
        assert main(["workspace", "flight-record", ws_dir]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["format"] == "repro-flight-record"
        assert record["workspace"]["num_series"] == 8

        target = str(tmp_path / "flight.json")
        assert main([
            "workspace", "flight-record", ws_dir, "--output", target,
        ]) == 0
        assert "written" in capsys.readouterr().out
        with open(target, encoding="utf-8") as handle:
            assert json.load(handle)["format"] == "repro-flight-record"

    def test_query_profile_flag_prints_hottest_frames(self, ws_dir, capsys):
        capsys.readouterr()
        assert main([
            "workspace", "query", ws_dir, "--k", "2", "--num-queries", "2",
            "--mode", "exact", "--profile",
        ]) == 0
        out = capsys.readouterr().out
        assert "profiler:" in out
        assert "samples" in out

    def test_profile_command_writes_collapsed_stacks(
        self, ws_dir, tmp_path, capsys
    ):
        stacks = str(tmp_path / "stacks.txt")
        capsys.readouterr()
        assert main([
            "workspace", "profile", ws_dir, "--num-queries", "2",
            "--repeat", "2", "--mode", "exact", "--interval", "0.002",
            "--output", stacks,
        ]) == 0
        out = capsys.readouterr().out
        assert "Profiled 4 exact queries" in out
        assert "profiler:" in out
        with open(stacks, encoding="utf-8") as handle:
            for line in handle.read().splitlines():
                stack, count = line.rsplit(" ", 1)
                assert int(count) > 0

    def test_profile_on_empty_workspace_reports_error(self, tmp_path, capsys):
        empty = str(tmp_path / "empty-ws")
        assert main(["workspace", "init", empty]) == 0
        capsys.readouterr()
        assert main(["workspace", "profile", empty]) == 2
        assert "no series" in capsys.readouterr().err


class TestErrorExitCodes:
    def test_os_errors_map_to_exit_3_without_traceback(self, tmp_path, capsys):
        target = str(tmp_path / "no-such-dir" / "table1.csv")
        code = main([
            "experiment", "table1", "--num-series", "4", "--csv", target,
        ])
        assert code == 3
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_repro_errors_map_to_exit_2(self, capsys):
        assert main(["engine", "no-such-dataset"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err
