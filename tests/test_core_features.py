"""Tests for the end-to-end salient-feature extraction pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DescriptorConfig, SDTWConfig, ScaleSpaceConfig
from repro.core.features import (
    count_features_by_scale,
    extract_salient_features,
)
from repro.exceptions import EmptySeriesError


@pytest.fixture(scope="module")
def structured_series():
    t = np.linspace(0, 1, 250)
    return (
        np.exp(-((t - 0.2) ** 2) / 0.0008)
        + 0.7 * np.exp(-((t - 0.55) ** 2) / 0.004)
        - 0.4 * np.exp(-((t - 0.85) ** 2) / 0.0015)
    )


class TestExtraction:
    def test_structured_series_yields_features(self, structured_series):
        features = extract_salient_features(structured_series)
        assert len(features) > 0

    def test_features_sorted_by_position(self, structured_series):
        features = extract_salient_features(structured_series)
        positions = [f.position for f in features]
        assert positions == sorted(positions)

    def test_descriptor_length_follows_config(self, structured_series):
        config = SDTWConfig(descriptor=DescriptorConfig(num_bins=8))
        features = extract_salient_features(structured_series, config)
        assert all(f.descriptor.size == 8 for f in features)

    def test_scopes_clipped_to_series_extent(self, structured_series):
        features = extract_salient_features(structured_series)
        for feature in features:
            assert feature.scope_start >= 0.0
            assert feature.scope_end <= structured_series.size - 1

    def test_scope_indices_within_bounds(self, structured_series):
        features = extract_salient_features(structured_series)
        for feature in features:
            start, end = feature.scope_as_indices(structured_series.size)
            assert 0 <= start <= end <= structured_series.size - 1

    def test_mean_amplitude_matches_scope_average(self, structured_series):
        features = extract_salient_features(structured_series)
        feature = features[0]
        lo = int(np.floor(feature.scope_start))
        hi = int(np.ceil(feature.scope_end)) + 1
        assert feature.mean_amplitude == pytest.approx(
            float(structured_series[lo:hi].mean())
        )

    def test_center_property_aliases_position(self, structured_series):
        feature = extract_salient_features(structured_series)[0]
        assert feature.center == feature.position

    def test_constant_series_yields_no_features(self):
        assert extract_salient_features(np.full(120, 1.5)) == []

    def test_empty_series_rejected(self):
        with pytest.raises(EmptySeriesError):
            extract_salient_features([])

    def test_noise_robustness_feature_positions_stable(self, structured_series):
        rng = np.random.default_rng(42)
        noisy = structured_series + rng.normal(0, 0.01, structured_series.size)
        clean_features = extract_salient_features(structured_series)
        noisy_features = extract_salient_features(noisy)
        noisy_positions = np.array([f.position for f in noisy_features])
        # Every clean large-scope feature should have a nearby counterpart
        # in the noisy extraction (robustness claim of Section 3.1.2).
        large = [f for f in clean_features if f.scope_length > 10]
        for feature in large:
            assert np.min(np.abs(noisy_positions - feature.position)) < 10.0

    def test_amplitude_shift_does_not_destroy_features(self, structured_series):
        base = extract_salient_features(structured_series)
        shifted = extract_salient_features(structured_series + 100.0)
        assert len(shifted) == len(base)
        for a, b in zip(base, shifted):
            assert a.position == pytest.approx(b.position)

    def test_multi_octave_extraction_produces_multiple_scales(self, structured_series):
        config = SDTWConfig(scale_space=ScaleSpaceConfig(num_octaves=3))
        features = extract_salient_features(structured_series, config)
        classes = {f.scale_class for f in features}
        assert len(classes) >= 2


class TestScaleCounts:
    def test_counts_sum_to_total(self, structured_series):
        config = SDTWConfig(scale_space=ScaleSpaceConfig(num_octaves=3))
        features = extract_salient_features(structured_series, config)
        fine, medium, rough = count_features_by_scale(features)
        assert fine + medium + rough == len(features)

    def test_empty_feature_list(self):
        assert count_features_by_scale([]) == (0, 0, 0)

    def test_dataset_scale_profiles_fine_dominated(self, gun_small, words_small):
        """Within every data set, fine-scale features dominate and rough
        features are the smallest group -- the within-row shape of the
        paper's Table 2 (fine > medium > rough)."""
        config = SDTWConfig(scale_space=ScaleSpaceConfig(num_octaves=3))

        def profile(dataset):
            totals = np.zeros(3)
            for ts in dataset.series[:5]:
                totals += np.array(
                    count_features_by_scale(
                        extract_salient_features(ts.values, config)
                    )
                )
            return totals

        for dataset in (gun_small, words_small):
            fine, medium, rough = profile(dataset)
            assert fine > medium > rough
            assert rough > 0
