"""Tests for the telemetry layer: metrics registry semantics (thread
safety, quantile accuracy, Prometheus rendering), trace plumbing, and the
Workspace integration that carries a trace through every query mode."""

from __future__ import annotations

import re
import threading

import numpy as np
import pytest

from repro.datasets.synthetic import make_gun_like
from repro.engine import EngineStats
from repro.exceptions import ConfigurationError, ValidationError
from repro.service import (
    EngineConfig,
    IndexConfig,
    ServingConfig,
    Workspace,
    WorkspaceConfig,
)
from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    NullMetricsRegistry,
    QueryTrace,
    TraceRing,
    TraceStage,
    current_trace,
    trace_scope,
)


# --------------------------------------------------------------------- #
# Registry primitives
# --------------------------------------------------------------------- #
class TestCounters:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("repro_test_total", "help")
        with pytest.raises(ValidationError):
            counter.inc(-1.0)

    def test_labelled_children_are_independent(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_ops_total", "help", labels=("op",))
        family.labels(op="add").inc(3)
        family.labels(op="remove").inc()
        assert family.labels(op="add").value == 3
        assert family.labels(op="remove").value == 1

    def test_label_schema_enforced(self):
        family = MetricsRegistry().counter(
            "repro_ops_total", "help", labels=("op",))
        with pytest.raises(ValidationError):
            family.labels(kind="add")          # wrong label name
        with pytest.raises(ValidationError):
            family.labels(op="add", extra="x")  # extra label


class TestGauges:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_depth", "help")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == pytest.approx(7.0)


class TestHistograms:
    def test_counts_land_in_le_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_h", "help", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.sum == pytest.approx(106.0)
        buckets = registry.to_dict()["histograms"]["repro_h"]["series"][""][
            "buckets"]
        # le semantics: 1.0 lands in the first bucket; cumulative counts.
        assert buckets == {"1": 2, "2": 3, "4": 4, "+Inf": 5}

    def test_quantile_tracks_numpy_percentile(self):
        rng = np.random.default_rng(7)
        samples = rng.uniform(0.0005, 0.9, size=5000)
        hist = MetricsRegistry().histogram(
            "repro_lat", "help", buckets=DEFAULT_LATENCY_BUCKETS)
        for value in samples:
            hist.observe(float(value))
        for q in (0.50, 0.95, 0.99):
            estimate = hist.quantile(q)
            exact = float(np.percentile(samples, q * 100.0))
            # The estimator interpolates inside the containing bucket, so
            # its error is bounded by that bucket's width.
            assert abs(estimate - exact) <= 0.16, (q, estimate, exact)

    def test_empty_histogram_quantile_is_zero(self):
        hist = MetricsRegistry().histogram("repro_h", "help")
        assert hist.quantile(0.5) == 0.0

    def test_buckets_must_increase(self):
        with pytest.raises(ValidationError):
            MetricsRegistry().histogram(
                "repro_h", "help", buckets=(1.0, 1.0, 2.0))


class TestRegistry:
    def test_name_validation(self):
        with pytest.raises(ValidationError):
            MetricsRegistry().counter("bad name!", "help")

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x", "help")
        with pytest.raises(ValidationError):
            registry.gauge("repro_x", "help")

    def test_label_schema_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x", "help", labels=("a",))
        with pytest.raises(ValidationError):
            registry.counter("repro_x", "help", labels=("b",))

    def test_reregistration_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x", "help")
        second = registry.counter("repro_x", "help")
        first.inc()
        assert second.value == 1

    def test_thread_safety_exact_totals(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_hits_total", "help")
        family = registry.counter(
            "repro_labelled_total", "help", labels=("worker",))
        hist = registry.histogram(
            "repro_obs", "help", buckets=(0.25, 0.5, 0.75))
        per_thread = 2000

        def hammer(worker: int) -> None:
            child = family.labels(worker=str(worker % 2))
            for i in range(per_thread):
                counter.inc()
                child.inc()
                hist.observe((i % 4) / 4.0)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert counter.value == 8 * per_thread
        total = sum(family.labels(worker=str(w)).value for w in (0, 1))
        assert total == 8 * per_thread
        assert hist.count == 8 * per_thread
        assert hist.sum == pytest.approx(8 * per_thread * 0.375)


class TestExports:
    @staticmethod
    def _populated_registry() -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("repro_queries_total", "Total queries.",
                         labels=("mode",)).labels(mode="exact").inc(3)
        registry.gauge("repro_depth", 'Pending "depth"\n gauge.').set(4)
        hist = registry.histogram("repro_lat_seconds", "Latency.",
                                  buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        return registry

    def test_to_dict_structure(self):
        payload = self._populated_registry().to_dict()
        assert set(payload) == {"counters", "gauges", "histograms"}
        counter = payload["counters"]["repro_queries_total"]
        assert counter["labels"] == ["mode"]
        assert counter["values"]["mode=exact"] == 3
        assert payload["gauges"]["repro_depth"]["values"][""] == 4
        hist = payload["histograms"]["repro_lat_seconds"]["series"][""]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(5.05)
        assert {"p50", "p95", "p99"} <= set(hist)

    def test_prometheus_exposition_format(self):
        text = self._populated_registry().render_prometheus()
        lines = text.strip().splitlines()
        sample_re = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? '
            r'([-+]?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?|[-+]?Inf|NaN)$')
        for line in lines:
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ",
                                line), line
            else:
                assert sample_re.match(line), line
        assert 'repro_queries_total{mode="exact"} 3' in lines
        # Help text must escape the quote/newline we planted.
        assert '# HELP repro_depth Pending "depth"\\n gauge.' in text
        # Cumulative buckets end in +Inf which equals the count.
        assert 'repro_lat_seconds_bucket{le="+Inf"} 2' in lines
        assert "repro_lat_seconds_count 2" in lines
        buckets = [int(line.rsplit(" ", 1)[1]) for line in lines
                   if line.startswith("repro_lat_seconds_bucket")]
        assert buckets == sorted(buckets)


class TestNullRegistry:
    def test_everything_is_a_noop(self):
        registry = NullMetricsRegistry()
        assert registry.enabled is False
        child = registry.counter("anything at all", "")
        child.inc()
        child.labels(x="y").observe(1.0)
        child.set(5)
        assert registry.to_dict() == {
            "counters": {}, "gauges": {}, "histograms": {}}
        assert registry.render_prometheus() == ""

    def test_children_are_shared_singletons(self):
        a = NULL_REGISTRY.counter("a", "")
        b = NULL_REGISTRY.histogram("b", "")
        assert a is b
        assert a.labels(any="thing") is a


# --------------------------------------------------------------------- #
# Traces
# --------------------------------------------------------------------- #
class TestQueryTrace:
    def test_finish_appends_residual_so_stages_sum_to_total(self):
        trace = QueryTrace(mode="exact", k=3)
        trace.add_stage("bounds", 0.25, pruned=4)
        trace.add_stage("dp", 0.5)
        trace.finish(1.0)
        assert trace.stages[-1].name == "other"
        assert trace.stage_seconds() == pytest.approx(1.0)
        assert trace.total_seconds == pytest.approx(1.0)

    def test_negative_stage_time_clamped(self):
        trace = QueryTrace()
        trace.add_stage("weird", -0.5)
        assert trace.stages[0].seconds == 0.0

    def test_to_dict_round(self):
        trace = QueryTrace(mode="indexed", k=2, collection_size=10)
        trace.add_stage("bounds", 0.1, pruned=1)
        trace.finish(0.1)
        payload = trace.to_dict()
        assert payload["mode"] == "indexed"
        assert payload["stages"][0] == {
            "name": "bounds", "seconds": 0.1, "attributes": {"pruned": 1}}

    def test_stage_dataclass(self):
        stage = TraceStage("x", 1.0, {"a": 2})
        assert stage.to_dict()["attributes"] == {"a": 2}


class TestTraceRing:
    def test_capacity_evicts_oldest(self):
        ring = TraceRing(2)
        for mode in ("a", "b", "c"):
            ring.append(QueryTrace(mode=mode))
        assert [t.mode for t in ring.snapshot()] == ["b", "c"]
        assert len(ring) == 2

    def test_zero_capacity_keeps_nothing(self):
        ring = TraceRing(0)
        ring.append(QueryTrace())
        assert ring.snapshot() == []

    def test_clear(self):
        ring = TraceRing(4)
        ring.append(QueryTrace())
        ring.clear()
        assert len(ring) == 0


class TestTraceScope:
    def test_scope_installs_and_restores(self):
        assert current_trace() is None
        trace = QueryTrace()
        with trace_scope(trace):
            assert current_trace() is trace
            inner = QueryTrace()
            with trace_scope(inner):
                assert current_trace() is inner
            assert current_trace() is trace
        assert current_trace() is None

    def test_none_scope_is_a_noop(self):
        with trace_scope(None):
            assert current_trace() is None

    def test_thread_local(self):
        seen = {}

        def worker():
            seen["other"] = current_trace()

        with trace_scope(QueryTrace()):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["other"] is None


# --------------------------------------------------------------------- #
# EngineStats zero record (satellite)
# --------------------------------------------------------------------- #
class TestEngineStatsZeroRecord:
    def test_merged_empty_is_all_zero(self):
        zero = EngineStats.merged([])
        assert zero.queries == 0
        assert zero.candidates == 0
        assert zero.cells_filled == 0
        assert zero.elapsed_seconds == 0.0

    def test_derived_ratios_well_defined_on_zero(self):
        zero = EngineStats.merged([])
        assert zero.prune_rate == 0.0
        assert zero.cell_fraction == 0.0
        assert zero.cell_gain == 1.0
        assert zero.time_gain(0.0) == 0.0

    def test_merged_matches_pairwise_merge(self):
        a = EngineStats(queries=1, candidates=5, cells_filled=10,
                        total_cells=100, dp_seconds=0.5)
        b = EngineStats(queries=2, candidates=3, cells_filled=4,
                        total_cells=50, dp_seconds=0.25)
        merged = EngineStats.merged([a, b])
        assert merged.queries == 3
        assert merged.candidates == 8
        assert merged.cell_fraction == pytest.approx(14 / 150)

    def test_to_dict_has_fields_and_ratios(self):
        payload = EngineStats(candidates=4, pruned_lb_kim=1).to_dict()
        assert payload["candidates"] == 4
        assert payload["pruned"] == 1
        assert payload["prune_rate"] == pytest.approx(0.25)
        assert {"cell_fraction", "cell_gain", "refined"} <= set(payload)


# --------------------------------------------------------------------- #
# Workspace integration
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def dataset():
    return make_gun_like(num_series=12, seed=23)


def _workspace(dataset, **serving):
    config = WorkspaceConfig(
        engine=EngineConfig(constraint="fc,fw"),
        index=IndexConfig(num_codewords=24, num_shards=2,
                          candidate_budget=8),
        serving=ServingConfig(**serving),
        default_k=3,
    )
    workspace = Workspace(config)
    workspace.add_dataset(dataset)
    workspace.build_index()
    return workspace


def _assert_trace_complete(result, expected_stage: str) -> None:
    trace = result.trace
    assert trace is not None
    assert trace.mode == result.mode
    names = [stage.name for stage in trace.stages]
    assert expected_stage in names, names
    # Acceptance criterion: per-stage times sum within 10% of the total.
    total = trace.total_seconds
    assert total > 0.0
    assert abs(trace.stage_seconds() - total) <= 0.1 * total


class TestWorkspaceTraces:
    def test_exact_mode_trace(self, dataset):
        workspace = _workspace(dataset)
        result = workspace.query(dataset[0].values, mode="exact",
                                 exclude_identifier=dataset[0].identifier)
        _assert_trace_complete(result, "dp")
        names = [stage.name for stage in result.trace.stages]
        assert names.index("bounds") < names.index("dp")
        # Exact scans "generate" the whole collection; the cascade then
        # considered everything but the excluded query itself.
        assert result.trace.candidates_generated == 12
        assert result.trace.attributes["candidates"] == 11

    def test_indexed_tfidf_trace(self, dataset):
        workspace = _workspace(dataset)
        result = workspace.query(dataset[1].values, mode="indexed",
                                 rank_mode="tfidf")
        _assert_trace_complete(result, "candidate_rank")
        names = [stage.name for stage in result.trace.stages]
        assert "query_features" in names
        rank = next(stage for stage in result.trace.stages
                    if stage.name == "candidate_rank")
        assert rank.attributes["rank_mode"] == "tfidf"

    def test_indexed_pq_trace(self, dataset):
        workspace = _workspace(dataset)
        result = workspace.query(dataset[2].values, mode="indexed",
                                 rank_mode="pq")
        _assert_trace_complete(result, "candidate_rank")
        rank = next(stage for stage in result.trace.stages
                    if stage.name == "candidate_rank")
        assert rank.attributes["rank_mode"] == "pq"

    def test_repeat_indexed_query_hits_candidate_cache(self, dataset):
        workspace = _workspace(dataset)
        workspace.query(dataset[3].values, mode="indexed")
        result = workspace.query(dataset[3].values, mode="indexed")
        names = [stage.name for stage in result.trace.stages]
        assert "candidate_cache" in names
        payload = workspace.metrics_to_dict()
        values = payload["counters"][
            "repro_candidate_cache_requests_total"]["values"]
        assert values.get("outcome=hit", 0) >= 1

    def test_batched_mode_records_queue_wait(self, dataset):
        workspace = _workspace(dataset, micro_batch=True)
        result = workspace.query(dataset[4].values, mode="exact")
        assert result.queue_wait_seconds >= 0.0
        assert "queue_wait_seconds" in result.timings()
        _assert_trace_complete(result, "dp")

    def test_trace_ring_retains_recent(self, dataset):
        workspace = _workspace(dataset, trace_ring=2)
        for i in range(3):
            workspace.query(dataset[i].values, mode="exact")
        traces = workspace.recent_traces()
        assert len(traces) == 2
        assert all(t["mode"] == "exact" for t in traces)


class TestWorkspaceMetrics:
    def test_metrics_cover_required_families(self, dataset):
        workspace = _workspace(dataset)
        workspace.query(dataset[0].values, mode="exact")
        workspace.query(dataset[1].values, mode="indexed")
        payload = workspace.metrics_to_dict()
        assert "repro_queries_total" in payload["counters"]
        assert "repro_cascade_pruned_total" in payload["counters"]
        assert "repro_snapshots_total" in payload["counters"]
        assert "repro_query_seconds" in payload["histograms"]
        assert "repro_query_stage_seconds" in payload["histograms"]
        assert "repro_pending_mutations" in payload["gauges"]
        assert "repro_postings_cache_hits" in payload["gauges"]
        text = workspace.metrics_prometheus()
        assert "# TYPE repro_query_seconds histogram" in text
        assert 'repro_queries_total{mode="exact"} 1' in text

    def test_mutation_and_snapshot_counters(self, dataset):
        workspace = _workspace(dataset)
        workspace.query(dataset[0].values, mode="exact")   # builds snapshot
        workspace.add(dataset[0].values * 0.5)
        workspace.query(dataset[0].values, mode="exact")   # derives snapshot
        payload = workspace.metrics_to_dict()
        snaps = payload["counters"]["repro_snapshots_total"]["values"]
        assert snaps.get("kind=rebuilt", 0) >= 1
        assert snaps.get("kind=derived", 0) >= 1
        muts = payload["counters"]["repro_mutations_total"]["values"]
        assert muts.get("op=add", 0) >= 1

    def test_stats_reports_telemetry_flag(self, dataset):
        workspace = _workspace(dataset)
        assert workspace.stats()["telemetry"] is True


class TestTelemetryDisabled:
    def test_disabled_workspace_is_silent(self, dataset):
        workspace = _workspace(dataset, telemetry=False)
        result = workspace.query(dataset[0].values, mode="exact")
        assert result.trace is None
        assert workspace.metrics.enabled is False
        assert workspace.metrics_to_dict() == {
            "counters": {}, "gauges": {}, "histograms": {}}
        assert workspace.metrics_prometheus() == ""
        assert workspace.recent_traces() == []
        assert workspace.stats()["telemetry"] is False
        # Results themselves are unaffected.
        enabled = _workspace(dataset)
        reference = enabled.query(dataset[0].values, mode="exact")
        assert result.ids == reference.ids
        assert np.allclose(result.distances, reference.distances)


class TestServingConfigRoundTrip:
    def test_telemetry_fields_round_trip(self):
        config = ServingConfig(telemetry=False, trace_ring=7)
        restored = ServingConfig.from_dict(config.to_dict())
        assert restored.telemetry is False
        assert restored.trace_ring == 7

    def test_trace_ring_must_be_non_negative(self):
        with pytest.raises(ConfigurationError):
            ServingConfig(trace_ring=-1)

    def test_workspace_manifest_persists_telemetry(self, dataset, tmp_path):
        config = WorkspaceConfig(
            serving=ServingConfig(telemetry=False, trace_ring=5))
        workspace = Workspace.create(tmp_path / "ws", config=config)
        workspace.add_dataset(dataset)
        workspace.save()
        reopened = Workspace.open(tmp_path / "ws")
        assert reopened.config.serving.telemetry is False
        assert reopened.config.serving.trace_ring == 5
        assert reopened.query(dataset[0].values).trace is None
