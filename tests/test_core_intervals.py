"""Tests for interval partitions induced by consistent scope boundaries."""

from __future__ import annotations

import pytest

from repro.core.consistency import prune_inconsistent_pairs
from repro.core.intervals import (
    Interval,
    IntervalPartition,
    build_interval_partition,
    partition_from_boundaries,
)
from repro.exceptions import ValidationError


class TestInterval:
    def test_length_is_inclusive(self):
        assert Interval(3, 7).length == 5

    def test_single_point_interval(self):
        interval = Interval(4, 4)
        assert interval.length == 1
        assert interval.is_empty

    def test_reversed_interval_rejected(self):
        with pytest.raises(ValidationError):
            Interval(5, 3)

    def test_contains(self):
        interval = Interval(2, 6)
        assert interval.contains(2)
        assert interval.contains(6)
        assert not interval.contains(7)


class TestPartitionFromBoundaries:
    def test_no_boundaries_single_interval(self):
        partition = partition_from_boundaries([], [], n=10, m=12)
        assert partition.num_intervals == 1
        assert partition.intervals_x[0] == Interval(0, 9)
        assert partition.intervals_y[0] == Interval(0, 11)

    def test_boundaries_create_corresponding_intervals(self):
        partition = partition_from_boundaries([3.0, 7.0], [4.0, 9.0], n=12, m=14)
        assert partition.num_intervals == 3
        assert partition.intervals_x[0].start == 0
        assert partition.intervals_x[-1].end == 11
        assert partition.intervals_y[-1].end == 13

    def test_intervals_cover_series_without_gaps(self):
        partition = partition_from_boundaries([2.0, 5.0, 9.0], [3.0, 6.0, 8.0],
                                               n=15, m=15)
        for intervals, length in ((partition.intervals_x, 15),
                                  (partition.intervals_y, 15)):
            assert intervals[0].start == 0
            assert intervals[-1].end == length - 1
            for prev, curr in zip(intervals, intervals[1:]):
                assert curr.start in (prev.end, prev.end + 1) or curr.start <= prev.end

    def test_unequal_boundary_lists_rejected(self):
        with pytest.raises(ValidationError):
            partition_from_boundaries([1.0], [1.0, 2.0], n=5, m=5)

    def test_boundaries_outside_range_clamped(self):
        partition = partition_from_boundaries([-5.0, 100.0], [0.0, 3.0], n=10, m=10)
        assert partition.intervals_x[0].start == 0
        assert partition.intervals_x[-1].end == 9

    def test_duplicate_boundaries_produce_degenerate_intervals(self):
        partition = partition_from_boundaries([4.0, 4.0], [5.0, 5.0], n=9, m=9)
        assert partition.num_intervals == 3
        # Middle interval collapses onto the boundary sample.
        assert partition.intervals_x[1].length == 1


class TestIntervalLookup:
    @pytest.fixture()
    def partition(self):
        return partition_from_boundaries([3.0, 8.0], [4.0, 10.0], n=12, m=16)

    def test_interval_index_for_x(self, partition):
        assert partition.interval_index_for_x(0) == 0
        assert partition.interval_index_for_x(5) == 1
        assert partition.interval_index_for_x(11) == 2

    def test_interval_index_for_y(self, partition):
        assert partition.interval_index_for_y(0) == 0
        assert partition.interval_index_for_y(7) == 1
        assert partition.interval_index_for_y(15) == 2

    def test_corresponding_returns_matching_pair(self, partition):
        ix, iy = partition.corresponding(1)
        assert ix == partition.intervals_x[1]
        assert iy == partition.intervals_y[1]

    def test_mismatched_interval_counts_rejected(self):
        with pytest.raises(ValidationError):
            IntervalPartition(
                intervals_x=(Interval(0, 4),),
                intervals_y=(Interval(0, 4), Interval(4, 9)),
                n=5,
                m=10,
            )

    def test_empty_partition_rejected(self):
        with pytest.raises(ValidationError):
            IntervalPartition(intervals_x=(), intervals_y=(), n=5, m=5)


class TestBuildFromAlignment:
    def test_empty_alignment_gives_single_interval(self):
        alignment = prune_inconsistent_pairs([])
        partition = build_interval_partition(alignment, 20, 30)
        assert partition.num_intervals == 1

    def test_invalid_lengths_rejected(self):
        alignment = prune_inconsistent_pairs([])
        with pytest.raises(ValidationError):
            build_interval_partition(alignment, 0, 10)

    def test_real_alignment_produces_equal_interval_counts(self, engine, bumpy_pair):
        x, y = bumpy_pair
        alignment = engine.align(x, y)
        partition = alignment.partition
        assert len(partition.intervals_x) == len(partition.intervals_y)
        assert partition.intervals_x[0].start == 0
        assert partition.intervals_x[-1].end == x.size - 1
        assert partition.intervals_y[-1].end == y.size - 1
