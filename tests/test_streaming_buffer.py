"""Tests for the stream ring buffer and sliding-window extrema."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.streaming.buffer import SlidingExtrema, StreamBuffer


class TestStreamBuffer:
    def test_append_and_view_before_wrap(self):
        buf = StreamBuffer(8)
        for value in (1.0, 2.0, 3.0):
            buf.append(value)
        assert buf.total == 3
        assert buf.size == 3
        assert buf.start_index == 0
        np.testing.assert_array_equal(buf.view(), [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(buf.view(2), [2.0, 3.0])

    def test_view_matches_reference_after_many_wraps(self, rng):
        capacity = 13
        buf = StreamBuffer(capacity)
        history = []
        for value in rng.normal(size=200):
            buf.append(value)
            history.append(float(value))
            reference = np.array(history[-capacity:])
            np.testing.assert_array_equal(buf.view(), reference)
            short = min(5, len(history))
            np.testing.assert_array_equal(buf.view(short), reference[-short:])

    def test_view_is_contiguous_zero_copy(self):
        buf = StreamBuffer(4)
        for value in range(11):
            buf.append(float(value))
        window = buf.view(4)
        assert window.flags["C_CONTIGUOUS"]
        assert window.base is not None  # a view, not a copy
        np.testing.assert_array_equal(window, [7.0, 8.0, 9.0, 10.0])

    def test_append_returns_absolute_index(self):
        buf = StreamBuffer(3)
        assert [buf.append(v) for v in (5.0, 6.0, 7.0, 8.0)] == [0, 1, 2, 3]

    def test_extend_matches_per_sample_appends(self, rng):
        values = rng.normal(size=57)
        one = StreamBuffer(10)
        two = StreamBuffer(10)
        for value in values:
            one.append(value)
        assert two.extend(values) == 56
        np.testing.assert_array_equal(one.view(), two.view())
        assert one.total == two.total

    def test_extend_chunk_larger_than_capacity(self, rng):
        values = rng.normal(size=40)
        buf = StreamBuffer(8)
        buf.extend(values)
        assert buf.total == 40
        np.testing.assert_array_equal(buf.view(), values[-8:])

    def test_absolute_getitem(self):
        buf = StreamBuffer(4)
        buf.extend([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        assert buf[5] == 6.0
        assert buf[2] == 3.0
        with pytest.raises(ValidationError):
            buf[1]  # forgotten
        with pytest.raises(ValidationError):
            buf[6]  # not yet appended

    def test_window_returns_owned_copy(self):
        buf = StreamBuffer(4)
        buf.extend([1.0, 2.0, 3.0, 4.0])
        window = buf.window(2)
        buf.append(99.0)
        np.testing.assert_array_equal(window, [3.0, 4.0])

    def test_oversized_view_rejected(self):
        buf = StreamBuffer(4)
        buf.append(1.0)
        with pytest.raises(ValidationError):
            buf.view(2)

    def test_non_finite_chunk_rejected(self):
        buf = StreamBuffer(4)
        with pytest.raises(ValidationError):
            buf.extend([1.0, np.nan])

    def test_empty_extend_is_noop(self):
        buf = StreamBuffer(4)
        buf.append(1.0)
        assert buf.extend([]) == 0
        assert buf.total == 1


class TestSlidingExtrema:
    def test_matches_brute_force_window_extrema(self, rng):
        window = 9
        values = rng.normal(size=300)
        extrema = SlidingExtrema(window)
        for t, value in enumerate(values):
            extrema.push(value)
            lo = max(0, t - window + 1)
            assert extrema.minimum == values[lo: t + 1].min()
            assert extrema.maximum == values[lo: t + 1].max()
        assert extrema.ready

    def test_not_ready_before_full_window(self):
        extrema = SlidingExtrema(4)
        extrema.push(1.0)
        assert not extrema.ready
        assert extrema.extrema() == (1.0, 1.0)

    def test_no_samples_raises(self):
        extrema = SlidingExtrema(4)
        with pytest.raises(ValidationError):
            _ = extrema.minimum
