"""Tests for the band-constrained DTW dynamic program and band utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtw.banded import (
    band_cell_count,
    band_to_mask,
    banded_dtw,
    dtw_with_band,
    intersect_bands,
    mask_to_band,
    transpose_band,
    union_bands,
    validate_band,
)
from repro.dtw.constraints import full_band, sakoe_chiba_band
from repro.dtw.full import dtw_distance
from repro.dtw.path import is_valid_warp_path
from repro.exceptions import BandError


class TestValidateBand:
    def test_valid_band_passes_unchanged(self):
        band = full_band(5, 7)
        validated = validate_band(band, 5, 7)
        np.testing.assert_array_equal(validated, band)

    def test_wrong_shape_rejected(self):
        with pytest.raises(BandError):
            validate_band(np.zeros((5, 3), dtype=int), 5, 7)

    def test_wrong_row_count_rejected(self):
        with pytest.raises(BandError):
            validate_band(full_band(4, 7), 5, 7)

    def test_lo_greater_than_hi_rejected_without_repair(self):
        band = full_band(3, 5)
        band[1] = (4, 2)
        with pytest.raises(BandError):
            validate_band(band, 3, 5, repair=False)

    def test_missing_start_cell_rejected(self):
        band = full_band(3, 5)
        band[0, 0] = 1
        with pytest.raises(BandError):
            validate_band(band, 3, 5, repair=False)

    def test_missing_end_cell_rejected(self):
        band = full_band(3, 5)
        band[2, 1] = 3
        with pytest.raises(BandError):
            validate_band(band, 3, 5, repair=False)

    def test_disconnected_band_rejected(self):
        band = np.array([[0, 1], [3, 4], [3, 4]])
        with pytest.raises(BandError, match="disconnected"):
            validate_band(band, 3, 5, repair=False)

    def test_disconnected_band_repaired(self):
        band = np.array([[0, 1], [3, 4], [3, 4]])
        repaired = validate_band(band, 3, 5, repair=True)
        # After repair consecutive windows must touch.
        for i in range(1, 3):
            assert repaired[i, 0] <= repaired[i - 1, 1] + 1

    def test_backwards_band_rejected(self):
        band = np.array([[0, 4], [3, 4], [0, 0]])
        band[2] = (0, 0)
        with pytest.raises(BandError):
            validate_band(np.array([[0, 4], [3, 4], [0, 2]]), 3, 5, repair=False)

    def test_out_of_range_columns_clipped(self):
        band = np.array([[-2, 10], [0, 10], [0, 99]])
        validated = validate_band(band, 3, 5, repair=True)
        assert validated.min() >= 0
        assert validated.max() <= 4

    def test_backwards_wiggle_of_width_one_windows_rejected(self):
        # Regression: each adjacent pair of windows overlaps or touches, but
        # the column can never return to 0 after visiting 1 (warp paths are
        # monotone), so rows 2-3 are unreachable and no path exists.  The
        # adjacent-row checks alone used to accept this band.
        band = np.array([[0, 0], [1, 1], [0, 1], [0, 0], [1, 1]])
        with pytest.raises(BandError, match="backwards"):
            validate_band(band, 5, 2, repair=False)

    def test_backwards_wiggle_repair_restores_a_warp_path(self):
        # Regression: with repair=True the same band used to be returned
        # essentially unchanged and the DP then failed with "band does not
        # admit any warp path".  The repair must widen the stranded windows.
        band = np.array([[0, 0], [1, 1], [0, 1], [0, 0], [1, 1]])
        repaired = validate_band(band, 5, 2, repair=True)
        validate_band(repaired, 5, 2, repair=False)
        x = np.arange(5.0)
        y = np.arange(2.0)
        for return_path in (False, True):
            result = banded_dtw(x, y, band, return_path=return_path, repair=True)
            assert np.isfinite(result.distance)

    def test_repaired_length_one_windows_admit_paths(self):
        # Exhaustive check over every band of single-cell windows on a tiny
        # grid: after repair the DP must always find a warp path.
        n, m = 4, 3
        x = np.arange(float(n))
        y = np.arange(float(m))
        for code in range(m ** n):
            cols = [(code // m ** i) % m for i in range(n)]
            band = np.array([[c, c] for c in cols])
            repaired = validate_band(band, n, m, repair=True)
            validate_band(repaired, n, m, repair=False)
            result = banded_dtw(x, y, band, return_path=False, repair=True)
            assert np.isfinite(result.distance)

    def test_length_one_series_bands_always_repairable(self):
        # Length-1 series on either axis: any window input must repair to a
        # usable band.
        for n, m, band in (
            (1, 5, np.array([[3, 1]])),
            (1, 5, np.array([[4, 4]])),
            (5, 1, np.array([[0, 0]] * 5)),
            (1, 1, np.array([[0, 0]])),
        ):
            repaired = validate_band(band, n, m, repair=True)
            validate_band(repaired, n, m, repair=False)
            result = banded_dtw(np.arange(float(n)), np.arange(float(m)),
                                band, return_path=False, repair=True)
            assert np.isfinite(result.distance)


class TestBandHelpers:
    def test_cell_count_of_full_band(self):
        assert band_cell_count(full_band(4, 6)) == 24

    def test_mask_round_trip(self):
        band = sakoe_chiba_band(10, 10, 2)
        mask = band_to_mask(band, 10)
        recovered = mask_to_band(mask)
        np.testing.assert_array_equal(recovered, band)

    def test_mask_with_empty_rows_gets_bridged(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = True
        mask[3, 3] = True
        band = mask_to_band(mask)
        assert band.shape == (4, 2)
        # The DP must be able to run on the bridged band.
        x = np.arange(4.0)
        y = np.arange(4.0)
        result = banded_dtw(x, y, band)
        assert np.isfinite(result.distance)

    def test_union_is_at_least_as_wide_as_inputs(self):
        a = sakoe_chiba_band(12, 12, 1)
        b = sakoe_chiba_band(12, 12, 3)
        union = union_bands(a, b)
        assert np.all(union[:, 0] <= a[:, 0])
        assert np.all(union[:, 1] >= a[:, 1])
        np.testing.assert_array_equal(union, b)

    def test_intersection_is_no_wider_than_inputs(self):
        a = sakoe_chiba_band(12, 12, 1)
        b = sakoe_chiba_band(12, 12, 3)
        inter = intersect_bands(a, b)
        np.testing.assert_array_equal(inter, a)

    def test_union_rejects_mismatched_heights(self):
        with pytest.raises(BandError):
            union_bands(full_band(3, 4), full_band(4, 4))

    def test_union_requires_at_least_one_band(self):
        with pytest.raises(BandError):
            union_bands()

    def test_transpose_band_swaps_grid_orientation(self):
        band = sakoe_chiba_band(8, 12, 2)
        transposed = transpose_band(band, 8, 12)
        assert transposed.shape == (12, 2)
        # Transposing twice must give back a band covering the original cells.
        double = transpose_band(transposed, 12, 8)
        mask_original = band_to_mask(band, 12)
        mask_double = band_to_mask(double, 12)
        assert np.array_equal(mask_original, mask_double)


class TestBandedDTW:
    def test_full_band_matches_unconstrained_dtw(self, sine_pair):
        x, y = sine_pair
        band = full_band(x.size, y.size)
        result = banded_dtw(x, y, band, return_path=False)
        assert result.distance == pytest.approx(dtw_distance(x, y))
        assert result.cells_filled == x.size * y.size

    def test_banded_distance_upper_bounds_full_dtw(self, bumpy_pair):
        x, y = bumpy_pair
        band = sakoe_chiba_band(x.size, y.size, 5)
        constrained = banded_dtw(x, y, band, return_path=False).distance
        assert constrained >= dtw_distance(x, y) - 1e-9

    def test_narrower_band_never_improves_distance(self, bumpy_pair):
        x, y = bumpy_pair
        wide = banded_dtw(x, y, sakoe_chiba_band(x.size, y.size, 20),
                          return_path=False).distance
        narrow = banded_dtw(x, y, sakoe_chiba_band(x.size, y.size, 3),
                            return_path=False).distance
        assert narrow >= wide - 1e-9

    def test_path_stays_inside_band(self, sine_pair):
        x, y = sine_pair
        band = sakoe_chiba_band(x.size, y.size, 8)
        result = banded_dtw(x, y, band, return_path=True)
        for i, j in result.path:
            assert band[i, 0] <= j <= band[i, 1]

    def test_path_is_valid_warp_path(self, sine_pair):
        x, y = sine_pair
        band = sakoe_chiba_band(x.size, y.size, 8)
        result = banded_dtw(x, y, band, return_path=True)
        assert is_valid_warp_path(result.path.pairs, x.size, y.size)

    def test_path_and_distance_only_variants_agree(self, bumpy_pair):
        x, y = bumpy_pair
        band = sakoe_chiba_band(x.size, y.size, 6)
        with_path = banded_dtw(x, y, band, return_path=True)
        without_path = banded_dtw(x, y, band, return_path=False)
        assert with_path.distance == pytest.approx(without_path.distance)
        assert with_path.cells_filled == without_path.cells_filled

    def test_cells_filled_equals_band_area(self, sine_pair):
        x, y = sine_pair
        band = sakoe_chiba_band(x.size, y.size, 4)
        result = banded_dtw(x, y, band, return_path=False)
        assert result.cells_filled == band_cell_count(band)

    def test_identical_series_zero_distance_under_any_band(self):
        series = np.cos(np.linspace(0, 5, 60))
        band = sakoe_chiba_band(60, 60, 2)
        assert banded_dtw(series, series, band,
                          return_path=False).distance == pytest.approx(0.0)

    def test_single_column_band(self):
        # Degenerate band: every x element aligned to the single y element.
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([2.0])
        band = np.array([[0, 0], [0, 0], [0, 0]])
        result = banded_dtw(x, y, band, return_path=True)
        assert result.distance == pytest.approx(1.0 + 0.0 + 1.0)
        assert result.path.pairs == ((0, 0), (1, 0), (2, 0))

    def test_cell_fraction_property(self, sine_pair):
        x, y = sine_pair
        band = sakoe_chiba_band(x.size, y.size, 4)
        result = banded_dtw(x, y, band, return_path=False)
        assert 0.0 < result.cell_fraction < 1.0

    def test_dtw_with_band_none_equals_full(self, sine_pair):
        x, y = sine_pair
        assert dtw_with_band(x, y, None) == pytest.approx(dtw_distance(x, y))

    def test_dtw_with_band_wrapper(self, sine_pair):
        x, y = sine_pair
        band = sakoe_chiba_band(x.size, y.size, 6)
        expected = banded_dtw(x, y, band, return_path=False).distance
        assert dtw_with_band(x, y, band) == pytest.approx(expected)

    def test_equal_length_band_radius_zero_is_pointwise_sum(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        y = np.array([1.0, 1.0, 2.0, 5.0])
        band = sakoe_chiba_band(4, 4, 0)
        # Radius-0 band on equal-length series restricts to the diagonal.
        expected = float(np.sum(np.abs(x - y)))
        assert banded_dtw(x, y, band, return_path=False).distance == pytest.approx(expected)


class TestEarlyAbandoning:
    def test_huge_threshold_never_abandons(self, bumpy_pair):
        x, y = bumpy_pair
        band = sakoe_chiba_band(x.size, y.size, 6)
        reference = banded_dtw(x, y, band, return_path=False)
        result = banded_dtw(x, y, band, return_path=False,
                            abandon_threshold=reference.distance * 10 + 1.0)
        assert not result.abandoned
        assert result.distance == pytest.approx(reference.distance)
        assert result.cells_filled == reference.cells_filled

    def test_tiny_threshold_abandons_and_saves_cells(self, bumpy_pair):
        x, y = bumpy_pair
        band = sakoe_chiba_band(x.size, y.size, 6)
        reference = banded_dtw(x, y, band, return_path=False)
        result = banded_dtw(x, y, band, return_path=False,
                            abandon_threshold=reference.distance / 100.0)
        assert result.abandoned
        assert result.distance == np.inf
        assert 0 < result.cells_filled < reference.cells_filled

    def test_abandon_with_path_request_rejected(self, bumpy_pair):
        from repro.exceptions import ValidationError

        x, y = bumpy_pair
        band = sakoe_chiba_band(x.size, y.size, 6)
        with pytest.raises(ValidationError):
            banded_dtw(x, y, band, return_path=True, abandon_threshold=1.0)

    def test_threshold_equal_to_distance_does_not_abandon(self):
        # Abandonment requires a *strict* row-minimum exceedance, so a
        # threshold exactly at the true distance must return the distance.
        x = np.array([0.0, 1.0, 2.0])
        y = np.array([0.0, 1.0, 2.0])
        band = sakoe_chiba_band(3, 3, 1)
        result = banded_dtw(x, y, band, return_path=False, abandon_threshold=0.0)
        assert not result.abandoned
        assert result.distance == pytest.approx(0.0)
