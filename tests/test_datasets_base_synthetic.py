"""Tests for the Dataset/TimeSeries containers and the synthetic collections."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.base import Dataset, TimeSeries
from repro.datasets.synthetic import (
    make_fiftywords_like,
    make_gun_like,
    make_synthetic_dataset,
    make_trace_like,
)
from repro.exceptions import DatasetError


class TestTimeSeries:
    def test_values_validated_and_copied(self):
        raw = [1, 2, 3]
        ts = TimeSeries(values=raw, label=1, identifier="t-0")
        assert ts.length == 3
        assert ts.values.dtype == float

    def test_iteration_and_len(self):
        ts = TimeSeries(values=[1.0, 2.0])
        assert len(ts) == 2
        assert list(ts) == [1.0, 2.0]

    def test_invalid_values_rejected(self):
        with pytest.raises(Exception):
            TimeSeries(values=[np.nan])


class TestDataset:
    @pytest.fixture()
    def dataset(self):
        series = [
            TimeSeries(values=np.arange(10.0) + i, label=i % 2, identifier=f"s{i}")
            for i in range(6)
        ]
        return Dataset(name="toy", series=series)

    def test_len_and_indexing(self, dataset):
        assert len(dataset) == 6
        assert dataset[0].identifier == "s0"

    def test_labels_and_classes(self, dataset):
        assert dataset.num_classes == 2
        assert dataset.labels == [0, 1, 0, 1, 0, 1]

    def test_by_class_grouping(self, dataset):
        groups = dataset.by_class()
        assert set(groups) == {0, 1}
        assert len(groups[0]) == 3

    def test_subset_preserves_order_and_metadata(self, dataset):
        subset = dataset.subset([0, 2, 4], name="toy-even")
        assert len(subset) == 3
        assert subset.name == "toy-even"
        assert subset.metadata["parent"] == "toy"

    def test_sample_without_replacement(self, dataset):
        sampled = dataset.sample(4, np.random.default_rng(0))
        identifiers = [ts.identifier for ts in sampled]
        assert len(identifiers) == len(set(identifiers)) == 4

    def test_sample_too_many_rejected(self, dataset):
        with pytest.raises(DatasetError):
            dataset.sample(100, np.random.default_rng(0))

    def test_validate_rejects_empty_dataset(self):
        with pytest.raises(DatasetError):
            Dataset(name="empty").validate()

    def test_summary_fields(self, dataset):
        summary = dataset.summary()
        assert summary["num_series"] == 6
        assert summary["num_classes"] == 2
        assert summary["length"] == 10

    def test_values_list_returns_arrays_in_order(self, dataset):
        values = dataset.values_list()
        assert len(values) == 6
        np.testing.assert_allclose(values[0], np.arange(10.0))


class TestSyntheticDatasets:
    def test_gun_like_matches_paper_dimensions(self):
        dataset = make_gun_like()
        summary = dataset.summary()
        assert summary["length"] == 150
        assert summary["num_series"] == 50
        assert summary["num_classes"] == 2

    def test_trace_like_matches_paper_dimensions(self):
        dataset = make_trace_like(num_series=20)
        assert dataset[0].length == 275
        assert dataset.num_classes == 4

    def test_fiftywords_like_matches_paper_dimensions(self):
        dataset = make_fiftywords_like(num_series=100)
        assert dataset[0].length == 270
        assert dataset.num_classes == 50

    def test_generation_is_deterministic_per_seed(self):
        a = make_gun_like(num_series=6, seed=11)
        b = make_gun_like(num_series=6, seed=11)
        for ts_a, ts_b in zip(a, b):
            np.testing.assert_allclose(ts_a.values, ts_b.values)

    def test_different_seeds_differ(self):
        a = make_gun_like(num_series=6, seed=11)
        b = make_gun_like(num_series=6, seed=12)
        assert any(
            not np.allclose(ts_a.values, ts_b.values) for ts_a, ts_b in zip(a, b)
        )

    def test_series_within_class_are_more_similar_than_across(self):
        """Euclidean sanity check of the class structure: members of the same
        class should on average be closer than members of different classes."""
        dataset = make_trace_like(num_series=12, seed=5)
        values = dataset.values_list()
        labels = dataset.labels
        same, cross = [], []
        for a in range(len(values)):
            for b in range(a + 1, len(values)):
                d = float(np.linalg.norm(values[a] - values[b]))
                (same if labels[a] == labels[b] else cross).append(d)
        assert np.mean(same) < np.mean(cross)

    def test_classes_balanced_as_evenly_as_possible(self):
        dataset = make_synthetic_dataset("custom", length=64, num_series=10,
                                         num_classes=3, seed=1)
        counts = [len(v) for v in dataset.by_class().values()]
        assert max(counts) - min(counts) <= 1

    def test_more_classes_than_series_rejected(self):
        with pytest.raises(DatasetError):
            make_synthetic_dataset("bad", length=32, num_series=2, num_classes=5)

    def test_metadata_records_generation_parameters(self):
        dataset = make_gun_like(num_series=4, seed=9)
        assert dataset.metadata["synthetic"] is True
        assert dataset.metadata["seed"] == 9
        assert dataset.metadata["prototype_kind"] == "gun"

    def test_identifiers_unique(self):
        dataset = make_fiftywords_like(num_series=60, seed=2)
        identifiers = [ts.identifier for ts in dataset]
        assert len(identifiers) == len(set(identifiers))

    def test_noise_level_respected(self):
        quiet = make_gun_like(num_series=4, seed=3, noise_std=0.0)
        noisy = make_gun_like(num_series=4, seed=3, noise_std=0.1)
        # Same prototypes and warps, different noise: the noisy series must
        # deviate more from its class prototype than the quiet one.
        diff = np.mean(np.abs(quiet[0].values - noisy[0].values))
        assert diff > 0.01
