"""Tests for the statistics, table-formatting and RNG utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.rng import derive_seed, rng_from_seed
from repro.utils.stats import (
    mean_and_std,
    pairwise_relative_error,
    percentile_summary,
    relative_error,
    safe_divide,
)
from repro.utils.tables import format_table, table_to_csv


class TestSafeDivide:
    def test_normal_division(self):
        assert safe_divide(6.0, 3.0) == pytest.approx(2.0)

    def test_zero_denominator_returns_default(self):
        assert safe_divide(5.0, 0.0, default=-1.0) == -1.0

    def test_near_zero_denominator_returns_default(self):
        assert safe_divide(5.0, 1e-20) == 0.0


class TestRelativeError:
    def test_positive_overestimate(self):
        assert relative_error(12.0, 10.0) == pytest.approx(0.2)

    def test_exact_estimate_is_zero(self):
        assert relative_error(10.0, 10.0) == pytest.approx(0.0)

    def test_zero_reference_zero_estimate(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_zero_reference_nonzero_estimate_is_infinite(self):
        assert relative_error(1.0, 0.0) == float("inf")

    def test_pairwise_mean_error(self):
        assert pairwise_relative_error([11.0, 20.0], [10.0, 10.0]) == pytest.approx(
            (0.1 + 1.0) / 2
        )

    def test_pairwise_skips_zero_references(self):
        assert pairwise_relative_error([5.0, 11.0], [0.0, 10.0]) == pytest.approx(0.1)

    def test_pairwise_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            pairwise_relative_error([1.0], [1.0, 2.0])

    def test_pairwise_all_zero_references_gives_zero(self):
        assert pairwise_relative_error([1.0], [0.0]) == 0.0


class TestSummaries:
    def test_mean_and_std(self):
        mean, std = mean_and_std([2.0, 4.0, 6.0])
        assert mean == pytest.approx(4.0)
        assert std == pytest.approx(np.std([2.0, 4.0, 6.0]))

    def test_mean_and_std_empty(self):
        assert mean_and_std([]) == (0.0, 0.0)

    def test_percentile_summary_keys(self):
        summary = percentile_summary(range(101))
        assert summary["p50"] == pytest.approx(50.0)
        assert set(summary) == {"p5", "p25", "p50", "p75", "p95"}

    def test_percentile_summary_empty_gives_nan(self):
        summary = percentile_summary([])
        assert np.isnan(summary["p50"])


class TestTables:
    def test_format_table_contains_headers_and_values(self):
        text = format_table(["name", "value"], [["a", 1.5], ["b", 2]], title="T")
        assert "T" in text
        assert "name" in text
        assert "1.5000" in text
        assert "| b" in text

    def test_format_table_handles_none(self):
        text = format_table(["x"], [[None]])
        assert text.count("|") >= 2

    def test_csv_output_rows(self):
        csv = table_to_csv(["a", "b"], [[1, 2.5], ["x", None]])
        lines = csv.strip().split("\n")
        assert lines[0] == "a,b"
        assert lines[1].startswith("1,2.5")
        assert lines[2] == "x,"

    def test_format_table_column_alignment(self):
        text = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = [line for line in text.splitlines() if line.startswith("|")]
        assert len({len(line) for line in lines}) == 1


class TestRNG:
    def test_rng_from_int_seed_deterministic(self):
        a = rng_from_seed(42).normal(size=5)
        b = rng_from_seed(42).normal(size=5)
        np.testing.assert_allclose(a, b)

    def test_rng_passthrough_for_generator(self):
        gen = np.random.default_rng(0)
        assert rng_from_seed(gen) is gen

    def test_derive_seed_depends_on_labels(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")
        assert derive_seed(7, "a", 1) != derive_seed(7, "a", 2)

    def test_derive_seed_is_stable(self):
        assert derive_seed(123, "gun", 4) == derive_seed(123, "gun", 4)

    def test_derive_seed_fits_in_64_bits(self):
        assert 0 <= derive_seed(1, "x") < 2 ** 63
