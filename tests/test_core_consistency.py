"""Tests for inconsistency pruning of matched pairs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MatchingConfig
from repro.core.consistency import (
    amplitude_percentage_difference,
    prune_inconsistent_pairs,
    score_pairs,
)
from repro.core.features import SalientFeature
from repro.core.matching import MatchedPair


def make_feature(position, sigma=2.0, amplitude=1.0, mean_amplitude=None):
    return SalientFeature(
        position=float(position),
        sigma=float(sigma),
        scope_start=float(position) - 3 * sigma,
        scope_end=float(position) + 3 * sigma,
        octave=0,
        level=0,
        amplitude=float(amplitude),
        mean_amplitude=float(mean_amplitude if mean_amplitude is not None else amplitude),
        dog_value=0.1,
        scale_class="fine",
        descriptor=np.array([0.5, 0.5, 0.5, 0.5]),
    )


def make_pair(pos_x, pos_y, sigma=2.0, distance=0.1, amplitude=1.0):
    return MatchedPair(
        feature_x=make_feature(pos_x, sigma, amplitude),
        feature_y=make_feature(pos_y, sigma, amplitude),
        descriptor_distance=distance,
    )


class TestAmplitudeDifference:
    def test_equal_amplitudes_give_zero(self):
        assert amplitude_percentage_difference(make_pair(10, 12)) == pytest.approx(0.0)

    def test_difference_is_relative_to_larger_magnitude(self):
        pair = MatchedPair(
            make_feature(10, mean_amplitude=1.0),
            make_feature(12, mean_amplitude=0.5),
            0.1,
        )
        assert amplitude_percentage_difference(pair) == pytest.approx(0.5)

    def test_zero_amplitudes_give_zero(self):
        pair = MatchedPair(
            make_feature(10, mean_amplitude=0.0),
            make_feature(12, mean_amplitude=0.0),
            0.1,
        )
        assert amplitude_percentage_difference(pair) == pytest.approx(0.0)

    def test_capped_at_one(self):
        pair = MatchedPair(
            make_feature(10, mean_amplitude=-1.0),
            make_feature(12, mean_amplitude=1.0),
            0.1,
        )
        assert amplitude_percentage_difference(pair) <= 1.0


class TestScorePairs:
    def test_empty_input(self):
        assert score_pairs([]) == []

    def test_bigger_and_closer_pairs_score_higher_alignment(self):
        big_close = make_pair(50, 51, sigma=8.0)
        small_far = make_pair(50, 90, sigma=1.0)
        scored = {id(sp.pair): sp for sp in score_pairs([big_close, small_far])}
        assert (
            scored[id(big_close)].alignment_score
            > scored[id(small_far)].alignment_score
        )

    def test_combined_score_bounded_by_unit_interval(self):
        pairs = [make_pair(10, 12), make_pair(50, 80, sigma=5.0), make_pair(90, 91)]
        for sp in score_pairs(pairs):
            assert 0.0 <= sp.combined_score <= 1.0

    def test_combined_score_is_harmonic_mean_shape(self):
        # A pair that maximises both normalised scores gets a combined score
        # of exactly 1.
        single = make_pair(10, 10, sigma=4.0)
        scored = score_pairs([single])
        assert scored[0].combined_score == pytest.approx(1.0)


class TestPruning:
    def test_no_pairs_gives_empty_alignment(self):
        alignment = prune_inconsistent_pairs([])
        assert alignment.num_pairs == 0
        assert alignment.boundaries_x == ()
        assert alignment.boundaries_y == ()

    def test_consistent_pairs_all_kept(self):
        pairs = [make_pair(20, 22), make_pair(60, 64), make_pair(100, 95)]
        alignment = prune_inconsistent_pairs(pairs)
        assert alignment.num_pairs == 3

    def test_crossing_pairs_pruned(self):
        # The two pairs cross: x(20)->y(100) and x(100)->y(20).
        crossing = [
            make_pair(20, 100, sigma=2.0),
            make_pair(100, 20, sigma=2.0),
            make_pair(60, 60, sigma=6.0),
        ]
        alignment = prune_inconsistent_pairs(crossing)
        assert alignment.num_pairs < 3
        # The retained pairs must be order-consistent.
        xs = [p.feature_x.position for p in alignment.pairs]
        ys = [p.feature_y.position for p in alignment.pairs]
        assert sorted(xs) == xs
        assert sorted(ys) == ys

    def test_boundary_lists_have_equal_length(self):
        pairs = [make_pair(20, 25), make_pair(70, 60), make_pair(110, 112)]
        alignment = prune_inconsistent_pairs(pairs)
        assert len(alignment.boundaries_x) == len(alignment.boundaries_y)
        assert len(alignment.boundaries_x) == 2 * alignment.num_pairs

    def test_boundaries_sorted_in_time(self):
        pairs = [make_pair(20, 25), make_pair(70, 60), make_pair(110, 112)]
        alignment = prune_inconsistent_pairs(pairs)
        assert list(alignment.boundaries_x) == sorted(alignment.boundaries_x)
        assert list(alignment.boundaries_y) == sorted(alignment.boundaries_y)

    def test_higher_scored_pair_survives_conflict(self):
        # The large, well-aligned pair should win over the crossing small one.
        strong = make_pair(60, 62, sigma=10.0, distance=0.01)
        weak = make_pair(20, 100, sigma=1.0, distance=1.5)
        alignment = prune_inconsistent_pairs([strong, weak])
        kept_positions = {p.feature_x.position for p in alignment.pairs}
        assert 60.0 in kept_positions

    def test_pruning_can_be_disabled(self):
        crossing = [make_pair(20, 100), make_pair(100, 20)]
        config = MatchingConfig(prune_inconsistencies=False)
        alignment = prune_inconsistent_pairs(crossing, config)
        assert alignment.num_pairs == 2

    def test_scored_pairs_reported_for_all_candidates(self):
        pairs = [make_pair(20, 100), make_pair(100, 20), make_pair(60, 61)]
        alignment = prune_inconsistent_pairs(pairs)
        assert len(alignment.scored_pairs) == 3

    def test_kept_pairs_sorted_by_position(self):
        pairs = [make_pair(110, 112), make_pair(20, 25), make_pair(70, 72)]
        alignment = prune_inconsistent_pairs(pairs)
        positions = [p.feature_x.position for p in alignment.pairs]
        assert positions == sorted(positions)

    def test_nested_scopes_handled(self):
        # A huge feature whose scope encloses a smaller one: the ordering of
        # boundaries must remain consistent, whichever is kept.
        outer = make_pair(60, 60, sigma=15.0)
        inner = make_pair(60, 62, sigma=1.0)
        alignment = prune_inconsistent_pairs([outer, inner])
        assert alignment.num_pairs >= 1
        assert list(alignment.boundaries_x) == sorted(alignment.boundaries_x)

    def test_identical_boundary_values_accepted_as_ties(self):
        # Same scope boundaries on both series: the tie exception applies.
        a = make_pair(50, 50, sigma=4.0)
        b = make_pair(50, 50, sigma=4.0)
        alignment = prune_inconsistent_pairs([a, b])
        assert alignment.num_pairs >= 1
