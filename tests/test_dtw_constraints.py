"""Tests for the classic global constraints (Sakoe–Chiba, Itakura)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtw.banded import band_cell_count, validate_band
from repro.dtw.constraints import (
    full_band,
    itakura_band,
    sakoe_chiba_band,
    sakoe_chiba_band_fraction,
)
from repro.exceptions import ValidationError


class TestFullBand:
    def test_covers_entire_grid(self):
        band = full_band(6, 9)
        assert band_cell_count(band) == 54

    def test_rejects_non_positive_lengths(self):
        with pytest.raises(ValidationError):
            full_band(0, 5)


class TestSakoeChiba:
    def test_contains_the_diagonal(self):
        band = sakoe_chiba_band(20, 20, 3)
        for i in range(20):
            assert band[i, 0] <= i <= band[i, 1]

    def test_radius_zero_square_grid_is_diagonal(self):
        band = sakoe_chiba_band(10, 10, 0)
        np.testing.assert_array_equal(band[:, 0], band[:, 1])

    def test_width_grows_with_radius(self):
        narrow = sakoe_chiba_band(30, 30, 2)
        wide = sakoe_chiba_band(30, 30, 6)
        assert band_cell_count(wide) > band_cell_count(narrow)

    def test_rectangular_grid_follows_resampled_diagonal(self):
        band = sakoe_chiba_band(10, 20, 1)
        # The centre of the band for the last row must reach the last column.
        assert band[-1, 1] == 19
        assert band[0, 0] == 0

    def test_band_is_validated(self):
        band = sakoe_chiba_band(15, 25, 2)
        validate_band(band, 15, 25, repair=False)

    def test_fractional_radius_interpreted_as_width_fraction(self):
        band = sakoe_chiba_band(100, 100, 0.10)
        widths = band[:, 1] - band[:, 0] + 1
        # Each point should see roughly 10% of the other series.
        assert 8 <= np.median(widths) <= 14

    def test_negative_radius_rejected(self):
        with pytest.raises(ValidationError):
            sakoe_chiba_band(10, 10, -1)

    def test_single_point_series(self):
        band = sakoe_chiba_band(1, 8, 2)
        np.testing.assert_array_equal(band, [[0, 7]])


class TestSakoeChibaFraction:
    def test_cell_count_tracks_fraction(self):
        small = sakoe_chiba_band_fraction(100, 100, 0.06)
        large = sakoe_chiba_band_fraction(100, 100, 0.20)
        assert band_cell_count(small) < band_cell_count(large)
        # 20% band should fill roughly 20% of the grid (within slack for
        # rounding and edge clipping).
        assert 0.12 <= band_cell_count(large) / 10000.0 <= 0.30

    def test_fraction_above_one_rejected(self):
        with pytest.raises(ValidationError):
            sakoe_chiba_band_fraction(10, 10, 1.5)

    def test_fraction_zero_rejected(self):
        with pytest.raises(ValidationError):
            sakoe_chiba_band_fraction(10, 10, 0.0)


class TestItakura:
    def test_contains_corners(self):
        band = itakura_band(30, 30, max_slope=2.0)
        assert band[0, 0] == 0
        assert band[-1, 1] == 29

    def test_middle_is_widest(self):
        band = itakura_band(41, 41, max_slope=2.0)
        widths = band[:, 1] - band[:, 0] + 1
        middle = widths[20]
        assert middle >= widths[2]
        assert middle >= widths[-3]

    def test_larger_slope_widens_the_band(self):
        tight = itakura_band(40, 40, max_slope=1.5)
        loose = itakura_band(40, 40, max_slope=3.0)
        assert band_cell_count(loose) >= band_cell_count(tight)

    def test_slope_must_exceed_one(self):
        with pytest.raises(ValidationError):
            itakura_band(10, 10, max_slope=1.0)

    def test_slope_must_be_positive(self):
        with pytest.raises(ValidationError):
            itakura_band(10, 10, max_slope=-2.0)

    def test_rectangular_grid_supported(self):
        band = itakura_band(20, 35, max_slope=2.0)
        validate_band(band, 20, 35, repair=False)

    def test_parallelogram_is_narrower_than_full_grid(self):
        band = itakura_band(50, 50, max_slope=2.0)
        assert band_cell_count(band) < 50 * 50
