"""Tests for the FastDTW multi-resolution approximation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtw.fastdtw import fastdtw, _reduce_by_half
from repro.dtw.full import dtw_distance
from repro.dtw.path import is_valid_warp_path
from repro.exceptions import ValidationError


class TestReduceByHalf:
    def test_even_length_halved(self):
        reduced = _reduce_by_half(np.array([0.0, 2.0, 4.0, 6.0]))
        np.testing.assert_allclose(reduced, [1.0, 5.0])

    def test_odd_length_pads_last_value(self):
        reduced = _reduce_by_half(np.array([0.0, 2.0, 4.0]))
        np.testing.assert_allclose(reduced, [1.0, 4.0])


class TestFastDTW:
    def test_small_series_solved_exactly(self):
        x = np.array([0.0, 1.0, 2.0, 1.0])
        y = np.array([0.0, 2.0, 1.0])
        result = fastdtw(x, y, radius=1)
        assert result.distance == pytest.approx(dtw_distance(x, y))

    def test_approximation_upper_bounds_exact_distance(self, bumpy_pair):
        x, y = bumpy_pair
        result = fastdtw(x, y, radius=1)
        assert result.distance >= dtw_distance(x, y) - 1e-9

    def test_larger_radius_improves_or_matches_approximation(self, bumpy_pair):
        x, y = bumpy_pair
        loose = fastdtw(x, y, radius=0).distance
        tight = fastdtw(x, y, radius=4).distance
        assert tight <= loose + 1e-9

    def test_large_radius_recovers_exact_distance(self, sine_pair):
        x, y = sine_pair
        exact = dtw_distance(x, y)
        approx = fastdtw(x, y, radius=30).distance
        assert approx == pytest.approx(exact, rel=1e-9)

    def test_path_is_valid(self, sine_pair):
        x, y = sine_pair
        result = fastdtw(x, y, radius=2)
        assert is_valid_warp_path(result.path.pairs, x.size, y.size)

    def test_fills_fewer_cells_than_full_grid(self):
        rng = np.random.default_rng(11)
        x = np.cumsum(rng.normal(size=300))
        y = np.cumsum(rng.normal(size=300))
        result = fastdtw(x, y, radius=1)
        assert result.cells_filled < 300 * 300

    def test_identical_series_zero_distance(self):
        series = np.sin(np.linspace(0, 8, 200))
        assert fastdtw(series, series, radius=1).distance == pytest.approx(0.0)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValidationError):
            fastdtw([1.0, 2.0], [1.0, 2.0], radius=-1)

    def test_min_size_must_be_at_least_two(self):
        with pytest.raises(ValidationError):
            fastdtw([1.0, 2.0], [1.0, 2.0], min_size=1)
