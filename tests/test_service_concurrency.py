"""Concurrency tests for the Workspace: threaded reads must be
serial-identical, with and without micro-batching, and must survive
concurrent mutation."""

from __future__ import annotations

import threading
import time

import pytest

from repro.datasets.synthetic import make_gun_like
from repro.service import (
    EngineConfig,
    IndexConfig,
    MicroBatcher,
    ServingConfig,
    Workspace,
    WorkspaceConfig,
)
from repro.service.batching import QueryRequest

NUM_THREADS = 8


@pytest.fixture(scope="module")
def dataset():
    return make_gun_like(num_series=12, seed=29)


def _config(micro_batch: bool) -> WorkspaceConfig:
    return WorkspaceConfig(
        engine=EngineConfig(constraint="fc,fw", backend="vectorized"),
        index=IndexConfig(num_codewords=24, num_shards=2, candidate_budget=6),
        serving=ServingConfig(micro_batch=micro_batch, batch_window_ms=1.0),
        default_k=3,
    )


def _run_threaded(workspace, queries, *, mode="exact", repeats=2):
    """Each of NUM_THREADS threads answers every query; returns all outcomes."""
    results = [[None] * len(queries) for _ in range(NUM_THREADS)]
    errors = []
    barrier = threading.Barrier(NUM_THREADS)

    def worker(slot):
        try:
            barrier.wait()
            for _ in range(repeats):
                for qi, values in enumerate(queries):
                    outcome = workspace.query(values, 3, mode=mode)
                    results[slot][qi] = (outcome.ids, outcome.distances)
        except BaseException as exc:  # noqa: BLE001 - re-raised in the test
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(slot,))
        for slot in range(NUM_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return results


class TestThreadedReads:
    def test_eight_threads_serial_identical_exact(self, dataset):
        workspace = Workspace(_config(micro_batch=False))
        workspace.add_dataset(dataset)
        queries = [ts.values for ts in dataset.series[:4]]
        serial = [
            (r.ids, r.distances)
            for r in (workspace.query(q, 3, mode="exact") for q in queries)
        ]
        for per_thread in _run_threaded(workspace, queries):
            assert per_thread == serial

    def test_eight_threads_serial_identical_indexed(self, dataset):
        workspace = Workspace(_config(micro_batch=False))
        workspace.add_dataset(dataset)
        workspace.build_index()
        queries = [ts.values for ts in dataset.series[:4]]
        serial = [
            (r.ids, r.distances)
            for r in (workspace.query(q, 3, mode="indexed") for q in queries)
        ]
        for per_thread in _run_threaded(workspace, queries, mode="indexed"):
            assert per_thread == serial

    def test_micro_batched_reads_bit_identical_to_unbatched(self, dataset):
        unbatched = Workspace(_config(micro_batch=False))
        unbatched.add_dataset(dataset)
        batched = Workspace(_config(micro_batch=True))
        batched.add_dataset(dataset)
        queries = [ts.values for ts in dataset.series[:4]]
        serial = [
            (r.ids, r.distances)
            for r in (unbatched.query(q, 3, mode="exact") for q in queries)
        ]
        for per_thread in _run_threaded(batched, queries):
            assert per_thread == serial
        batcher = batched._batcher
        assert batcher is not None
        assert batcher.requests_batched >= NUM_THREADS

    def test_micro_batched_single_caller_works(self, dataset):
        workspace = Workspace(_config(micro_batch=True))
        workspace.add_dataset(dataset)
        reference = Workspace(_config(micro_batch=False))
        reference.add_dataset(dataset)
        ours = workspace.query(dataset[0].values, 3, mode="exact")
        want = reference.query(dataset[0].values, 3, mode="exact")
        assert ours.ids == want.ids
        assert ours.distances == want.distances


class TestReadsDuringMutation:
    def test_queries_survive_concurrent_adds(self, dataset):
        """Readers racing add_batch never crash and never see a torn state;
        once the writer finishes, results equal a serial engine over the
        final collection."""
        workspace = Workspace(_config(micro_batch=False))
        first, rest = dataset.series[:6], dataset.series[6:]
        workspace.add_batch(
            [ts.values for ts in first],
            [ts.identifier for ts in first],
            [ts.label for ts in first],
        )
        queries = [ts.values for ts in first[:3]]
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                for values in queries:
                    try:
                        outcome = workspace.query(values, 2, mode="exact")
                        assert len(outcome.hits) == 2
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)
                        return

        threads = [threading.Thread(target=reader) for _ in range(NUM_THREADS)]
        for thread in threads:
            thread.start()
        for ts in rest:
            workspace.add(ts.values, identifier=ts.identifier, label=ts.label)
        stop.set()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

        final = Workspace(_config(micro_batch=False))
        final.add_dataset(dataset)
        for values in queries:
            ours = workspace.query(values, 3, mode="exact")
            want = final.query(values, 3, mode="exact")
            assert ours.ids == want.ids
            assert ours.distances == want.distances

    def test_queries_survive_concurrent_build_index(self, dataset):
        workspace = Workspace(_config(micro_batch=False))
        workspace.add_dataset(dataset)
        queries = [ts.values for ts in dataset.series[:3]]
        serial = [
            (r.ids, r.distances)
            for r in (workspace.query(q, 3, mode="exact") for q in queries)
        ]
        errors = []
        done = threading.Event()

        def reader():
            while not done.is_set():
                for qi, values in enumerate(queries):
                    try:
                        outcome = workspace.query(values, 3, mode="exact")
                        assert (outcome.ids, outcome.distances) == serial[qi]
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)
                        return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        workspace.build_index()
        done.set()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        assert workspace.has_index


class TestMicroBatcher:
    def test_concurrent_submissions_share_batches(self):
        """Requests arriving while a batch is in flight coalesce behind
        the next leader (group-commit batching)."""
        seen = []
        first_entered = threading.Event()
        release_first = threading.Event()

        def run_batch(batch):
            if any(request.payload == 0 for request in batch):
                # Hold the first batch in flight until the companions
                # have arrived, so they must share the next batch.
                first_entered.set()
                release_first.wait(timeout=5.0)
            seen.append(len(batch))
            for request in batch:
                request.resolve(request.payload * 2)

        batcher = MicroBatcher(run_batch, window_seconds=0.05, max_batch=16)
        results = [None] * 6

        def worker(slot):
            results[slot] = batcher.submit(slot)

        first = threading.Thread(target=worker, args=(0,))
        first.start()
        assert first_entered.wait(timeout=5.0)
        rest = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(1, 6)
        ]
        for thread in rest:
            thread.start()
        while batcher.requests_batched + len(batcher._queue) < 6:
            time.sleep(0.001)
        release_first.set()
        first.join()
        for thread in rest:
            thread.join()
        assert results == [0, 2, 4, 6, 8, 10]
        assert sum(seen) == 6
        assert max(seen) >= 2

    def test_solo_submission_does_not_wait_out_the_window(self):
        """A lone request must close the window immediately instead of
        sleeping the full window_seconds (the PR 6 latency-floor fix)."""

        def run_batch(batch):
            for request in batch:
                request.resolve(request.payload)

        batcher = MicroBatcher(run_batch, window_seconds=0.5, max_batch=16)
        start = time.monotonic()
        assert batcher.submit("solo") == "solo"
        elapsed = time.monotonic() - start
        assert elapsed < 0.25, (
            f"solo query took {elapsed:.3f}s against a 0.5s window; the "
            f"leader slept out the batching window with no companions"
        )
        assert batcher.batches_executed == 1

    def test_window_still_gathers_companions_when_present(self):
        """With a companion already queued, the leader keeps the window
        open and both requests land in one batch."""
        seen = []

        def run_batch(batch):
            seen.append(len(batch))
            for request in batch:
                request.resolve(request.payload)

        batcher = MicroBatcher(run_batch, window_seconds=0.2, max_batch=16)
        follower = QueryRequest("follower")
        batcher._queue.append(follower)
        assert batcher.submit("leader") == "leader"
        assert follower.result == "follower"
        assert seen == [2]

    def test_runner_errors_propagate_to_every_caller(self):
        def run_batch(batch):
            raise RuntimeError("boom")

        batcher = MicroBatcher(run_batch, window_seconds=0.0, max_batch=4)
        with pytest.raises(RuntimeError, match="boom"):
            batcher.submit(1)

    def test_unresolved_requests_fail_instead_of_hanging(self):
        def run_batch(batch):
            pass  # resolves nothing

        batcher = MicroBatcher(run_batch, window_seconds=0.0, max_batch=4)
        with pytest.raises(RuntimeError, match="did not resolve"):
            batcher.submit(1)
