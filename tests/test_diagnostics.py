"""Tests for the diagnostics stack: structured event log, flight
recorder, slow-query capture, sampling profiler, and workspace doctor."""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.exceptions import WorkspaceError
from repro.service import (
    IndexConfig,
    ServingConfig,
    Workspace,
    WorkspaceConfig,
    run_doctor,
)
from repro.service.batching import MicroBatcher
from repro.telemetry import (
    NULL_EVENT_LOG,
    EventLog,
    SamplingProfiler,
    json_safe,
)


def _series(phase: float, length: int = 96) -> np.ndarray:
    return np.sin(np.linspace(0.0, 4.0 * np.pi, length) - phase)


def _small_config(**serving_kwargs) -> WorkspaceConfig:
    """A workspace configuration sized for fast tests."""
    return WorkspaceConfig(
        index=IndexConfig(
            num_codewords=16, num_shards=2, candidate_budget=8,
            pq_subquantizers=4, max_delta_shards=4,
        ),
        serving=ServingConfig(**serving_kwargs),
        default_k=3,
    )


def _populate(workspace: Workspace, count: int = 8) -> list:
    return [
        workspace.add(_series(0.25 * index), identifier=f"s{index:02d}")
        for index in range(count)
    ]


class TestJsonSafe:
    def test_scalars_pass_through(self):
        assert json_safe(3) == 3
        assert json_safe(0.5) == 0.5
        assert json_safe(True) is True
        assert json_safe(None) is None
        assert json_safe("x") == "x"

    def test_numpy_scalars_unwrap(self):
        assert json_safe(np.int64(7)) == 7
        assert json_safe(np.float64(1.5)) == 1.5
        assert isinstance(json_safe(np.float32(2.0)), float)

    def test_containers_sanitised_recursively(self):
        value = {"a": np.int32(1), "b": [np.float64(2.0), {"c": (3, 4)}]}
        assert json_safe(value) == {"a": 1, "b": [2.0, {"c": [3, 4]}]}

    def test_unknown_objects_stringify(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert json_safe(Opaque()) == "<opaque>"
        json.dumps(json_safe({"x": Opaque(), "y": {1, 2}}))


class TestEventLog:
    def test_ring_is_bounded_but_total_keeps_counting(self):
        log = EventLog(capacity=4)
        for index in range(10):
            log.emit("test", f"event-{index}")
        assert len(log) == 4
        assert log.events_total == 10
        names = [event.name for event in log.snapshot()]
        assert names == ["event-6", "event-7", "event-8", "event-9"]

    def test_snapshot_filters_component_level_and_limit(self):
        log = EventLog(capacity=16)
        log.emit("index", "compaction")
        log.emit("workspace", "saved")
        log.emit("index", "marked_stale", level="warn")
        log.emit("index", "oops", level="error")

        assert [e.name for e in log.snapshot(component="index")] == [
            "compaction", "marked_stale", "oops"
        ]
        # level is a floor: warn keeps warn and error.
        assert [e.name for e in log.snapshot(level="warn")] == [
            "marked_stale", "oops"
        ]
        # limit keeps the most recent N after filtering.
        assert [e.name for e in log.snapshot(component="index", limit=1)] == [
            "oops"
        ]

    def test_fields_are_json_safe_at_emit_time(self):
        log = EventLog(capacity=4)
        log.emit("test", "typed", count=np.int64(3), values=(1, 2))
        event = log.snapshot()[-1]
        assert event.fields == {"count": 3, "values": [1, 2]}
        json.dumps(event.to_dict())

    def test_unknown_level_coerces_to_info(self):
        log = EventLog(capacity=4)
        log.emit("test", "weird", level="fatal")
        assert log.snapshot()[-1].level == "info"

    def test_file_sink_writes_parseable_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(capacity=4, path=str(path))
        for index in range(6):
            log.emit("test", f"event-{index}", index=index)
        lines = path.read_text().splitlines()
        assert len(lines) == 6
        records = [json.loads(line) for line in lines]
        assert records[0]["name"] == "event-0"
        assert records[-1]["fields"]["index"] == 5

    def test_file_sink_rotates_once_over_max_bytes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(capacity=4, path=str(path), max_bytes=1024)
        payload = "x" * 64
        for index in range(40):
            log.emit("test", "fat", payload=payload, index=index)
        rotated = tmp_path / "events.jsonl.1"
        assert rotated.exists()
        # Both generations still parse line by line.
        for target in (path, rotated):
            for line in target.read_text().splitlines():
                json.loads(line)
        assert log.dropped_writes == 0

    def test_unwritable_sink_counts_drops_instead_of_raising(self, tmp_path):
        log = EventLog(capacity=4, path=str(tmp_path / "nope" / "events.jsonl"))
        log.emit("test", "lost")
        assert log.dropped_writes == 1
        assert len(log) == 1  # the ring still recorded it

    def test_concurrent_emission_is_lossless(self):
        log = EventLog(capacity=4096)
        def worker(slot):
            for index in range(100):
                log.emit("thread", "tick", slot=slot, index=index)
        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert log.events_total == 800
        assert len(log) == 800

    def test_null_event_log_is_inert(self):
        NULL_EVENT_LOG.emit("test", "ignored", level="error")
        assert NULL_EVENT_LOG.snapshot() == []
        assert NULL_EVENT_LOG.to_dicts() == []
        assert len(NULL_EVENT_LOG) == 0
        assert not NULL_EVENT_LOG.enabled


class TestWorkspaceEvents:
    def test_state_transitions_emit_events(self):
        workspace = Workspace(_small_config())
        identifiers = _populate(workspace, 6)
        workspace.build_index()
        workspace.query(_series(0.1))
        workspace.remove(identifiers[0])
        workspace.query(_series(0.1))

        names = {
            (event["component"], event["name"])
            for event in workspace.recent_events()
        }
        assert ("workspace", "series_added") in names
        assert ("workspace", "series_removed") in names
        assert ("index", "rebuilt") in names
        assert ("index", "tombstone") in names
        assert ("snapshot", "rebuilt") in names
        # Plain queries stay off the event log: nothing but state
        # transitions and slow queries may emit.
        assert not any(name == "slow_query" for _, name in names)

    def test_incremental_add_emits_delta_event(self):
        workspace = Workspace(_small_config())
        _populate(workspace, 6)
        workspace.build_index()
        workspace.add(_series(9.0), identifier="late")
        names = [event["name"] for event in workspace.recent_events()]
        assert "delta_appended" in names

    def test_telemetry_off_means_null_log(self):
        workspace = Workspace(_small_config(telemetry=False))
        _populate(workspace, 3)
        assert workspace.events is NULL_EVENT_LOG
        assert workspace.recent_events() == []

    def test_path_backed_workspace_persists_events(self, tmp_path):
        target = str(tmp_path / "ws")
        workspace = Workspace.create(target, _small_config())
        _populate(workspace, 4)
        workspace.build_index()
        workspace.save()
        workspace.close()

        events_file = tmp_path / "ws" / "events.jsonl"
        assert events_file.exists()
        records = [
            json.loads(line) for line in events_file.read_text().splitlines()
        ]
        names = [record["name"] for record in records]
        assert "created" in names
        assert "saved" in names
        assert "closed" in names

        with Workspace.open(target) as reopened:
            assert any(
                event["name"] == "opened"
                for event in reopened.recent_events()
            )


class TestFlightRecorder:
    def test_record_round_trips_through_json(self):
        workspace = Workspace(_small_config())
        _populate(workspace, 4)
        workspace.build_index()
        workspace.query(_series(0.3))
        record = workspace.dump_flight_record(note="checkpoint")
        assert json.loads(json.dumps(record)) == record
        assert record["format"] == "repro-flight-record"
        assert record["note"] == "checkpoint"
        assert record["workspace"]["num_series"] == 4
        assert record["config"]["serving"]["telemetry"] is True
        assert record["events"], "state transitions must be in the record"

    def test_workspace_error_carries_flight_record(self):
        workspace = Workspace(_small_config())
        with pytest.raises(WorkspaceError) as excinfo:
            workspace.query(_series(0.0))
        record = excinfo.value.flight_record
        assert record is not None
        assert record["format"] == "repro-flight-record"
        json.dumps(record)
        # The failure itself is the last error-level event.
        errors = [
            event for event in record["events"]
            if event["level"] == "error"
        ]
        assert errors, record["events"]

    def test_record_works_on_closed_workspace(self):
        workspace = Workspace(_small_config())
        _populate(workspace, 3)
        workspace.close()
        record = workspace.dump_flight_record()
        assert record["workspace"]["closed"] is True
        json.dumps(record)


class TestSlowQueryCapture:
    def test_threshold_zero_captures_every_query_with_full_trace(self):
        workspace = Workspace(_small_config(slow_query_threshold=0.0))
        _populate(workspace, 5)
        for phase in (0.1, 0.2, 0.3):
            workspace.query(_series(phase))
        records = workspace.slow_queries()
        assert len(records) == 3
        for record in records:
            assert record["elapsed_seconds"] >= 0.0
            assert record["trace"] is not None
            assert record["trace"]["stages"], record["trace"]
            assert record["hits"]
            json.dumps(record)

    def test_huge_threshold_captures_nothing(self):
        workspace = Workspace(_small_config(slow_query_threshold=3600.0))
        _populate(workspace, 4)
        workspace.query(_series(0.1))
        assert workspace.slow_queries() == []

    def test_ring_is_bounded_by_slow_query_ring(self):
        workspace = Workspace(
            _small_config(slow_query_threshold=0.0, slow_query_ring=2)
        )
        _populate(workspace, 4)
        for phase in (0.1, 0.2, 0.3, 0.4):
            workspace.query(_series(phase))
        assert len(workspace.slow_queries()) == 2

    def test_capture_covers_indexed_and_batched_paths(self):
        workspace = Workspace(
            _small_config(slow_query_threshold=0.0, micro_batch=True)
        )
        _populate(workspace, 5)
        workspace.build_index()
        workspace.query(_series(0.1), mode="indexed")
        workspace.query(_series(0.2), mode="exact")
        modes = {record["mode"] for record in workspace.slow_queries()}
        assert modes == {"indexed", "exact"}

    def test_capture_without_telemetry_keeps_record_minus_trace(self):
        workspace = Workspace(
            _small_config(slow_query_threshold=0.0, telemetry=False)
        )
        _populate(workspace, 4)
        workspace.query(_series(0.1))
        records = workspace.slow_queries()
        assert len(records) == 1
        assert records[0]["trace"] is None
        assert records[0]["elapsed_seconds"] >= 0.0

    def test_path_backed_capture_appends_jsonl(self, tmp_path):
        target = str(tmp_path / "ws")
        workspace = Workspace.create(
            target, _small_config(slow_query_threshold=0.0)
        )
        _populate(workspace, 4)
        workspace.query(_series(0.1))
        workspace.query(_series(0.2))
        workspace.close()
        log = tmp_path / "ws" / "slow_queries.jsonl"
        records = [json.loads(line) for line in log.read_text().splitlines()]
        assert len(records) == 2
        for record in records:
            assert record["trace"]["stages"]


class TestSamplingProfiler:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_seconds=0.0)

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            SamplingProfiler().stop()

    def test_stop_is_idempotent(self):
        profiler = SamplingProfiler(interval_seconds=0.001).start()
        time.sleep(0.02)
        first = profiler.stop()
        assert profiler.stop() is first

    def test_collapsed_output_and_self_table(self):
        def spin(deadline):
            total = 0.0
            while time.perf_counter() < deadline:
                total += sum(idx * idx for idx in range(500))
            return total

        with SamplingProfiler(interval_seconds=0.001) as profiler:
            spin(time.perf_counter() + 0.15)
        report = profiler.stop()
        assert report.num_samples > 0
        collapsed = report.collapsed()
        assert "spin" in collapsed
        for line in collapsed.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0
            assert stack
        assert report.self_seconds()
        assert json.loads(json.dumps(report.to_dict()))

    def test_thread_filter_profiles_only_the_chosen_thread(self):
        stop = threading.Event()

        def busy():
            while not stop.is_set():
                sum(idx for idx in range(2000))

        worker = threading.Thread(target=busy, name="busy-worker")
        worker.start()
        try:
            profiler = SamplingProfiler(
                interval_seconds=0.001, threads=[worker.ident]
            ).start()
            time.sleep(0.1)
            report = profiler.stop()
        finally:
            stop.set()
            worker.join()
        assert report.num_samples > 0
        assert report.fraction_matching("busy") == 1.0

    def test_exact_query_attribution_lands_in_engine_frames(self):
        # The acceptance probe: sampling a CPU-bound exact-query loop
        # must attribute >= 80% of samples to the engine / DP / feature
        # pipeline, and the sampler itself must stay under 10% of the
        # window (the documented overhead bound).
        workspace = Workspace(_small_config())
        for index in range(10):
            workspace.add(
                _series(0.2 * index, length=256), identifier=f"p{index:02d}"
            )
        profiler = SamplingProfiler(
            interval_seconds=0.002, threads=[threading.get_ident()]
        ).start()
        deadline = time.perf_counter() + 1.0
        while time.perf_counter() < deadline:
            workspace.query(_series(0.5, length=256), mode="exact")
        report = profiler.stop()
        assert report.num_samples >= 20, "window too short to profile"
        attribution = report.fraction_matching(
            "repro/engine", "repro/dtw", "repro/core"
        )
        assert attribution >= 0.8, report.collapsed()
        assert report.sampler_overhead < 0.10


class TestMicroBatcherFailureEvents:
    def test_worker_failure_emits_batcher_event(self):
        events = EventLog(capacity=16)

        def run_batch(batch):
            raise RuntimeError("engine exploded")

        batcher = MicroBatcher(run_batch, events=events)
        with pytest.raises(RuntimeError, match="engine exploded"):
            batcher.submit("payload")
        failures = events.snapshot(component="batcher")
        assert len(failures) == 1
        event = failures[0]
        assert event.name == "request_failed"
        assert event.level == "error"
        assert event.fields["failed"] == 1
        assert event.fields["error"] == "RuntimeError"
        assert "engine exploded" in event.fields["message"]

    def test_unresolved_request_counts_as_failure_event(self):
        events = EventLog(capacity=16)

        def run_batch(batch):
            pass  # resolves nothing

        batcher = MicroBatcher(run_batch, events=events)
        with pytest.raises(RuntimeError, match="did not resolve"):
            batcher.submit("payload")
        assert [e.name for e in events.snapshot(component="batcher")] == [
            "request_failed"
        ]

    def test_successful_batches_emit_nothing(self):
        events = EventLog(capacity=16)
        batcher = MicroBatcher(
            lambda batch: [r.resolve(r.payload) for r in batch],
            events=events,
        )
        assert batcher.submit("ok") == "ok"
        assert events.snapshot(component="batcher") == []

    def test_no_event_log_still_works(self):
        batcher = MicroBatcher(lambda batch: (_ for _ in ()).throw(
            ValueError("boom")
        ))
        with pytest.raises(ValueError):
            batcher.submit("payload")


class TestDoctor:
    def _churned_workspace(self, tmp_path) -> Workspace:
        """A path-backed workspace that lived: adds, removes, index
        rebuild, incremental deltas, compaction, queries, save."""
        workspace = Workspace.create(
            str(tmp_path / "ws"), _small_config(slow_query_threshold=0.0)
        )
        identifiers = _populate(workspace, 8)
        workspace.build_index()
        for identifier in identifiers[:2]:
            workspace.remove(identifier)
        for index in range(3):
            workspace.add(_series(5.0 + index), identifier=f"late{index}")
        workspace.query(_series(0.4))
        workspace.compact_index()
        workspace.query(_series(0.6), mode="indexed")
        workspace.save()
        return workspace

    def test_churned_workspace_is_all_ok(self, tmp_path):
        workspace = self._churned_workspace(tmp_path)
        report = run_doctor(workspace)
        statuses = {check.name: check.status for check in report.checks}
        assert report.healthy, statuses
        bad = {
            name: status for name, status in statuses.items()
            if status != "OK"
        }
        assert not bad, bad
        workspace.close()

    def test_report_round_trips_and_rows_match(self, tmp_path):
        workspace = self._churned_workspace(tmp_path)
        report = run_doctor(workspace, probe=False)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["healthy"] is True
        assert len(payload["checks"]) == len(report.rows())
        names = [check["name"] for check in payload["checks"]]
        assert "manifest" in names
        assert "index_accounting" in names
        # probe=False must skip the active probes.
        assert "query_probe" not in names
        workspace.close()

    def test_detects_index_slot_corruption(self, tmp_path):
        workspace = self._churned_workspace(tmp_path)
        workspace._index.slots.append("phantom-slot")
        report = run_doctor(workspace, probe=False)
        assert not report.healthy
        failing = {
            check.name for check in report.checks if check.status == "FAIL"
        }
        assert "index_accounting" in failing
        workspace.close()

    def test_detects_corrupt_event_log_file(self, tmp_path):
        workspace = self._churned_workspace(tmp_path)
        with open(workspace.events.path, "a", encoding="utf-8") as handle:
            handle.write("{not json\n")
        report = run_doctor(workspace, probe=False)
        failing = {
            check.name for check in report.checks if check.status == "FAIL"
        }
        assert "event_log" in failing
        workspace.close()

    def test_stale_index_is_warn_not_fail(self):
        config = WorkspaceConfig(
            index=IndexConfig(
                num_codewords=16, num_shards=2, candidate_budget=8,
                pq_subquantizers=4, incremental=False,
            ),
            default_k=3,
        )
        workspace = Workspace(config)
        _populate(workspace, 5)
        workspace.build_index()
        workspace.add(_series(9.0), identifier="staler")
        report = run_doctor(workspace, probe=False)
        statuses = {check.name: check.status for check in report.checks}
        assert statuses["index_accounting"] == "WARN"
        assert report.healthy

    def test_in_memory_empty_workspace_is_healthy(self):
        report = run_doctor(Workspace(_small_config()))
        assert report.healthy

    def test_check_crash_is_contained_as_fail(self, tmp_path):
        workspace = self._churned_workspace(tmp_path)
        workspace._index.index = None  # break an attribute checks rely on
        report = run_doctor(workspace, probe=False)
        assert not report.healthy
        crashed = [
            check for check in report.checks
            if check.status == "FAIL" and "check crashed" in check.detail
        ]
        assert crashed
        workspace.close()
