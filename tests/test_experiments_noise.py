"""Tests for the noise-robustness extension experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.noise_robustness import run_noise_robustness
from repro.experiments.runner import AlgorithmSpec

SMALL_ALGORITHMS = [
    AlgorithmSpec("(fc,fw) 10%", "fc,fw", 0.10),
    AlgorithmSpec("(ac,aw)", "ac,aw", 0.10),
]


@pytest.fixture(scope="module")
def result():
    return run_noise_robustness(
        dataset_kind="trace",
        num_series=6,
        noise_levels=(0.0, 0.05),
        algorithms=SMALL_ALGORITHMS,
        k=2,
        length=100,
    )


class TestNoiseRobustness:
    def test_rows_cover_all_levels_and_algorithms(self, result):
        assert len(result.rows) == 2 * len(SMALL_ALGORITHMS)
        levels = {row[0] for row in result.rows}
        assert levels == {0.0, 0.05}

    def test_metrics_are_finite_and_bounded(self, result):
        for row in result.rows:
            error, accuracy, cell_gain = row[2], row[3], row[4]
            assert np.isfinite(error) and error >= 0.0
            assert 0.0 <= accuracy <= 1.0
            assert 0.0 < cell_gain < 1.0

    def test_adaptive_constraint_stays_usable_under_noise(self, result):
        """The adaptive algorithm must not collapse below the fixed band
        when noise is added (the robustness claim of Section 3.1.2)."""
        by_key = {(row[0], row[1]): row for row in result.rows}
        noisy_fixed_error = by_key[(0.05, "(fc,fw) 10%")][2]
        noisy_adaptive_error = by_key[(0.05, "(ac,aw)")][2]
        assert noisy_adaptive_error <= noisy_fixed_error * 1.5

    def test_metadata_records_sweep(self, result):
        assert result.metadata["noise_levels"] == [0.0, 0.05]
        assert result.metadata["dataset_kind"] == "trace"

    def test_text_rendering(self, result):
        text = result.to_text()
        assert "Noise robustness" in text
        assert "(ac,aw)" in text
