"""Tests for keypoint detection on the DoG scale space."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ScaleSpaceConfig
from repro.core.keypoints import (
    Keypoint,
    _is_relaxed_extremum,
    count_by_scale_class,
    detect_keypoints,
)
from repro.core.scale_space import build_scale_space


def bump_series(length: int = 200, center: float = 0.5, width: float = 0.02):
    t = np.linspace(0, 1, length)
    return np.exp(-((t - center) ** 2) / width ** 2)


class TestRelaxedExtremum:
    def test_strict_maximum_accepted(self):
        assert _is_relaxed_extremum(1.0, [0.5, 0.4, 0.3], epsilon=0.0)

    def test_near_tie_accepted_with_epsilon(self):
        # 0.97 >= (1 - 0.05) * 1.0, so it survives with epsilon = 0.05.
        assert _is_relaxed_extremum(0.97, [1.0], epsilon=0.05)

    def test_near_tie_rejected_without_epsilon(self):
        assert not _is_relaxed_extremum(0.97, [1.0], epsilon=0.0)

    def test_zero_value_rejected(self):
        assert not _is_relaxed_extremum(0.0, [0.0, 0.0], epsilon=0.5)

    def test_negative_extrema_use_magnitude(self):
        assert _is_relaxed_extremum(-1.0, [-0.5, 0.2], epsilon=0.0)


class TestDetectKeypoints:
    def test_bump_produces_keypoint_near_its_center(self):
        series = bump_series(center=0.5)
        space = build_scale_space(series, ScaleSpaceConfig(num_octaves=2))
        keypoints = detect_keypoints(space)
        assert keypoints, "expected at least one keypoint on a clear bump"
        positions = np.array([kp.position for kp in keypoints])
        assert np.min(np.abs(positions - 100)) < 15

    def test_constant_series_has_no_keypoints(self):
        space = build_scale_space(np.full(128, 2.0))
        assert detect_keypoints(space) == []

    def test_keypoints_sorted_by_position(self):
        series = bump_series() + bump_series(center=0.2, width=0.01)
        space = build_scale_space(series, ScaleSpaceConfig(num_octaves=2))
        keypoints = detect_keypoints(space)
        positions = [kp.position for kp in keypoints]
        assert positions == sorted(positions)

    def test_scope_radius_is_three_sigma_by_default(self):
        series = bump_series()
        space = build_scale_space(series)
        for kp in detect_keypoints(space):
            assert kp.scope_radius == pytest.approx(3.0 * kp.sigma)

    def test_scope_radius_follows_configuration(self):
        series = bump_series()
        config = ScaleSpaceConfig(scope_radius_sigmas=5.0)
        space = build_scale_space(series, config)
        for kp in detect_keypoints(space):
            assert kp.scope_radius == pytest.approx(5.0 * kp.sigma)

    def test_positions_lie_inside_the_series(self):
        series = bump_series() - 0.5 * bump_series(center=0.8, width=0.05)
        space = build_scale_space(series, ScaleSpaceConfig(num_octaves=3))
        for kp in detect_keypoints(space):
            assert 0 <= kp.position < series.size

    def test_larger_epsilon_keeps_more_keypoints(self):
        series = bump_series() + 0.3 * np.sin(np.linspace(0, 40, 200))
        strict = ScaleSpaceConfig(epsilon=0.0)
        relaxed = ScaleSpaceConfig(epsilon=0.3)
        n_strict = len(detect_keypoints(build_scale_space(series, strict)))
        n_relaxed = len(detect_keypoints(build_scale_space(series, relaxed)))
        assert n_relaxed >= n_strict

    def test_contrast_threshold_filters_small_responses(self):
        rng = np.random.default_rng(0)
        series = bump_series() + rng.normal(0, 0.001, 200)
        low = ScaleSpaceConfig(contrast_threshold=0.0)
        high = ScaleSpaceConfig(contrast_threshold=0.3)
        n_low = len(detect_keypoints(build_scale_space(series, low)))
        n_high = len(detect_keypoints(build_scale_space(series, high)))
        assert n_high <= n_low

    def test_scale_classes_assigned(self):
        series = bump_series(width=0.15) + bump_series(center=0.2, width=0.01)
        space = build_scale_space(series, ScaleSpaceConfig(num_octaves=3))
        keypoints = detect_keypoints(space)
        classes = {kp.scale_class for kp in keypoints}
        assert classes <= {"fine", "medium", "rough"}
        assert "fine" in classes

    def test_scope_properties_consistent(self):
        kp = Keypoint(
            position=10.0, sigma=2.0, scope_radius=6.0, octave=0, level=0,
            dog_value=0.5, amplitude=1.0, scale_class="fine",
        )
        assert kp.scope_start == pytest.approx(4.0)
        assert kp.scope_end == pytest.approx(16.0)
        assert kp.scope_length == pytest.approx(12.0)


class TestCountByScaleClass:
    def test_counts_sum_to_total(self):
        series = bump_series(width=0.1) + bump_series(center=0.25, width=0.015)
        space = build_scale_space(series, ScaleSpaceConfig(num_octaves=3))
        keypoints = detect_keypoints(space)
        fine, medium, rough = count_by_scale_class(keypoints)
        assert fine + medium + rough == len(keypoints)

    def test_empty_input_gives_zero_counts(self):
        assert count_by_scale_class([]) == (0, 0, 0)
