"""Tests for the static-analysis framework (``repro.analysis``).

Four layers of coverage:

* fixture corpus — every checker has annotated true positives
  (``# expect[ID]`` comments assert the exact finding set) and true
  negatives (files that must come back clean);
* framework mechanics — suppression comments, baseline round trips,
  stale-baseline detection, selector resolution, parse-error handling;
* zero false positives — the real ``src``/``tests``/``benchmarks``
  tree must lint clean, which is also the merge gate CI enforces;
* acceptance — injecting an unguarded write into the real
  ``Workspace`` class or a post-``__init__`` ``_PreparedSegment``
  mutation into the real engine module must produce findings.
"""

from __future__ import annotations

import json
import re
from collections import Counter
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    CHECKER_SET_VERSION,
    PARSE_ERROR,
    all_checkers,
    apply_baseline,
    check_file,
    check_paths,
    check_source,
    doctor_counterparts,
    load_baseline,
    resolve_selection,
    write_baseline,
)
from repro.cli import main
from repro.exceptions import AnalysisError

REPO_ROOT = Path(repro.__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"

_EXPECT = re.compile(r"expect\[([A-Z0-9]+)\]")

#: Fixture files checked by exact ``# expect[...]`` matching.  The
#: broken-parse fixture is handled separately (its line number varies
#: by Python version).
ANNOTATED_FIXTURES = sorted(
    path for path in FIXTURES.rglob("*.py") if path.name != "broken.py")


def _expected(path: Path) -> Counter:
    expected: Counter = Counter()
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        for match in _EXPECT.finditer(line):
            expected[(match.group(1), lineno)] += 1
    return expected


class TestFixtureCorpus:
    @pytest.mark.parametrize(
        "fixture",
        ANNOTATED_FIXTURES,
        ids=[str(p.relative_to(FIXTURES)) for p in ANNOTATED_FIXTURES])
    def test_exact_findings(self, fixture):
        found = Counter(
            (f.checker, f.line) for f in check_file(fixture))
        assert found == _expected(fixture), (
            f"{fixture.relative_to(FIXTURES)}: findings do not match "
            f"the # expect[...] annotations")

    def test_every_checker_has_a_fixture_positive(self):
        covered = set()
        for fixture in ANNOTATED_FIXTURES:
            covered |= {checker_id for checker_id, _ in _expected(fixture)}
        registered = {entry.id for entry in all_checkers()}
        assert registered <= covered, (
            f"checkers without a fixture true positive: "
            f"{sorted(registered - covered)}")

    def test_negative_fixtures_are_clean(self):
        for name in ("repro/service/locking_negative.py",
                     "repro/engine/immutable_negative.py",
                     "plain/conventions_negative.py"):
            findings = check_file(FIXTURES / name)
            assert findings == [], (name, [f.render() for f in findings])

    def test_parse_error_fixture(self):
        findings = check_file(FIXTURES / "plain" / "broken.py")
        assert len(findings) == 1
        assert findings[0].checker == PARSE_ERROR
        assert "does not parse" in findings[0].message


class TestSuppressions:
    SOURCE = (
        "import time\n"
        "a = time.time()  # repro: noqa[RPR201]\n"
        "b = time.time()  # repro: noqa\n"
        "c = time.time()  # repro: noqa[RPR206]\n"
        "d = time.time()\n"
    )

    def test_matching_and_blanket_suppressions(self):
        findings = check_source(self.SOURCE, "plain/example.py")
        assert [(f.checker, f.line) for f in findings] == [
            ("RPR201", 4),  # suppression names a different checker
            ("RPR201", 5),
        ]

    def test_hash_inside_string_is_not_a_suppression(self):
        source = (
            "import time\n"
            "label = '# repro: noqa[RPR201]'\n"
            "t = time.time()\n"
        )
        findings = check_source(source, "plain/example.py")
        assert [(f.checker, f.line) for f in findings] == [("RPR201", 3)]


class TestBaseline:
    def _findings(self):
        return check_source(
            "import time\nt = time.time()\nu = time.time()\n",
            "plain/example.py")

    def test_round_trip_masks_known_findings(self, tmp_path):
        findings = self._findings()
        assert len(findings) == 2
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)
        result = apply_baseline(findings, load_baseline(baseline_path))
        assert result.new == ()
        assert result.matched == 2
        assert result.unused == ()
        assert not result.stale

    def test_multiset_matching_gates_duplicates(self, tmp_path):
        findings = self._findings()
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings[:1])
        result = apply_baseline(findings, load_baseline(baseline_path))
        # One occurrence is absorbed; the duplicate still gates.
        assert result.matched == 1
        assert len(result.new) == 1

    def test_unused_entries_are_reported(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, self._findings())
        result = apply_baseline([], load_baseline(baseline_path))
        assert result.matched == 0
        assert len(result.unused) == 1  # keys are line-insensitive
        assert result.unused[0][0] == "RPR201"

    def test_stale_checker_set_detected(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        document = {
            "format": "repro-analysis-baseline",
            "checker_set": CHECKER_SET_VERSION + 1,
            "findings": [],
        }
        baseline_path.write_text(json.dumps(document))
        baseline = load_baseline(baseline_path)
        assert baseline.stale
        assert apply_baseline([], baseline).stale

    def test_malformed_baseline_raises(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text("{\"format\": \"something-else\"}")
        with pytest.raises(AnalysisError):
            load_baseline(baseline_path)

    def test_shipped_baseline_is_empty(self):
        baseline = load_baseline(REPO_ROOT / "analysis-baseline.json")
        assert not baseline.stale
        assert baseline.entries == Counter()


class TestSelection:
    def test_prefix_selects_a_family(self):
        selected = resolve_selection(["RPR1"], None)
        assert [c.id for c in selected] == ["RPR101", "RPR102", "RPR103"]

    def test_ignore_removes_checkers(self):
        remaining = {c.id for c in resolve_selection(None, ["RPR2"])}
        assert remaining == {"RPR101", "RPR102", "RPR103"}

    def test_unknown_selector_raises(self):
        with pytest.raises(AnalysisError):
            resolve_selection(["RPR9"], None)

    def test_scope_keeps_service_checkers_out_of_plain_code(self):
        source = (
            "class C:\n"
            "    def fail(self):\n"
            "        raise WorkspaceError('x')\n"
        )
        assert check_source(source, "repro/service/x.py") != []
        assert check_source(source, "repro/dtw/x.py") == []


class TestRealTree:
    def test_zero_false_positives_over_the_repository(self):
        findings = check_paths([
            str(REPO_ROOT / "src"),
            str(REPO_ROOT / "tests"),
            str(REPO_ROOT / "benchmarks"),
        ])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_injected_unguarded_workspace_write_is_caught(self):
        path = REPO_ROOT / "src" / "repro" / "service" / "workspace.py"
        source = path.read_text(encoding="utf-8")
        anchor = "    def close(self) -> None:"
        assert anchor in source
        injected = source.replace(anchor, (
            "    def _racy_publish(self, snapshot):\n"
            "        self._serving = snapshot\n"
            "\n" + anchor), 1)
        findings = check_source(injected, "src/repro/service/workspace.py")
        assert any(
            f.checker == "RPR101" and "_serving" in f.message
            for f in findings), [f.render() for f in findings]

    def test_injected_prepared_segment_mutation_is_caught(self):
        path = REPO_ROOT / "src" / "repro" / "engine" / "engine.py"
        source = path.read_text(encoding="utf-8")
        injected = source + (
            "\n\ndef _patch_segment(segment_size, matrix):\n"
            "    segment = _PreparedSegment(segment_size, matrix,\n"
            "                               None, None)\n"
            "    segment.matrix = matrix\n"
            "    return segment\n")
        findings = check_source(injected, "src/repro/engine/engine.py")
        assert any(
            f.checker == "RPR102" and "_PreparedSegment" in f.message
            for f in findings), [f.render() for f in findings]


class TestDoctorCrossLink:
    #: Check names run_doctor registers (see service/doctor.py).
    DOCTOR_CHECKS = {
        "manifest", "config", "store", "index_accounting",
        "index_format", "pq_codes", "caches", "event_log",
        "slow_query_log", "serving_snapshot", "query_probe",
        "telemetry_overhead",
    }

    def test_counterparts_name_real_doctor_checks(self):
        for name in doctor_counterparts():
            assert name in self.DOCTOR_CHECKS, name

    def test_lock_family_maps_to_serving_snapshot(self):
        counterparts = doctor_counterparts()
        assert set(counterparts["serving_snapshot"]) == {
            "RPR101", "RPR102", "RPR103"}

    def test_invariants_doc_catalogues_every_checker(self):
        text = (REPO_ROOT / "docs" / "INVARIANTS.md").read_text(
            encoding="utf-8")
        for entry in all_checkers():
            assert entry.id in text, (
                f"{entry.id} missing from docs/INVARIANTS.md")


class TestLintCli:
    def test_clean_tree_exits_zero(self, capsys):
        code = main(["lint",
                     str(REPO_ROOT / "src"),
                     str(REPO_ROOT / "benchmarks")])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one_with_text_report(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        code = main(["lint", str(bad)])
        out = capsys.readouterr().out
        assert code == 1
        assert "RPR201" in out

    def test_json_format_reports_checker_set(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        code = main(["lint", str(bad), "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert code == 1
        assert document["checker_set"] == CHECKER_SET_VERSION
        assert document["new"] == 1
        assert document["findings"][0]["checker"] == "RPR201"

    def test_baseline_masks_and_write_baseline(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(bad), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", str(bad),
                     "--baseline", str(baseline)]) == 0
        assert "matched the baseline" in capsys.readouterr().out

    def test_select_and_ignore(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main(["lint", str(bad), "--ignore", "RPR201"]) == 0
        capsys.readouterr()
        assert main(["lint", str(bad), "--select", "RPR206"]) == 0

    def test_missing_path_is_an_error(self, capsys):
        assert main(["lint", "definitely/not/here"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_doctor_map_lists_counterparts(self, capsys):
        assert main(["lint", "--doctor-map"]) == 0
        out = capsys.readouterr().out
        assert "serving_snapshot" in out
        assert "RPR101" in out

    def test_version_reports_checker_set(self, capsys):
        assert main(["version"]) == 0
        assert f"analysis checker set v{CHECKER_SET_VERSION}" \
            in capsys.readouterr().out
