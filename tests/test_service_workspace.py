"""Tests for the Workspace facade: equivalence to the direct subsystem
calls, persistence round trips, mode resolution and lifecycle errors."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.datasets.synthetic import make_gun_like
from repro.engine import DistanceEngine
from repro.exceptions import (
    DatasetError,
    ValidationError,
    WorkspaceError,
)
from repro.indexing import CodebookConfig, IndexedSearcher
from repro.service import (
    EngineConfig,
    IndexConfig,
    Workspace,
    WorkspaceConfig,
)


@pytest.fixture(scope="module")
def dataset():
    return make_gun_like(num_series=12, seed=17)


@pytest.fixture(scope="module")
def config():
    return WorkspaceConfig(
        engine=EngineConfig(constraint="fc,fw"),
        index=IndexConfig(num_codewords=24, num_shards=2, candidate_budget=6),
        default_k=3,
    )


def _direct_engine(dataset, config):
    """The direct DistanceEngine a Workspace must be bit-identical to."""
    engine = DistanceEngine(
        config.engine.constraint,
        config.sdtw,
        backend=config.engine.backend,
        prune=config.engine.prune,
        early_abandon=config.engine.early_abandon,
        batch_size=config.engine.batch_size,
    )
    engine.add_dataset(dataset)
    return engine


def _direct_searcher(dataset, config):
    """The direct IndexedSearcher a Workspace index must be identical to."""
    return IndexedSearcher.from_engine(
        _direct_engine(dataset, config),
        config=config.sdtw,
        codebook_config=CodebookConfig.for_sdtw(
            config.sdtw,
            num_codewords=config.index.num_codewords,
            seed=config.index.seed,
        ),
        num_shards=config.index.num_shards,
        candidate_budget=config.index.candidate_budget,
    )


def _fill(workspace, dataset):
    workspace.add_dataset(dataset)
    return workspace


class TestExactEquivalence:
    def test_exact_mode_bit_identical_to_engine(self, dataset, config):
        workspace = _fill(Workspace(config), dataset)
        direct = _direct_engine(dataset, config)
        for ts in dataset:
            ours = workspace.query(ts.values, 3, mode="exact",
                                   exclude_identifier=ts.identifier)
            theirs = direct.query(ts.values, 3,
                                  exclude_identifier=ts.identifier)
            assert ours.ids == tuple(h.identifier for h in theirs.hits)
            assert ours.distances == tuple(h.distance for h in theirs.hits)

    def test_auto_without_index_resolves_to_exact(self, dataset, config):
        workspace = _fill(Workspace(config), dataset)
        result = workspace.query(dataset[0].values, 2)
        assert result.requested_mode == "auto"
        assert result.mode == "exact"
        assert result.scan_fraction == pytest.approx(1.0)

    def test_default_k_comes_from_config(self, dataset, config):
        workspace = _fill(Workspace(config), dataset)
        result = workspace.query(dataset[0].values)
        assert len(result.hits) == config.default_k

    def test_knn_matches_per_query_results(self, dataset, config):
        workspace = _fill(Workspace(config), dataset)
        queries = [ts.values for ts in dataset.series[:4]]
        batch = workspace.knn(queries, 3)
        for qi, values in enumerate(queries):
            single = workspace.query(values, 3, mode="exact")
            assert batch.results[qi].hits == single.hits


class TestIndexedEquivalence:
    def test_indexed_mode_bit_identical_to_searcher(self, dataset, config):
        workspace = _fill(Workspace(config), dataset)
        workspace.build_index()
        direct = _direct_searcher(dataset, config)
        for ts in dataset.series[:6]:
            ours = workspace.query(ts.values, 3, mode="indexed",
                                   exclude_identifier=ts.identifier)
            theirs = direct.query(ts.values, 3,
                                  exclude_identifier=ts.identifier)
            assert ours.ids == tuple(h.identifier for h in theirs.hits)
            assert ours.distances == tuple(h.distance for h in theirs.hits)
            assert ours.candidates_generated == theirs.candidates_generated

    def test_auto_with_index_resolves_to_indexed(self, dataset, config):
        workspace = _fill(Workspace(config), dataset)
        workspace.build_index()
        result = workspace.query(dataset[0].values, 2)
        assert result.mode == "indexed"
        assert result.scan_fraction <= 1.0

    def test_full_budget_indexed_matches_exact(self, dataset, config):
        workspace = _fill(Workspace(config), dataset)
        workspace.build_index()
        exact = workspace.query(dataset[3].values, 3, mode="exact",
                                exclude_identifier=dataset[3].identifier)
        indexed = workspace.query(dataset[3].values, 3, mode="indexed",
                                  candidates=len(dataset),
                                  exclude_identifier=dataset[3].identifier)
        assert indexed.ids == exact.ids
        assert indexed.distances == exact.distances

    def test_add_marks_index_stale_without_incremental(self, dataset, config):
        cfg = WorkspaceConfig(
            engine=config.engine,
            index=IndexConfig(
                num_codewords=24, num_shards=2, candidate_budget=6,
                incremental=False,
            ),
            default_k=config.default_k,
        )
        workspace = _fill(Workspace(cfg), dataset)
        workspace.build_index()
        assert workspace.has_index
        workspace.add(dataset[0].values * 0.5)
        assert not workspace.has_index
        assert workspace.query(dataset[0].values, 2).mode == "exact"
        with pytest.raises(WorkspaceError):
            workspace.query(dataset[0].values, 2, mode="indexed")
        workspace.build_index()
        assert workspace.query(dataset[0].values, 2).mode == "indexed"

    def test_add_keeps_index_fresh_incrementally(self, dataset, config):
        workspace = _fill(Workspace(config), dataset)
        workspace.build_index()
        assert workspace.has_index
        identifier = workspace.add(dataset[0].values * 0.5)
        # The default (incremental) path absorbs the mutation as a delta
        # shard: no staleness, auto still resolves to the indexed path,
        # and the new series is immediately retrievable.
        assert workspace.has_index
        assert workspace.stats()["index"]["delta_shards"] == 1
        result = workspace.query(dataset[0].values * 0.5, 2)
        assert result.mode == "indexed"
        assert identifier in result.ids


class TestPersistence:
    def test_create_add_index_reopen_query_round_trip(
        self, tmp_path, dataset, config
    ):
        path = str(tmp_path / "ws")
        with Workspace.create(path, config) as workspace:
            workspace.add_dataset(dataset)
            workspace.build_index()
        assert os.path.exists(os.path.join(path, "workspace.json"))
        assert os.path.exists(os.path.join(path, "store.npz"))
        assert os.path.exists(os.path.join(path, "index", "manifest.json"))

        reopened = Workspace.open(path)
        assert reopened.config == config
        assert len(reopened) == len(dataset)
        assert reopened.has_index

        direct_engine = _direct_engine(dataset, config)
        direct_searcher = _direct_searcher(dataset, config)
        for ts in dataset.series[:5]:
            exact = reopened.query(ts.values, 3, mode="exact",
                                   exclude_identifier=ts.identifier)
            want = direct_engine.query(ts.values, 3,
                                       exclude_identifier=ts.identifier)
            assert exact.ids == tuple(h.identifier for h in want.hits)
            assert exact.distances == tuple(h.distance for h in want.hits)

            indexed = reopened.query(ts.values, 3, mode="indexed",
                                     exclude_identifier=ts.identifier)
            want_idx = direct_searcher.query(ts.values, 3,
                                             exclude_identifier=ts.identifier)
            assert indexed.ids == tuple(h.identifier for h in want_idx.hits)
            assert indexed.distances == tuple(
                h.distance for h in want_idx.hits
            )

            auto = reopened.query(ts.values, 3,
                                  exclude_identifier=ts.identifier)
            assert auto.mode == "indexed"
            assert auto.ids == indexed.ids
            assert auto.distances == indexed.distances
        reopened.close()

    def test_reopen_without_index(self, tmp_path, dataset, config):
        path = str(tmp_path / "ws")
        with Workspace.create(path, config) as workspace:
            workspace.add_dataset(dataset)
        reopened = Workspace.open(path)
        assert not reopened.has_index
        assert reopened.query(dataset[0].values, 2).mode == "exact"

    def test_create_refuses_existing_workspace(self, tmp_path, config):
        path = str(tmp_path / "ws")
        Workspace.create(path, config).close()
        with pytest.raises(WorkspaceError):
            Workspace.create(path, config)
        assert isinstance(Workspace.create(path, config, overwrite=True),
                          Workspace)

    def test_open_missing_directory_raises(self, tmp_path):
        with pytest.raises(WorkspaceError):
            Workspace.open(str(tmp_path / "nope"))

    def test_manifest_preserves_insertion_order_and_labels(
        self, tmp_path, dataset, config
    ):
        path = str(tmp_path / "ws")
        with Workspace.create(path, config) as workspace:
            workspace.add_dataset(dataset)
        reopened = Workspace.open(path)
        assert reopened.identifiers == [
            ts.identifier for ts in dataset
        ]
        assert reopened.labels == dataset.labels


class TestLazyFeatureExtraction:
    def test_fixed_constraint_add_defers_extraction(self, dataset, config):
        workspace = _fill(Workspace(config), dataset)
        workspace.query(dataset[0].values, 2, mode="exact")
        store = workspace._store
        assert not any(store.has_features(i) for i in workspace.identifiers)

    def test_build_index_materialises_features(self, dataset, config):
        workspace = _fill(Workspace(config), dataset)
        workspace.build_index()
        store = workspace._store
        assert all(store.has_features(i) for i in workspace.identifiers)

    def test_save_materialises_features(self, tmp_path, dataset, config):
        path = str(tmp_path / "ws")
        with Workspace.create(path, config) as workspace:
            workspace.add_dataset(dataset)
        reopened = Workspace.open(path)
        store = reopened._store
        assert all(store.has_features(i) for i in reopened.identifiers)

    def test_adaptive_constraint_extracts_into_store_once(self, dataset):
        from repro.core.config import DescriptorConfig, SDTWConfig

        workspace = Workspace(WorkspaceConfig(
            sdtw=SDTWConfig(descriptor=DescriptorConfig(num_bins=16)),
            engine=EngineConfig(constraint="ac,aw"),
        ))
        workspace.add_batch([ts.values for ts in dataset.series[:4]])
        workspace.query(dataset[0].values, 2, mode="exact")
        store = workspace._store
        assert all(store.has_features(i) for i in workspace.identifiers)


class TestLifecycleErrors:
    def test_duplicate_identifier_rejected(self, config):
        workspace = Workspace(config)
        workspace.add([1.0, 2.0, 3.0], identifier="a")
        with pytest.raises(ValidationError):
            workspace.add([4.0, 5.0, 6.0], identifier="a")

    def test_add_batch_is_atomic_on_duplicates(self, config):
        workspace = Workspace(config)
        workspace.add([1.0, 2.0, 3.0], identifier="a")
        with pytest.raises(ValidationError):
            workspace.add_batch(
                [[1.0, 2.0], [3.0, 4.0]], identifiers=["b", "a"]
            )
        with pytest.raises(ValidationError):
            workspace.add_batch(
                [[1.0, 2.0], [3.0, 4.0]], identifiers=["c", "c"]
            )
        assert workspace.identifiers == ["a"]
        workspace.add_batch([[1.0, 2.0], [3.0, 4.0]], identifiers=["b", "c"])
        assert workspace.identifiers == ["a", "b", "c"]

    def test_query_on_empty_workspace_raises(self, config):
        # PR 6: a clean WorkspaceError (not a numpy/engine error) on both
        # the never-filled and the everything-removed empty workspace.
        with pytest.raises(WorkspaceError, match="empty workspace"):
            Workspace(config).query([1.0, 2.0, 3.0], 1)

    def test_unknown_mode_rejected(self, dataset, config):
        workspace = _fill(Workspace(config), dataset)
        with pytest.raises(ValidationError):
            workspace.query(dataset[0].values, 1, mode="psychic")

    def test_build_index_on_empty_workspace_raises(self, config):
        with pytest.raises(DatasetError):
            Workspace(config).build_index()

    def test_save_on_in_memory_workspace_raises(self, config):
        with pytest.raises(WorkspaceError):
            Workspace(config).save()

    def test_use_after_close_raises(self, dataset, config):
        workspace = _fill(Workspace(config), dataset)
        workspace.close()
        with pytest.raises(WorkspaceError):
            workspace.query(dataset[0].values, 1)
        with pytest.raises(WorkspaceError):
            workspace.add([1.0, 2.0])


class TestMutatedPathEdgeCases:
    """PR 6 regression tests: edge cases on the derived-snapshot path."""

    def test_k_larger_than_live_collection_clamps(self, dataset, config):
        workspace = _fill(Workspace(config), dataset)
        workspace.query(dataset[0].values, 2, mode="exact")  # build snapshot
        for ts in dataset.series[3:]:
            workspace.remove(ts.identifier)
        live = len(workspace)
        assert live == 3
        result = workspace.query(dataset[0].values, 50, mode="exact")
        assert len(result.hits) == live
        assert result.collection_size == live
        batch = workspace.knn([dataset[0].values], 50)
        assert len(batch.results[0].hits) == live

    def test_query_after_removing_every_series_raises_cleanly(
        self, dataset, config
    ):
        workspace = _fill(Workspace(config), dataset)
        workspace.query(dataset[0].values, 2, mode="exact")  # build snapshot
        for ts in dataset.series:
            workspace.remove(ts.identifier)
        with pytest.raises(WorkspaceError, match="empty workspace"):
            workspace.query(dataset[0].values, 1, mode="exact")
        with pytest.raises(WorkspaceError, match="empty workspace"):
            workspace.knn([dataset[0].values], 1)

    def test_query_racing_remove_of_last_series(self, dataset, config):
        """Readers racing the removal of the final series either serve the
        pre-mutation snapshot or get a clean WorkspaceError — never a
        numpy index error."""
        import threading

        workspace = Workspace(config)
        workspace.add(dataset[0].values, identifier="only")
        workspace.query(dataset[0].values, 1, mode="exact")
        start = threading.Barrier(5)
        errors: list = []

        def reader():
            start.wait()
            for _ in range(50):
                try:
                    outcome = workspace.query(dataset[0].values, 1, mode="exact")
                    assert outcome.ids == ("only",)
                except WorkspaceError:
                    pass  # clean post-removal signal
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        start.wait()
        workspace.remove("only")
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        with pytest.raises(WorkspaceError, match="empty workspace"):
            workspace.query(dataset[0].values, 1, mode="exact")

    def test_indexed_k_larger_than_live_collection_clamps(self, dataset, config):
        workspace = _fill(Workspace(config), dataset)
        workspace.build_index()
        workspace.query(dataset[0].values, 2, mode="indexed")
        for ts in dataset.series[4:]:
            workspace.remove(ts.identifier)
        live = len(workspace)
        result = workspace.query(
            dataset[0].values, 50, mode="indexed", candidates=100
        )
        assert len(result.hits) == live
        assert set(result.ids) == set(workspace.identifiers)


class TestPairwiseAndStreaming:
    def test_pairwise_matches_direct_sdtw(self, dataset, config):
        from repro.core.sdtw import SDTW

        workspace = Workspace(config)
        x, y = dataset[0].values, dataset[1].values
        ours = workspace.pairwise(x, y, constraint="ac,aw")
        theirs = SDTW(config.sdtw).distance(x, y, constraint="ac,aw")
        assert ours.distance == theirs.distance

    def test_pairwise_defaults_to_engine_constraint(self, dataset, config):
        from repro.core.sdtw import SDTW

        workspace = Workspace(config)
        x, y = dataset[0].values, dataset[1].values
        ours = workspace.pairwise(x, y)
        theirs = SDTW(config.sdtw).distance(
            x, y, constraint=config.engine.constraint
        )
        assert ours.distance == theirs.distance

    def test_stream_registers_pattern_and_reports_matches(self, config):
        workspace = Workspace(config)
        pattern = np.sin(np.linspace(0, 6.28, 32))
        name = workspace.stream(pattern, threshold=2.0, mode="spring")
        workspace.add_stream("sensor")
        matches = workspace.extend(
            "sensor", np.concatenate([np.zeros(10), pattern, np.zeros(5)])
        )
        matches += workspace.monitor.finalize("sensor")
        assert name in workspace.monitor.patterns()
        assert any(m.pattern == name for m in matches)

    def test_monitor_remove_pattern_and_stream(self, config):
        workspace = Workspace(config)
        name = workspace.stream(np.sin(np.linspace(0, 6.28, 16)),
                                threshold=1.0)
        workspace.add_stream("s")
        workspace.monitor.remove_pattern(name)
        assert name not in workspace.monitor.patterns()
        workspace.monitor.remove_stream("s")
        assert "s" not in workspace.monitor.streams()
        with pytest.raises(ValidationError):
            workspace.monitor.remove_pattern("ghost")

    def test_auto_names_survive_removal(self, config):
        """Regression: len()-based auto names must skip survivors after a
        removal instead of colliding with them."""
        workspace = Workspace(config)
        pattern = np.sin(np.linspace(0, 6.28, 16))
        first = workspace.stream(pattern, threshold=1.0)
        second = workspace.stream(pattern, threshold=1.0)
        workspace.monitor.remove_pattern(first)
        third = workspace.stream(pattern, threshold=1.0)
        assert third != second
        assert second in workspace.monitor.patterns()
        assert third in workspace.monitor.patterns()

        s_first = workspace.add_stream()
        s_second = workspace.add_stream()
        workspace.monitor.remove_stream(s_first)
        s_third = workspace.add_stream()
        assert s_second in workspace.monitor.streams()
        assert s_third in workspace.monitor.streams()


class TestResultMetadata:
    def test_timings_cover_all_stages(self, dataset, config):
        workspace = _fill(Workspace(config), dataset)
        workspace.build_index()
        result = workspace.query(dataset[0].values, 2, mode="indexed")
        timings = result.timings()
        for key in ("generation_seconds", "bound_seconds", "dp_seconds",
                    "rerank_seconds", "elapsed_seconds"):
            assert key in timings
        assert timings["elapsed_seconds"] >= timings["rerank_seconds"]
        assert result.candidates_generated <= len(dataset)

    def test_stats_summary_keys(self, dataset, config):
        workspace = _fill(Workspace(config), dataset)
        summary = workspace.stats()
        assert summary["num_series"] == len(dataset)
        assert summary["index"] is None
        workspace.build_index()
        assert workspace.stats()["index"]["stale"] is False
