"""Tests for the 2a×2 gradient-magnitude descriptors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DescriptorConfig
from repro.core.descriptors import (
    compute_descriptor,
    descriptor_distance,
    descriptor_window_radius,
)
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def wave():
    t = np.linspace(0, 1, 300)
    return np.sin(2 * np.pi * 3 * t) + 0.4 * np.sin(2 * np.pi * 11 * t)


class TestDescriptorShape:
    def test_length_matches_configuration(self, wave):
        for bins in (4, 8, 16, 64, 128):
            config = DescriptorConfig(num_bins=bins)
            descriptor = compute_descriptor(wave, 150.0, 2.0, config)
            assert descriptor.size == bins

    def test_descriptor_is_non_negative(self, wave):
        descriptor = compute_descriptor(wave, 150.0, 2.0)
        assert np.all(descriptor >= 0.0)

    def test_normalized_descriptor_has_unit_norm(self, wave):
        descriptor = compute_descriptor(wave, 150.0, 2.0, DescriptorConfig(num_bins=32))
        assert np.linalg.norm(descriptor) == pytest.approx(1.0, abs=1e-9)

    def test_unnormalized_descriptor_scales_with_amplitude(self, wave):
        config = DescriptorConfig(num_bins=16, normalize=False)
        small = compute_descriptor(wave, 150.0, 2.0, config)
        large = compute_descriptor(3.0 * wave, 150.0, 2.0, config)
        assert large.sum() > 2.0 * small.sum()

    def test_normalization_gives_amplitude_invariance(self, wave):
        config = DescriptorConfig(num_bins=16)
        base = compute_descriptor(wave, 150.0, 2.0, config)
        scaled = compute_descriptor(5.0 * wave, 150.0, 2.0, config)
        np.testing.assert_allclose(base, scaled, atol=1e-8)

    def test_constant_series_gives_zero_descriptor(self):
        descriptor = compute_descriptor(np.full(100, 7.0), 50.0, 2.0)
        np.testing.assert_allclose(descriptor, 0.0)

    def test_invalid_sigma_rejected(self, wave):
        with pytest.raises(ValidationError):
            compute_descriptor(wave, 150.0, 0.0)


class TestDescriptorLocality:
    def test_distinct_locations_give_distinct_descriptors(self, wave):
        config = DescriptorConfig(num_bins=16)
        a = compute_descriptor(wave, 60.0, 1.5, config)
        b = compute_descriptor(wave, 200.0, 1.5, config)
        assert descriptor_distance(a, b) > 1e-3

    def test_same_shape_elsewhere_gives_similar_descriptor(self):
        # Two identical bumps at different positions: their descriptors
        # should be near-identical (translation invariance of the local
        # description).
        t = np.linspace(0, 1, 400)
        series = (
            np.exp(-((t - 0.3) ** 2) / 0.0005)
            + np.exp(-((t - 0.7) ** 2) / 0.0005)
        )
        config = DescriptorConfig(num_bins=16)
        a = compute_descriptor(series, 0.3 * 399, 2.0, config)
        b = compute_descriptor(series, 0.7 * 399, 2.0, config)
        assert descriptor_distance(a, b) < 0.05

    def test_descriptor_near_series_edge_does_not_fail(self, wave):
        config = DescriptorConfig(num_bins=16)
        start = compute_descriptor(wave, 1.0, 2.0, config)
        end = compute_descriptor(wave, float(wave.size - 2), 2.0, config)
        assert start.size == 16
        assert end.size == 16

    def test_precomputed_smoothed_series_matches(self, wave):
        from repro.utils.preprocessing import gaussian_smooth

        config = DescriptorConfig(num_bins=16)
        smoothed = gaussian_smooth(wave, 2.0)
        direct = compute_descriptor(wave, 150.0, 2.0, config)
        cached = compute_descriptor(wave, 150.0, 2.0, config, smoothed=smoothed)
        np.testing.assert_allclose(direct, cached)


class TestWindowRadius:
    def test_radius_grows_with_sigma(self):
        config = DescriptorConfig(num_bins=16)
        assert descriptor_window_radius(4.0, config) > descriptor_window_radius(1.0, config)

    def test_radius_grows_with_descriptor_length(self):
        small = DescriptorConfig(num_bins=8)
        large = DescriptorConfig(num_bins=64)
        assert descriptor_window_radius(2.0, large) > descriptor_window_radius(2.0, small)

    def test_radius_at_least_number_of_cells(self):
        config = DescriptorConfig(num_bins=32)
        assert descriptor_window_radius(0.5, config) >= config.num_cells


class TestDescriptorDistance:
    def test_zero_for_identical_descriptors(self):
        vec = np.array([0.1, 0.2, 0.3])
        assert descriptor_distance(vec, vec) == pytest.approx(0.0)

    def test_euclidean_for_simple_vectors(self):
        assert descriptor_distance(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_mismatched_lengths_compare_common_prefix(self):
        a = np.array([1.0, 1.0, 9.0])
        b = np.array([1.0, 1.0])
        assert descriptor_distance(a, b) == pytest.approx(0.0)
