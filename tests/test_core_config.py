"""Tests for the configuration objects and their validation."""

from __future__ import annotations

import math

import pytest

from repro.core.config import (
    DEFAULT_CONFIG,
    DescriptorConfig,
    MatchingConfig,
    SDTWConfig,
    ScaleSpaceConfig,
)
from repro.exceptions import ConfigurationError


class TestScaleSpaceConfig:
    def test_defaults_follow_the_paper(self):
        config = ScaleSpaceConfig()
        assert config.levels_per_octave == 2
        assert config.epsilon == pytest.approx(0.0096)
        assert config.scope_radius_sigmas == 3.0

    def test_kappa_satisfies_kappa_to_s_equals_two(self):
        for s in (1, 2, 3, 4):
            config = ScaleSpaceConfig(levels_per_octave=s)
            assert config.kappa ** s == pytest.approx(2.0)

    def test_octaves_for_length_paper_rule(self):
        config = ScaleSpaceConfig()
        # floor(log2(150)) - 6 = 7 - 6 = 1
        assert config.octaves_for_length(150) == 1
        # floor(log2(275)) - 6 = 8 - 6 = 2
        assert config.octaves_for_length(275) == 2
        # Very long series get more octaves.
        assert config.octaves_for_length(4096) == 6

    def test_octaves_never_below_one(self):
        config = ScaleSpaceConfig()
        assert config.octaves_for_length(16) == 1
        assert config.octaves_for_length(2) == 1

    def test_explicit_octave_count_capped_by_length(self):
        config = ScaleSpaceConfig(num_octaves=10)
        assert config.octaves_for_length(32) <= math.floor(math.log2(32))

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            ScaleSpaceConfig(num_octaves=0)
        with pytest.raises(ConfigurationError):
            ScaleSpaceConfig(levels_per_octave=0)
        with pytest.raises(ConfigurationError):
            ScaleSpaceConfig(base_sigma=0.0)
        with pytest.raises(ConfigurationError):
            ScaleSpaceConfig(epsilon=1.0)
        with pytest.raises(ConfigurationError):
            ScaleSpaceConfig(scope_radius_sigmas=0.0)
        with pytest.raises(ConfigurationError):
            ScaleSpaceConfig(contrast_threshold=-0.1)
        with pytest.raises(ConfigurationError):
            ScaleSpaceConfig(min_series_length=1)


class TestDescriptorConfig:
    def test_default_length_matches_paper(self):
        assert DescriptorConfig().num_bins == 64

    def test_num_cells_is_half_the_bins(self):
        assert DescriptorConfig(num_bins=8).num_cells == 4

    def test_odd_bin_count_rejected(self):
        with pytest.raises(ConfigurationError):
            DescriptorConfig(num_bins=7)

    def test_too_few_bins_rejected(self):
        with pytest.raises(ConfigurationError):
            DescriptorConfig(num_bins=2)

    def test_invalid_auxiliary_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            DescriptorConfig(samples_per_cell=0)
        with pytest.raises(ConfigurationError):
            DescriptorConfig(gaussian_weight_factor=0.0)
        with pytest.raises(ConfigurationError):
            DescriptorConfig(clip_value=0.0)


class TestMatchingConfig:
    def test_defaults_are_sane(self):
        config = MatchingConfig()
        assert config.distinctiveness_ratio > 1.0
        assert config.prune_inconsistencies

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            MatchingConfig(max_amplitude_difference=0.0)
        with pytest.raises(ConfigurationError):
            MatchingConfig(max_scale_ratio=0.5)
        with pytest.raises(ConfigurationError):
            MatchingConfig(distinctiveness_ratio=1.0)


class TestSDTWConfig:
    def test_default_config_exposes_sections(self):
        assert isinstance(DEFAULT_CONFIG.scale_space, ScaleSpaceConfig)
        assert isinstance(DEFAULT_CONFIG.descriptor, DescriptorConfig)
        assert isinstance(DEFAULT_CONFIG.matching, MatchingConfig)

    def test_default_widths_follow_the_paper(self):
        assert DEFAULT_CONFIG.adaptive_width_lower_bound == pytest.approx(0.20)

    def test_with_descriptor_bins_returns_new_config(self):
        derived = DEFAULT_CONFIG.with_descriptor_bins(16)
        assert derived.descriptor.num_bins == 16
        assert DEFAULT_CONFIG.descriptor.num_bins == 64
        assert derived.scale_space is DEFAULT_CONFIG.scale_space

    def test_with_width_fraction_returns_new_config(self):
        derived = DEFAULT_CONFIG.with_width_fraction(0.06)
        assert derived.width_fraction == pytest.approx(0.06)
        assert DEFAULT_CONFIG.width_fraction == pytest.approx(0.10)

    def test_invalid_width_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            SDTWConfig(width_fraction=0.0)
        with pytest.raises(ConfigurationError):
            SDTWConfig(width_fraction=1.5)

    def test_invalid_adaptive_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            SDTWConfig(adaptive_width_lower_bound=-0.1)
        with pytest.raises(ConfigurationError):
            SDTWConfig(adaptive_width_upper_bound=0.0)
        with pytest.raises(ConfigurationError):
            SDTWConfig(adaptive_width_lower_bound=0.5,
                       adaptive_width_upper_bound=0.3)

    def test_negative_neighbor_radius_rejected(self):
        with pytest.raises(ConfigurationError):
            SDTWConfig(neighbor_radius=-1)

    def test_configs_are_immutable(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.width_fraction = 0.5  # type: ignore[misc]


class TestDictRoundTrips:
    """Every config dataclass persists through to_dict/from_dict exactly."""

    def test_scale_space_round_trip(self):
        config = ScaleSpaceConfig(num_octaves=3, levels_per_octave=4,
                                  base_sigma=1.5, epsilon=0.02)
        assert ScaleSpaceConfig.from_dict(config.to_dict()) == config

    def test_descriptor_round_trip(self):
        config = DescriptorConfig(num_bins=16, samples_per_cell=3,
                                  normalize=False)
        assert DescriptorConfig.from_dict(config.to_dict()) == config

    def test_matching_round_trip(self):
        config = MatchingConfig(max_amplitude_difference=0.5,
                                require_distinctive=False)
        assert MatchingConfig.from_dict(config.to_dict()) == config

    def test_sdtw_round_trip_with_non_default_sections(self):
        config = SDTWConfig(
            scale_space=ScaleSpaceConfig(num_octaves=2),
            descriptor=DescriptorConfig(num_bins=8),
            matching=MatchingConfig(max_scale_ratio=2.0),
            width_fraction=0.06,
            adaptive_width_upper_bound=0.5,
            symmetric_band=True,
        )
        rebuilt = SDTWConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.descriptor.num_bins == 8

    def test_round_trip_is_json_compatible(self):
        import json

        payload = json.dumps(DEFAULT_CONFIG.to_dict())
        assert SDTWConfig.from_dict(json.loads(payload)) == DEFAULT_CONFIG

    def test_from_dict_still_validates(self):
        payload = DescriptorConfig().to_dict()
        payload["num_bins"] = 7
        with pytest.raises(ConfigurationError):
            DescriptorConfig.from_dict(payload)
