"""Tests for the persistent salient-feature store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DescriptorConfig, SDTWConfig
from repro.core.features import extract_salient_features
from repro.datasets.synthetic import make_gun_like
from repro.exceptions import DatasetError, ValidationError
from repro.retrieval.feature_store import FeatureStore


@pytest.fixture(scope="module")
def config():
    return SDTWConfig(descriptor=DescriptorConfig(num_bins=16))


@pytest.fixture(scope="module")
def small_dataset():
    return make_gun_like(num_series=4, seed=5)


class TestPopulation:
    def test_add_series_extracts_features(self, config):
        store = FeatureStore(config=config)
        series = np.sin(np.linspace(0, 6, 120)) + np.exp(
            -np.linspace(-3, 3, 120) ** 2
        )
        features = store.add_series("s1", series)
        assert len(features) > 0
        assert "s1" in store
        assert len(store) == 1

    def test_add_series_accepts_precomputed_features(self, config):
        series = np.sin(np.linspace(0, 6, 100))
        precomputed = extract_salient_features(series, config)
        store = FeatureStore(config=config)
        stored = store.add_series("pre", series, features=precomputed)
        assert len(stored) == len(precomputed)

    def test_empty_identifier_rejected(self, config):
        store = FeatureStore(config=config)
        with pytest.raises(ValidationError):
            store.add_series("", [1.0, 2.0, 3.0])

    def test_add_dataset_uses_series_identifiers(self, config, small_dataset):
        store = FeatureStore(config=config)
        store.add_dataset(small_dataset)
        assert len(store) == len(small_dataset)
        assert small_dataset[0].identifier in store

    def test_lookup_unknown_identifier_raises(self, config):
        store = FeatureStore(config=config)
        with pytest.raises(DatasetError):
            store.features_of("missing")
        with pytest.raises(DatasetError):
            store.series_of("missing")


class TestPersistence:
    def test_save_and_load_round_trip(self, config, small_dataset, tmp_path):
        store = FeatureStore(config=config)
        store.add_dataset(small_dataset)
        path = tmp_path / "features.npz"
        store.save(path)
        loaded = FeatureStore.load(path, config=config)
        assert loaded.identifiers() == store.identifiers()
        for identifier in store.identifiers():
            original = store.features_of(identifier)
            restored = loaded.features_of(identifier)
            assert len(original) == len(restored)
            for a, b in zip(original, restored):
                assert a.position == pytest.approx(b.position)
                assert a.sigma == pytest.approx(b.sigma)
                assert a.scale_class == b.scale_class
                np.testing.assert_allclose(a.descriptor, b.descriptor, atol=1e-12)
            np.testing.assert_allclose(
                store.series_of(identifier), loaded.series_of(identifier)
            )

    def test_load_missing_file_raises(self, config, tmp_path):
        with pytest.raises(DatasetError):
            FeatureStore.load(tmp_path / "nope.npz", config=config)

    def test_load_with_mismatched_descriptor_length_rejected(
        self, config, small_dataset, tmp_path
    ):
        store = FeatureStore(config=config)
        store.add_dataset(small_dataset)
        path = tmp_path / "features.npz"
        store.save(path)
        other_config = SDTWConfig(descriptor=DescriptorConfig(num_bins=64))
        with pytest.raises(ValidationError):
            FeatureStore.load(path, config=other_config)

    def test_series_with_no_features_survives_round_trip(self, config, tmp_path):
        store = FeatureStore(config=config)
        store.add_series("flat", np.full(64, 1.0))
        path = tmp_path / "flat.npz"
        store.save(path)
        loaded = FeatureStore.load(path, config=config)
        assert loaded.features_of("flat") == ()


class TestEngineWarmup:
    def test_warm_engine_skips_extraction(self, config, small_dataset):
        store = FeatureStore(config=config)
        store.add_dataset(small_dataset)
        engine = store.warm_engine()
        for ts in small_dataset:
            _, elapsed = engine.extract_features(ts.values)
            assert elapsed == 0.0

    def test_warmed_engine_produces_same_distances(self, config, small_dataset):
        from repro.core.sdtw import SDTW

        store = FeatureStore(config=config)
        store.add_dataset(small_dataset)
        warmed = store.warm_engine()
        cold = SDTW(config)
        x = small_dataset[0].values
        y = small_dataset[1].values
        assert warmed.distance(x, y, "ac,aw").distance == pytest.approx(
            cold.distance(x, y, "ac,aw").distance
        )


class TestMixedDescriptorLengths:
    """Regression: zero-padding must not leak into reloaded descriptors."""

    def _feature_with_descriptor(self, position, descriptor):
        from repro.core.features import SalientFeature

        return SalientFeature(
            position=float(position), sigma=1.5,
            scope_start=float(position) - 3.0, scope_end=float(position) + 3.0,
            octave=0, level=0, amplitude=0.5, mean_amplitude=0.4,
            dog_value=0.1, scale_class="fine",
            descriptor=np.asarray(descriptor, dtype=float),
        )

    def test_mixed_length_descriptors_round_trip_exactly(self, config, tmp_path):
        store = FeatureStore(config=config)
        features = [
            self._feature_with_descriptor(10.0, [0.1, 0.2, 0.3, 0.4, 0.5, 0.6]),
            self._feature_with_descriptor(20.0, [0.7, 0.8]),
            self._feature_with_descriptor(30.0, [0.9, 1.0, 1.1, 0.0]),
        ]
        store.add_series("mixed", np.linspace(0, 1, 64), features=features)
        target = tmp_path / "mixed.npz"
        store.save(target)
        loaded = FeatureStore.load(target, config=config)
        restored = loaded.features_of("mixed")
        assert [f.descriptor.size for f in restored] == [6, 2, 4]
        for original, back in zip(features, restored):
            np.testing.assert_array_equal(original.descriptor, back.descriptor)

    def test_trailing_zero_descriptor_bins_preserved(self, config, tmp_path):
        # A descriptor legitimately ending in zeros must come back with
        # its zeros — and not be confused with padding of a longer row.
        store = FeatureStore(config=config)
        features = [
            self._feature_with_descriptor(10.0, [0.5, 0.0, 0.0]),
            self._feature_with_descriptor(20.0, [0.1, 0.2, 0.3, 0.4, 0.5]),
        ]
        store.add_series("zeros", np.linspace(0, 1, 64), features=features)
        target = tmp_path / "zeros.npz"
        store.save(target)
        restored = FeatureStore.load(target, config=config).features_of("zeros")
        np.testing.assert_array_equal(restored[0].descriptor, [0.5, 0.0, 0.0])
        assert restored[0].descriptor.size == 3

    def test_version1_archive_still_loads(self, config, tmp_path):
        # Hand-build a v1 archive (no descriptor-length column) and check
        # the loader falls back to the historical padded behaviour.
        import json

        from repro.retrieval.feature_store import (
            _FIXED_COLUMNS_V1,
            _SCALE_CODES,
        )

        descriptor = np.array([0.1, 0.2, 0.3])
        row = np.zeros(_FIXED_COLUMNS_V1 + descriptor.size)
        row[0] = 5.0
        row[1] = 1.5
        row[2] = 2.0
        row[3] = 8.0
        row[9] = _SCALE_CODES["fine"]
        row[_FIXED_COLUMNS_V1:] = descriptor
        manifest = {
            "identifiers": ["legacy"],
            "descriptor_bins": config.descriptor.num_bins,
            "version": 1,
        }
        payload = {
            "series_0": np.linspace(0, 1, 32),
            "features_0": row[np.newaxis, :],
            "manifest": np.frombuffer(
                json.dumps(manifest).encode("utf-8"), dtype=np.uint8
            ),
        }
        target = tmp_path / "legacy.npz"
        np.savez_compressed(target, **payload)
        loaded = FeatureStore.load(target, config=config)
        restored = loaded.features_of("legacy")
        assert len(restored) == 1
        np.testing.assert_array_equal(restored[0].descriptor, descriptor)


class TestDescriptorMatrixExport:
    """The batch export feeding the indexing codebook."""

    def test_per_series_matrix_shape(self, config, small_dataset):
        store = FeatureStore(config=config)
        store.add_dataset(small_dataset)
        identifier = store.identifiers()[0]
        matrix = store.descriptor_matrix(identifier)
        assert matrix.shape == (
            len(store.features_of(identifier)), config.descriptor.num_bins
        )

    def test_full_export_stacks_all_series(self, config, small_dataset):
        store = FeatureStore(config=config)
        store.add_dataset(small_dataset)
        total = sum(
            len(store.features_of(name)) for name in store.identifiers()
        )
        matrix = store.descriptor_matrix()
        assert matrix.shape == (total, config.descriptor.num_bins)

    def test_empty_store_exports_empty_matrix(self, config):
        store = FeatureStore(config=config)
        matrix = store.descriptor_matrix()
        assert matrix.shape == (0, config.descriptor.num_bins)
