"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bands import build_constraint_band
from repro.core.consistency import prune_inconsistent_pairs
from repro.core.intervals import partition_from_boundaries
from repro.dtw.banded import band_cell_count, banded_dtw, validate_band
from repro.dtw.constraints import full_band, itakura_band, sakoe_chiba_band
from repro.dtw.full import dtw, dtw_distance
from repro.dtw.path import is_valid_warp_path, path_cost
from repro.engine import DistanceEngine, cascade_bounds
from repro.utils.preprocessing import gaussian_smooth, resample_linear, z_normalize

# Strategy: short, well-behaved float series.
series_strategy = st.lists(
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False,
              allow_infinity=False, width=32),
    min_size=2,
    max_size=30,
).map(lambda values: np.asarray(values, dtype=float))

lengths_strategy = st.integers(min_value=2, max_value=40)


class TestDTWProperties:
    @given(x=series_strategy, y=series_strategy)
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, x, y):
        assert dtw_distance(x, y) == pytest.approx(dtw_distance(y, x), rel=1e-9)

    @given(x=series_strategy)
    @settings(max_examples=30, deadline=None)
    def test_identity(self, x):
        assert dtw_distance(x, x) == pytest.approx(0.0, abs=1e-9)

    @given(x=series_strategy, y=series_strategy)
    @settings(max_examples=40, deadline=None)
    def test_non_negativity(self, x, y):
        assert dtw_distance(x, y) >= 0.0

    @given(x=series_strategy, y=series_strategy)
    @settings(max_examples=30, deadline=None)
    def test_path_validity_and_cost_consistency(self, x, y):
        result = dtw(x, y)
        assert is_valid_warp_path(result.path.pairs, x.size, y.size)
        assert path_cost(result.path, x, y) == pytest.approx(result.distance,
                                                             rel=1e-9, abs=1e-9)

    @given(x=series_strategy, y=series_strategy)
    @settings(max_examples=30, deadline=None)
    def test_path_length_bounds(self, x, y):
        result = dtw(x, y)
        k = len(result.path)
        assert max(x.size, y.size) <= k <= x.size + y.size

    @given(x=series_strategy, y=series_strategy, shift=st.floats(-50, 50,
                                                                 allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_translation_of_both_series_preserves_distance(self, x, y, shift):
        base = dtw_distance(x, y)
        translated = dtw_distance(x + shift, y + shift)
        assert translated == pytest.approx(base, rel=1e-6, abs=1e-6)


class TestBandProperties:
    @given(n=lengths_strategy, m=lengths_strategy,
           radius=st.integers(min_value=0, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_sakoe_chiba_band_is_valid_and_bounded(self, n, m, radius):
        band = sakoe_chiba_band(n, m, radius)
        validate_band(band, n, m, repair=False)
        assert band_cell_count(band) <= n * m

    @given(n=lengths_strategy, m=lengths_strategy,
           slope=st.floats(min_value=1.1, max_value=5.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_itakura_band_is_valid(self, n, m, slope):
        band = itakura_band(n, m, max_slope=slope)
        validate_band(band, n, m, repair=False)

    @given(x=series_strategy, y=series_strategy,
           radius=st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_banded_distance_upper_bounds_full(self, x, y, radius):
        band = sakoe_chiba_band(x.size, y.size, radius)
        constrained = banded_dtw(x, y, band, return_path=False).distance
        assert constrained >= dtw_distance(x, y) - 1e-9

    @given(x=series_strategy, y=series_strategy)
    @settings(max_examples=30, deadline=None)
    def test_full_band_reproduces_exact_distance(self, x, y):
        band = full_band(x.size, y.size)
        assert banded_dtw(x, y, band, return_path=False).distance == pytest.approx(
            dtw_distance(x, y), rel=1e-9, abs=1e-9
        )

    @given(n=lengths_strategy, m=lengths_strategy,
           cuts_x=st.lists(st.floats(0, 100, allow_nan=False), max_size=6),
           cuts_y=st.lists(st.floats(0, 100, allow_nan=False), max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_constraint_bands_from_arbitrary_partitions_are_valid(
        self, n, m, cuts_x, cuts_y
    ):
        size = min(len(cuts_x), len(cuts_y))
        partition = partition_from_boundaries(cuts_x[:size], cuts_y[:size], n, m)
        for spec in ("fc,aw", "ac,fw", "ac,aw", "ac2,aw"):
            band = build_constraint_band(n, m, spec, partition)
            validate_band(band, n, m, repair=False)
            assert band[0, 0] == 0
            assert band[-1, 1] == m - 1


class TestIntervalProperties:
    @given(n=lengths_strategy, m=lengths_strategy,
           cuts=st.lists(st.floats(0, 200, allow_nan=False), max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_partition_covers_both_series(self, n, m, cuts):
        partition = partition_from_boundaries(cuts, cuts, n, m)
        assert partition.intervals_x[0].start == 0
        assert partition.intervals_x[-1].end == n - 1
        assert partition.intervals_y[0].start == 0
        assert partition.intervals_y[-1].end == m - 1
        assert partition.num_intervals == len(cuts) + 1

    @given(n=lengths_strategy, m=lengths_strategy,
           cuts=st.lists(st.floats(0, 200, allow_nan=False), max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_every_index_maps_to_a_containing_interval(self, n, m, cuts):
        partition = partition_from_boundaries(cuts, cuts, n, m)
        for i in range(n):
            idx = partition.interval_index_for_x(i)
            assert partition.intervals_x[idx].contains(i)


class TestPreprocessingProperties:
    @given(x=series_strategy)
    @settings(max_examples=40, deadline=None)
    def test_z_normalization_bounds(self, x):
        normalised = z_normalize(x)
        assert abs(float(normalised.mean())) < 1e-6
        assert float(normalised.std()) == pytest.approx(1.0, abs=1e-6) or np.allclose(
            normalised, 0.0
        )

    @given(x=series_strategy, sigma=st.floats(0.5, 5.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_gaussian_smoothing_stays_within_range(self, x, sigma):
        smoothed = gaussian_smooth(x, sigma)
        assert smoothed.size == x.size
        assert smoothed.min() >= x.min() - 1e-6
        assert smoothed.max() <= x.max() + 1e-6

    @given(x=series_strategy, length=st.integers(min_value=1, max_value=60))
    @settings(max_examples=40, deadline=None)
    def test_resampling_preserves_value_range(self, x, length):
        resampled = resample_linear(x, length)
        assert resampled.size == length
        assert resampled.min() >= x.min() - 1e-9
        assert resampled.max() <= x.max() + 1e-9


class TestPruningCascadeProperties:
    """Safety of the batch engine's pruning cascade (exactness guarantees)."""

    @given(x=series_strategy, y=series_strategy)
    @settings(max_examples=50, deadline=None)
    def test_cascade_bounds_are_monotone_and_admissible(self, x, y):
        # Stage 1 (LB_Kim) <= stage 2 (+ LB_Keogh) <= full DTW: the bound
        # cascade tightens monotonically and never overshoots the true
        # distance, so pruning against it is exact.
        stage1, stage2 = cascade_bounds(x, y)
        full = dtw_distance(x, y)
        assert 0.0 <= stage1 <= stage2
        assert stage2 <= full + 1e-9

    @given(x=series_strategy, y=series_strategy,
           radius=st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_cascade_bounds_underestimate_constrained_distances(
        self, x, y, radius
    ):
        # Constrained DTW only restricts the path set, so it dominates the
        # full DTW and therefore every cascade bound.
        _, stage2 = cascade_bounds(x, y)
        band = sakoe_chiba_band(x.size, y.size, radius)
        constrained = banded_dtw(x, y, band, return_path=False).distance
        assert stage2 <= constrained + 1e-9

    @given(x=series_strategy, y=series_strategy,
           radius=st.integers(min_value=1, max_value=8),
           fraction=st.floats(min_value=0.05, max_value=1.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_abandoning_is_exact(self, x, y, radius, fraction):
        # Early abandonment may only fire when the true distance provably
        # exceeds the threshold; otherwise the distance is unchanged.
        band = sakoe_chiba_band(x.size, y.size, radius)
        reference = banded_dtw(x, y, band, return_path=False).distance
        threshold = reference * fraction
        result = banded_dtw(x, y, band, return_path=False,
                            abandon_threshold=threshold)
        if result.abandoned:
            assert reference > threshold
            assert result.distance == np.inf
        else:
            assert result.distance == pytest.approx(reference, abs=1e-12)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=1, max_value=5),
        count=st.integers(min_value=4, max_value=10),
        length=st.integers(min_value=8, max_value=24),
    )
    @settings(max_examples=25, deadline=None)
    def test_early_abandoning_never_changes_the_knn_set(
        self, seed, k, count, length
    ):
        rng = np.random.default_rng(seed)
        series = np.cumsum(rng.normal(size=(count, length)), axis=1)
        query = np.cumsum(rng.normal(size=length))
        abandoning = DistanceEngine("fc,fw", backend="serial")
        plain = DistanceEngine("fc,fw", backend="serial", prune=False,
                               early_abandon=False)
        for row in series:
            abandoning.add(row)
            plain.add(row)
        got = abandoning.query(query, k)
        want = plain.query(query, k)
        assert got.indices == want.indices
        got_distances = [hit.distance for hit in got.hits]
        want_distances = [hit.distance for hit in want.hits]
        assert got_distances == pytest.approx(want_distances, abs=1e-9)
        # The exhaustive reference really did refine everything.
        assert want.stats.dtw_computed == count


class TestConsistencyProperties:
    @given(
        positions=st.lists(
            st.tuples(st.floats(0, 100, allow_nan=False),
                      st.floats(0, 100, allow_nan=False),
                      st.floats(0.5, 8.0, allow_nan=False)),
            min_size=0,
            max_size=10,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_pruning_always_yields_order_consistent_pairs(self, positions):
        from repro.core.features import SalientFeature
        from repro.core.matching import MatchedPair

        pairs = []
        for pos_x, pos_y, sigma in positions:
            fx = SalientFeature(
                position=pos_x, sigma=sigma, scope_start=pos_x - 3 * sigma,
                scope_end=pos_x + 3 * sigma, octave=0, level=0, amplitude=1.0,
                mean_amplitude=1.0, dog_value=0.1, scale_class="fine",
                descriptor=np.array([0.5, 0.5]),
            )
            fy = SalientFeature(
                position=pos_y, sigma=sigma, scope_start=pos_y - 3 * sigma,
                scope_end=pos_y + 3 * sigma, octave=0, level=0, amplitude=1.0,
                mean_amplitude=1.0, dog_value=0.1, scale_class="fine",
                descriptor=np.array([0.5, 0.5]),
            )
            pairs.append(MatchedPair(fx, fy, descriptor_distance=0.1))

        alignment = prune_inconsistent_pairs(pairs)
        # Invariant: the committed boundary lists never cross, i.e. sorting
        # one series' boundaries keeps the other series' boundaries sorted.
        assert list(alignment.boundaries_x) == sorted(alignment.boundaries_x)
        assert list(alignment.boundaries_y) == sorted(alignment.boundaries_y)
        assert len(alignment.boundaries_x) == len(alignment.boundaries_y)
        # The retained set never exceeds the candidate set and each retained
        # pair contributes exactly two boundaries per series.
        assert len(alignment.pairs) <= len(pairs)
        assert len(alignment.boundaries_x) == 2 * len(alignment.pairs)
