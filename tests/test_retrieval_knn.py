"""Tests for top-k retrieval and k-NN label assignment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.retrieval.knn import knn_indices, knn_labels, top_k_indices


class TestTopK:
    def test_returns_k_smallest(self):
        distances = [5.0, 1.0, 3.0, 2.0]
        assert top_k_indices(distances, 2) == [1, 3]

    def test_exclude_skips_the_query(self):
        distances = [0.0, 1.0, 3.0, 2.0]
        assert top_k_indices(distances, 2, exclude=0) == [1, 3]

    def test_ties_broken_by_index(self):
        distances = [1.0, 1.0, 1.0]
        assert top_k_indices(distances, 2) == [0, 1]

    def test_k_capped_at_available_candidates(self):
        assert top_k_indices([1.0, 2.0], 10) == [0, 1]

    def test_invalid_k_rejected(self):
        with pytest.raises(ValidationError):
            top_k_indices([1.0, 2.0], 0)

    def test_two_dimensional_input_rejected(self):
        with pytest.raises(ValidationError):
            top_k_indices(np.zeros((2, 2)), 1)


class TestKnnIndices:
    @pytest.fixture()
    def matrix(self):
        # 4 items: 0 and 1 close, 2 and 3 close.
        return np.array([
            [0.0, 1.0, 8.0, 9.0],
            [1.0, 0.0, 7.0, 8.0],
            [8.0, 7.0, 0.0, 1.0],
            [9.0, 8.0, 1.0, 0.0],
        ])

    def test_nearest_neighbour_excluding_self(self, matrix):
        assert knn_indices(matrix, query=0, k=1) == [1]
        assert knn_indices(matrix, query=3, k=1) == [2]

    def test_including_self(self, matrix):
        assert knn_indices(matrix, query=0, k=1, exclude_self=False) == [0]

    def test_non_square_matrix_rejected(self):
        with pytest.raises(ValidationError):
            knn_indices(np.zeros((2, 3)), 0, 1)


class TestKnnLabels:
    @pytest.fixture()
    def matrix(self):
        return np.array([
            [0.0, 1.0, 2.0, 8.0, 9.0],
            [1.0, 0.0, 2.5, 7.0, 8.0],
            [2.0, 2.5, 0.0, 6.0, 7.0],
            [8.0, 7.0, 6.0, 0.0, 1.0],
            [9.0, 8.0, 7.0, 1.0, 0.0],
        ])

    def test_majority_label_returned(self, matrix):
        labels = [0, 0, 0, 1, 1]
        assert knn_labels(matrix, labels, query=0, k=2) == {0}

    def test_tie_returns_both_labels(self, matrix):
        labels = [0, 0, 1, 1, 1]
        # Neighbours of query 0 at k=2 are items 1 (label 0) and 2 (label 1).
        assert knn_labels(matrix, labels, query=0, k=2) == {0, 1}

    def test_none_labels_ignored(self, matrix):
        labels = [0, None, None, 1, 1]
        assert knn_labels(matrix, labels, query=0, k=2) == set()
        assert knn_labels(matrix, labels, query=0, k=4) == {1}

    def test_all_none_labels_give_empty_set(self, matrix):
        labels = [None] * 5
        assert knn_labels(matrix, labels, query=2, k=3) == set()


def _reference_top_k(distances, k, exclude=None):
    """The pre-vectorisation implementation (per-row Python ``sorted``),
    kept verbatim as the regression oracle for tie handling."""
    arr = np.asarray(distances, dtype=float)
    order = sorted(range(arr.size), key=lambda idx: (arr[idx], idx))
    result = []
    for idx in order:
        if exclude is not None and idx == exclude:
            continue
        result.append(idx)
        if len(result) == k:
            break
    return result


class TestVectorisedRegression:
    """The argpartition path must replicate the old sorted() ordering."""

    def test_random_ties_match_reference(self):
        rng = np.random.default_rng(2024)
        for trial in range(50):
            size = int(rng.integers(1, 40))
            # Heavy ties: distances drawn from a tiny integer alphabet.
            distances = rng.integers(0, 4, size=size).astype(float)
            k = int(rng.integers(1, size + 2))
            exclude = int(rng.integers(0, size)) if rng.random() < 0.5 else None
            assert top_k_indices(distances, k, exclude=exclude) == \
                _reference_top_k(distances, k, exclude=exclude)

    def test_all_equal_distances(self):
        distances = np.ones(17)
        for k in (1, 5, 17, 30):
            assert top_k_indices(distances, k) == _reference_top_k(distances, k)

    def test_batch_matches_reference_rows(self):
        from repro.retrieval.knn import batch_top_k

        rng = np.random.default_rng(7)
        matrix = rng.integers(0, 3, size=(12, 25)).astype(float)
        exclude = [int(rng.integers(0, 25)) if i % 2 else None for i in range(12)]
        batched = batch_top_k(matrix, 6, exclude=exclude)
        for row in range(12):
            assert batched[row] == _reference_top_k(
                matrix[row], 6, exclude=exclude[row]
            )

    def test_exclude_out_of_range_ignored(self):
        # The reference loop never meets an out-of-range exclude; the
        # vectorised path must treat it as "nothing to exclude" too.
        distances = [3.0, 1.0, 2.0]
        assert top_k_indices(distances, 2, exclude=99) == [1, 2]

    def test_nan_distances_sort_last_deterministically(self):
        # Intentional divergence from the historical sorted()-by-key
        # path, whose NaN placement was comparison-order dependent: NaN
        # distances now always rank after every finite distance.
        distances = [np.nan, 1.0, 2.0, np.nan, 0.5]
        assert top_k_indices(distances, 3) == [4, 1, 2]
        assert top_k_indices(distances, 5) == [4, 1, 2, 0, 3]
