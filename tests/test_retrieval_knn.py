"""Tests for top-k retrieval and k-NN label assignment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.retrieval.knn import knn_indices, knn_labels, top_k_indices


class TestTopK:
    def test_returns_k_smallest(self):
        distances = [5.0, 1.0, 3.0, 2.0]
        assert top_k_indices(distances, 2) == [1, 3]

    def test_exclude_skips_the_query(self):
        distances = [0.0, 1.0, 3.0, 2.0]
        assert top_k_indices(distances, 2, exclude=0) == [1, 3]

    def test_ties_broken_by_index(self):
        distances = [1.0, 1.0, 1.0]
        assert top_k_indices(distances, 2) == [0, 1]

    def test_k_capped_at_available_candidates(self):
        assert top_k_indices([1.0, 2.0], 10) == [0, 1]

    def test_invalid_k_rejected(self):
        with pytest.raises(ValidationError):
            top_k_indices([1.0, 2.0], 0)

    def test_two_dimensional_input_rejected(self):
        with pytest.raises(ValidationError):
            top_k_indices(np.zeros((2, 2)), 1)


class TestKnnIndices:
    @pytest.fixture()
    def matrix(self):
        # 4 items: 0 and 1 close, 2 and 3 close.
        return np.array([
            [0.0, 1.0, 8.0, 9.0],
            [1.0, 0.0, 7.0, 8.0],
            [8.0, 7.0, 0.0, 1.0],
            [9.0, 8.0, 1.0, 0.0],
        ])

    def test_nearest_neighbour_excluding_self(self, matrix):
        assert knn_indices(matrix, query=0, k=1) == [1]
        assert knn_indices(matrix, query=3, k=1) == [2]

    def test_including_self(self, matrix):
        assert knn_indices(matrix, query=0, k=1, exclude_self=False) == [0]

    def test_non_square_matrix_rejected(self):
        with pytest.raises(ValidationError):
            knn_indices(np.zeros((2, 3)), 0, 1)


class TestKnnLabels:
    @pytest.fixture()
    def matrix(self):
        return np.array([
            [0.0, 1.0, 2.0, 8.0, 9.0],
            [1.0, 0.0, 2.5, 7.0, 8.0],
            [2.0, 2.5, 0.0, 6.0, 7.0],
            [8.0, 7.0, 6.0, 0.0, 1.0],
            [9.0, 8.0, 7.0, 1.0, 0.0],
        ])

    def test_majority_label_returned(self, matrix):
        labels = [0, 0, 0, 1, 1]
        assert knn_labels(matrix, labels, query=0, k=2) == {0}

    def test_tie_returns_both_labels(self, matrix):
        labels = [0, 0, 1, 1, 1]
        # Neighbours of query 0 at k=2 are items 1 (label 0) and 2 (label 1).
        assert knn_labels(matrix, labels, query=0, k=2) == {0, 1}

    def test_none_labels_ignored(self, matrix):
        labels = [0, None, None, 1, 1]
        assert knn_labels(matrix, labels, query=0, k=2) == set()
        assert knn_labels(matrix, labels, query=0, k=4) == {1}

    def test_all_none_labels_give_empty_set(self, matrix):
        labels = [None] * 5
        assert knn_labels(matrix, labels, query=2, k=3) == set()
