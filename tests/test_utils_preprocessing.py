"""Tests for the preprocessing utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.preprocessing import (
    downsample_by_two,
    gaussian_kernel,
    gaussian_smooth,
    min_max_normalize,
    moving_average,
    resample_linear,
    z_normalize,
)


class TestGaussianKernel:
    def test_kernel_sums_to_one(self):
        for sigma in (0.5, 1.0, 3.0):
            assert gaussian_kernel(sigma).sum() == pytest.approx(1.0)

    def test_kernel_is_symmetric(self):
        kernel = gaussian_kernel(2.0)
        np.testing.assert_allclose(kernel, kernel[::-1])

    def test_kernel_peak_at_center(self):
        kernel = gaussian_kernel(1.5)
        assert np.argmax(kernel) == (kernel.size - 1) // 2

    def test_larger_sigma_gives_larger_kernel(self):
        assert gaussian_kernel(4.0).size > gaussian_kernel(1.0).size

    def test_invalid_sigma_rejected(self):
        with pytest.raises(ValidationError):
            gaussian_kernel(0.0)


class TestGaussianSmooth:
    def test_output_length_matches_input(self):
        series = np.sin(np.linspace(0, 4, 73))
        assert gaussian_smooth(series, 2.0).size == 73

    def test_constant_series_unchanged(self):
        series = np.full(50, 3.3)
        np.testing.assert_allclose(gaussian_smooth(series, 2.0), series, atol=1e-12)

    def test_smoothing_reduces_variance(self):
        rng = np.random.default_rng(1)
        series = rng.normal(size=200)
        smoothed = gaussian_smooth(series, 3.0)
        assert smoothed.var() < series.var()

    def test_larger_sigma_smooths_more(self):
        rng = np.random.default_rng(2)
        series = rng.normal(size=200)
        mild = gaussian_smooth(series, 1.0)
        strong = gaussian_smooth(series, 5.0)
        assert strong.var() < mild.var()

    def test_short_series_does_not_fail(self):
        result = gaussian_smooth([1.0, 5.0, 1.0], 2.0)
        assert result.size == 3
        assert np.all(np.isfinite(result))

    def test_mean_approximately_preserved(self):
        series = np.sin(np.linspace(0, 6, 100)) + 2.0
        assert gaussian_smooth(series, 2.0).mean() == pytest.approx(series.mean(),
                                                                    rel=0.02)


class TestMovingAverage:
    def test_window_one_is_identity(self):
        series = np.arange(10.0)
        np.testing.assert_allclose(moving_average(series, 1), series)

    def test_output_length_preserved(self):
        assert moving_average(np.arange(17.0), 5).size == 17

    def test_averaging_flattens_spikes(self):
        series = np.zeros(21)
        series[10] = 10.0
        averaged = moving_average(series, 5)
        assert averaged.max() < series.max()

    def test_invalid_window_rejected(self):
        with pytest.raises(ValidationError):
            moving_average([1.0, 2.0], 0)


class TestNormalisation:
    def test_z_normalize_zero_mean_unit_std(self):
        rng = np.random.default_rng(3)
        series = rng.normal(5, 3, size=500)
        normalised = z_normalize(series)
        assert normalised.mean() == pytest.approx(0.0, abs=1e-9)
        assert normalised.std() == pytest.approx(1.0, abs=1e-9)

    def test_z_normalize_constant_series_gives_zeros(self):
        np.testing.assert_allclose(z_normalize(np.full(10, 4.2)), 0.0)

    def test_min_max_normalize_range(self):
        series = np.array([2.0, 8.0, 5.0])
        normalised = min_max_normalize(series)
        assert normalised.min() == pytest.approx(0.0)
        assert normalised.max() == pytest.approx(1.0)

    def test_min_max_constant_series_gives_half(self):
        np.testing.assert_allclose(min_max_normalize(np.full(5, 9.0)), 0.5)


class TestResampling:
    def test_resample_preserves_endpoints(self):
        series = np.array([1.0, 5.0, 2.0, 8.0])
        resampled = resample_linear(series, 11)
        assert resampled[0] == pytest.approx(1.0)
        assert resampled[-1] == pytest.approx(8.0)

    def test_resample_to_same_length_is_identity(self):
        series = np.sin(np.linspace(0, 3, 40))
        np.testing.assert_allclose(resample_linear(series, 40), series, atol=1e-12)

    def test_resample_single_value_series(self):
        np.testing.assert_allclose(resample_linear([7.0], 5), np.full(5, 7.0))

    def test_resample_invalid_length_rejected(self):
        with pytest.raises(ValidationError):
            resample_linear([1.0, 2.0], 0)

    def test_downsample_by_two_keeps_every_second_sample(self):
        series = np.arange(10.0)
        np.testing.assert_allclose(downsample_by_two(series), [0, 2, 4, 6, 8])
