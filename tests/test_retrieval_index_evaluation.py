"""Tests for the distance index and the Section 4.2 evaluation criteria."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sdtw import SDTW
from repro.exceptions import ValidationError
from repro.retrieval.evaluation import (
    classification_accuracy,
    cell_gain,
    distance_error,
    evaluate_constraint,
    retrieval_accuracy,
    time_gain,
)
from repro.retrieval.index import PairwiseDistanceMatrix, compute_distance_index


@pytest.fixture(scope="module")
def collection(gun_small):
    return [ts.values[:70] for ts in gun_small.series[:6]]


@pytest.fixture(scope="module")
def labels(gun_small):
    return [ts.label for ts in gun_small.series[:6]]


@pytest.fixture(scope="module")
def reference_index(collection):
    return compute_distance_index(collection, "full")


@pytest.fixture(scope="module")
def constrained_index(collection, fast_config):
    engine = SDTW(fast_config)
    return compute_distance_index(collection, "ac,aw", engine, symmetrize=False)


class TestRetiredAlias:
    def test_distance_index_alias_removed(self):
        import repro.retrieval.index as index_module

        with pytest.raises(AttributeError):
            index_module.DistanceIndex

    def test_package_level_alias_removed(self):
        import repro.retrieval as retrieval

        with pytest.raises(AttributeError):
            retrieval.DistanceIndex

    def test_compute_returns_canonical_class(self, reference_index):
        assert isinstance(reference_index, PairwiseDistanceMatrix)


class TestDistanceIndex:
    def test_reference_matrix_symmetric_zero_diagonal(self, reference_index):
        matrix = reference_index.distances
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 0.0)

    def test_reference_counts_full_grid_cells(self, reference_index, collection):
        n = collection[0].size
        pairs = len(collection) * (len(collection) - 1) // 2
        assert reference_index.cells_filled == pairs * n * n
        assert reference_index.total_cells == reference_index.cells_filled

    def test_constrained_index_fills_fewer_cells(self, constrained_index,
                                                 reference_index):
        assert constrained_index.cells_filled < reference_index.cells_filled
        assert 0.0 < constrained_index.cell_fraction < 1.0

    def test_constrained_distances_upper_bound_reference(self, constrained_index,
                                                         reference_index):
        diff = constrained_index.distances - reference_index.distances
        assert np.all(diff >= -1e-9)

    def test_timing_fields_positive(self, constrained_index):
        assert constrained_index.dp_seconds > 0.0
        assert constrained_index.matching_seconds >= 0.0
        assert constrained_index.compute_seconds > 0.0

    def test_symmetrized_index_is_symmetric(self, collection, fast_config):
        engine = SDTW(fast_config)
        index = compute_distance_index(collection[:4], "ac,fw", engine,
                                       symmetrize=True)
        np.testing.assert_allclose(index.distances, index.distances.T)

    def test_single_series_rejected(self, collection):
        with pytest.raises(ValidationError):
            compute_distance_index(collection[:1], "full")

    def test_progress_callback_invoked(self, collection):
        calls = []
        compute_distance_index(collection[:3], "full",
                               progress=lambda done, total: calls.append((done, total)))
        assert calls[-1] == (3, 3)

    def test_num_series_property(self, reference_index, collection):
        assert reference_index.num_series == len(collection)


class TestRetrievalAccuracy:
    def test_identical_matrices_give_perfect_accuracy(self, reference_index):
        matrix = reference_index.distances
        assert retrieval_accuracy(matrix, matrix, k=3) == pytest.approx(1.0)

    def test_reversed_ranking_gives_low_accuracy(self):
        reference = np.array([
            [0.0, 1.0, 2.0, 3.0],
            [1.0, 0.0, 1.5, 2.5],
            [2.0, 1.5, 0.0, 1.0],
            [3.0, 2.5, 1.0, 0.0],
        ])
        inverted = 4.0 - reference
        np.fill_diagonal(inverted, 0.0)
        assert retrieval_accuracy(reference, inverted, k=1) < 1.0

    def test_accuracy_bounded_by_unit_interval(self, reference_index,
                                               constrained_index):
        value = retrieval_accuracy(reference_index.distances,
                                   constrained_index.distances, k=3)
        assert 0.0 <= value <= 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            retrieval_accuracy(np.zeros((3, 3)), np.zeros((4, 4)), k=1)


class TestDistanceError:
    def test_identical_matrices_give_zero_error(self, reference_index):
        matrix = reference_index.distances
        assert distance_error(matrix, matrix) == pytest.approx(0.0)

    def test_uniform_overestimate_measured_exactly(self):
        reference = np.array([[0.0, 2.0], [2.0, 0.0]])
        estimate = np.array([[0.0, 3.0], [3.0, 0.0]])
        assert distance_error(reference, estimate) == pytest.approx(0.5)

    def test_restricted_pair_subset(self):
        reference = np.array([
            [0.0, 2.0, 4.0],
            [2.0, 0.0, 8.0],
            [4.0, 8.0, 0.0],
        ])
        estimate = reference.copy()
        estimate[0, 1] = estimate[1, 0] = 4.0
        error_all = distance_error(reference, estimate)
        error_pair = distance_error(reference, estimate, pairs=[(0, 1)])
        assert error_pair == pytest.approx(1.0)
        assert error_all == pytest.approx(1.0 / 3.0)

    def test_zero_reference_pairs_skipped(self):
        reference = np.zeros((2, 2))
        estimate = np.ones((2, 2))
        assert distance_error(reference, estimate) == pytest.approx(0.0)

    def test_constrained_error_non_negative(self, reference_index, constrained_index):
        assert distance_error(reference_index.distances,
                              constrained_index.distances) >= 0.0


class TestClassificationAccuracy:
    def test_identical_matrices_give_perfect_accuracy(self, reference_index, labels):
        matrix = reference_index.distances
        assert classification_accuracy(matrix, matrix, labels, k=3) == pytest.approx(1.0)

    def test_wrong_label_count_rejected(self, reference_index):
        with pytest.raises(ValidationError):
            classification_accuracy(reference_index.distances,
                                    reference_index.distances, [0, 1], k=1)

    def test_accuracy_in_unit_interval(self, reference_index, constrained_index,
                                       labels):
        value = classification_accuracy(reference_index.distances,
                                        constrained_index.distances, labels, k=3)
        assert 0.0 <= value <= 1.0


class TestGains:
    def test_time_gain_positive_when_estimate_faster(self):
        assert time_gain(10.0, 4.0) == pytest.approx(0.6)

    def test_time_gain_zero_when_reference_zero(self):
        assert time_gain(0.0, 1.0) == 0.0

    def test_cell_gain_fraction_of_saved_cells(self):
        assert cell_gain(1000, 250) == pytest.approx(0.75)


class TestEvaluateConstraint:
    def test_full_evaluation_reports_all_criteria(self, reference_index,
                                                  constrained_index, labels):
        result = evaluate_constraint(reference_index, constrained_index,
                                     labels=labels, ks=(2, 3))
        assert set(result.retrieval_accuracy) == {2, 3}
        assert set(result.classification_accuracy) == {2, 3}
        assert result.distance_error >= 0.0
        assert result.cell_gain > 0.0
        assert result.reference_seconds > 0.0

    def test_labels_optional(self, reference_index, constrained_index):
        result = evaluate_constraint(reference_index, constrained_index, ks=(2,))
        assert result.classification_accuracy == {}
