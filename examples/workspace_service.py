"""Workspace walkthrough: one facade over batch, indexed and streaming sDTW.

Creates a persistent workspace, fills it from a synthetic collection,
builds the inverted index, answers queries in all three modes (asserting
they agree where they must), reopens the workspace from disk, and
registers a stream pattern — the full service lifecycle in one script.

Run with::

    PYTHONPATH=src python examples/workspace_service.py
"""

from __future__ import annotations

import shutil
import tempfile

import numpy as np

from repro import Workspace, WorkspaceConfig
from repro.datasets import load_dataset
from repro.service import EngineConfig, IndexConfig


def main() -> None:
    root = tempfile.mkdtemp(prefix="repro-ws-")
    path = f"{root}/demo"
    dataset = load_dataset("gun-small")

    config = WorkspaceConfig(
        engine=EngineConfig(constraint="fc,fw"),
        index=IndexConfig(num_codewords=32, num_shards=2, candidate_budget=8),
        default_k=3,
    )

    print(f"creating workspace at {path}")
    with Workspace.create(path, config) as ws:
        ws.add_dataset(dataset)
        ws.build_index()
        print(f"stored {len(ws)} series; index built")

    ws = Workspace.open(path)
    query = dataset[0].values
    exact = ws.query(query, mode="exact", exclude_identifier=dataset[0].identifier)
    indexed = ws.query(query, mode="indexed",
                       exclude_identifier=dataset[0].identifier)
    auto = ws.query(query, exclude_identifier=dataset[0].identifier)

    print(f"exact   -> {exact.ids} (scanned {exact.scan_fraction:.0%})")
    print(f"indexed -> {indexed.ids} (scanned {indexed.scan_fraction:.0%})")
    print(f"auto    -> mode={auto.mode}, ids={auto.ids}")
    assert auto.ids == indexed.ids

    d = ws.pairwise(dataset[0].values, dataset[1].values)
    print(f"pairwise distance: {d.distance:.4f} "
          f"(cell savings {d.cell_savings:.1%})")

    pattern = np.sin(np.linspace(0, 6.28, 48))
    name = ws.stream(pattern, threshold=2.5, mode="spring")
    ws.add_stream("live")
    matches = ws.extend("live", np.concatenate([np.zeros(20), pattern]))
    matches += ws.monitor.finalize("live")
    print(f"stream pattern {name!r}: {len(matches)} match(es)")

    ws.close()
    shutil.rmtree(root)


if __name__ == "__main__":
    main()
