"""Motion-capture-style retrieval with sDTW (Gun-like data).

The paper's first evaluation scenario is top-k retrieval: given a query
series, find the k most similar series in a collection, and measure how
well a constrained DTW reproduces the result set of the optimal DTW.  This
example runs that scenario on the synthetic Gun-like data set (broad,
smooth motion profiles in two classes) and prints, per algorithm, the
retrieval accuracy, the distance error and the work saved.

Run with::

    python examples/motion_retrieval.py [num_series]
"""

from __future__ import annotations

import sys

from repro.core.config import SDTWConfig
from repro.core.sdtw import SDTW
from repro.datasets import make_gun_like
from repro.retrieval.evaluation import (
    distance_error,
    retrieval_accuracy,
    time_gain,
)
from repro.retrieval.index import compute_distance_index


def main(num_series: int = 14) -> None:
    dataset = make_gun_like(num_series=num_series, seed=7)
    values = dataset.values_list()
    print(f"Data set: {dataset.name} — {len(dataset)} series of length "
          f"{dataset.lengths[0]}, {dataset.num_classes} classes")

    print("\nBuilding the full-DTW reference index ...")
    reference = compute_distance_index(values, "full")
    print(f"  reference cost: {reference.compute_seconds:.2f}s, "
          f"{reference.cells_filled} cells")

    algorithms = [
        ("(fc,fw) 6%", "fc,fw", 0.06),
        ("(fc,fw) 20%", "fc,fw", 0.20),
        ("(ac,fw) 10%", "ac,fw", 0.10),
        ("(ac,aw)", "ac,aw", 0.10),
        ("(ac2,aw)", "ac2,aw", 0.10),
    ]

    header = (f"{'algorithm':14s} {'top-5 acc':>10s} {'dist err':>10s} "
              f"{'time gain':>10s} {'cell gain':>10s}")
    print("\n" + header)
    print("-" * len(header))
    for label, constraint, width in algorithms:
        engine = SDTW(SDTWConfig(width_fraction=width))
        index = compute_distance_index(values, constraint, engine,
                                       symmetrize=False)
        accuracy = retrieval_accuracy(reference.distances, index.distances, k=5)
        error = distance_error(reference.distances, index.distances)
        gain = time_gain(reference.compute_seconds, index.compute_seconds)
        cell_gain = 1.0 - index.cells_filled / index.total_cells
        print(f"{label:14s} {accuracy:10.3f} {error:10.3f} "
              f"{gain:10.1%} {cell_gain:10.1%}")

    print("\nAdapting the band to the salient-feature alignment recovers most "
          "of the optimal result sets at a fraction of the DTW work.")


if __name__ == "__main__":
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 14
    main(count)
