"""Word-profile classification with sDTW (50Words-like data).

The paper's classification experiment (Figure 16) asks whether the class
labels a k-NN classifier assigns using a constrained DTW agree with those
assigned using the optimal DTW.  This example runs a small version of that
experiment on the 50Words-like data set (many classes, many small temporal
features) and also reports the plain leave-one-out classification error of
each distance, which is the number a practitioner ultimately cares about.

Run with::

    python examples/word_classification.py [num_series]
"""

from __future__ import annotations

import sys
from collections import Counter

import numpy as np

from repro.core.config import SDTWConfig
from repro.core.sdtw import SDTW
from repro.datasets import make_synthetic_dataset
from repro.retrieval.evaluation import classification_accuracy
from repro.retrieval.index import compute_distance_index
from repro.retrieval.knn import knn_indices


def loo_error(distances: np.ndarray, labels) -> float:
    """Leave-one-out 1-NN classification error rate."""
    mistakes = 0
    for query in range(distances.shape[0]):
        neighbour = knn_indices(distances, query, k=1)[0]
        mistakes += int(labels[neighbour] != labels[query])
    return mistakes / distances.shape[0]


def main(num_series: int = 24) -> None:
    # Word-profile-like data; the class count is scaled down with the sample
    # so every class keeps a few members and leave-one-out k-NN is meaningful
    # (the paper-scale collection has 450 series over 50 classes).
    num_classes = max(2, min(50, num_series // 3))
    dataset = make_synthetic_dataset(
        "50words", length=270, num_series=num_series, num_classes=num_classes,
        seed=7, warp_strength=0.15, warp_knots=6, skew_strength=0.06,
        noise_std=0.015,
    )
    values = dataset.values_list()
    labels = dataset.labels
    class_counts = Counter(labels)
    print(f"Data set: {dataset.name} — {len(dataset)} series, "
          f"{len(class_counts)} classes")

    print("\nBuilding the full-DTW reference index ...")
    reference = compute_distance_index(values, "full")

    algorithms = [
        ("(fc,fw) 10%", "fc,fw", 0.10),
        ("(ac,fw) 10%", "ac,fw", 0.10),
        ("(ac,aw)", "ac,aw", 0.10),
        ("(ac2,aw)", "ac2,aw", 0.10),
    ]

    reference_loo = loo_error(reference.distances, labels)
    print(f"Full DTW leave-one-out 1-NN error: {reference_loo:.2%}\n")

    header = (f"{'algorithm':14s} {'agree@5':>9s} {'agree@10':>9s} "
              f"{'1-NN error':>11s} {'cell gain':>10s}")
    print(header)
    print("-" * len(header))
    for label, constraint, width in algorithms:
        engine = SDTW(SDTWConfig(width_fraction=width))
        index = compute_distance_index(values, constraint, engine,
                                       symmetrize=False)
        agree5 = classification_accuracy(reference.distances, index.distances,
                                         labels, k=5)
        agree10 = classification_accuracy(reference.distances, index.distances,
                                          labels, k=10)
        error = loo_error(index.distances, labels)
        cell_gain = 1.0 - index.cells_filled / index.total_cells
        print(f"{label:14s} {agree5:9.3f} {agree10:9.3f} {error:11.2%} "
              f"{cell_gain:10.1%}")

    print("\nThe adaptive constraints agree with the optimal-DTW labelling on "
          "most queries while skipping most of the DTW grid.")


if __name__ == "__main__":
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    main(count)
