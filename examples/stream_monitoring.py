"""Example: online pattern monitoring over an unbounded stream.

Demonstrates the streaming subsystem end to end:

1. generate a noisy stream with known, time-warped pattern occurrences,
2. register the patterns with a :class:`repro.streaming.StreamMonitor`
   in both SPRING (variable-length subsequence) and sliding-window
   (constrained, cascade-pruned) modes,
3. feed the stream tick by tick, collecting matches as they settle,
4. compare reports against ground truth and inspect the pruning stats.

Run with ``PYTHONPATH=src python examples/stream_monitoring.py`` (or just
``python examples/stream_monitoring.py`` after ``pip install -e .``).
"""

from __future__ import annotations

from repro.core.config import DescriptorConfig, SDTWConfig
from repro.core.sdtw import SDTW
from repro.datasets.generators import embed_pattern_stream, make_stream_patterns
from repro.streaming import StreamMonitor
from repro.utils.rng import rng_from_seed
from repro.utils.tables import format_table


def main() -> None:
    rng = rng_from_seed(11)
    pattern_length = 80
    patterns = make_stream_patterns(2, pattern_length, rng)
    stream, truth = embed_pattern_stream(
        3000, patterns, rng, occurrences_per_pattern=3
    )
    print(f"stream of {stream.size} points with {len(truth)} embedded "
          f"occurrences of {len(patterns)} patterns")

    # Calibrate thresholds from the embedded occurrences (in a real
    # deployment this would come from labelled history).
    config = SDTWConfig(descriptor=DescriptorConfig(num_bins=16))
    sdtw = SDTW(config)
    thresholds = []
    for index, pattern in enumerate(patterns):
        distances = [
            sdtw.distance(
                stream[occ.start: occ.start + pattern_length], pattern, "fc,fw"
            ).distance
            for occ in truth if occ.pattern_index == index
        ]
        thresholds.append(1.3 * max(distances))

    monitor = StreamMonitor(config)
    monitor.add_stream("sensor", capacity=2 * pattern_length + 64)
    # Pattern 0 via the cascaded sliding-window matcher (Sakoe-Chiba
    # constraint), pattern 1 via SPRING subsequence matching.
    monitor.add_pattern(patterns[0], name="sliding-0",
                        threshold=thresholds[0], mode="sliding",
                        constraint="fc,fw")
    monitor.add_pattern(patterns[1], name="spring-1",
                        threshold=thresholds[1], mode="spring")

    # Feed the stream one sample at a time, as a live source would.
    matches = []
    for value in stream:
        matches.extend(monitor.push("sensor", value))
    matches.extend(monitor.finalize("sensor"))

    rows = []
    for match in sorted(matches, key=lambda m: m.start):
        covered = [
            occ for occ in truth
            if occ.hit_by(match.start, match.end)
        ]
        note = (
            f"pattern {covered[0].pattern_index} at {covered[0].start}"
            if covered else "(background)"
        )
        rows.append([match.pattern, match.start, match.end,
                     f"{match.distance:.3f}", note])
    print()
    print(format_table(
        ["matcher", "start", "end", "distance", "ground truth"], rows,
        title="Settled matches",
    ))

    for name in ("sliding-0", "spring-1"):
        stats = monitor.stats(name)
        print()
        print(format_table(["stage", "count", "note"], stats.rows(),
                           title=f"work accounting: {name}"))


if __name__ == "__main__":
    main()
