"""Indexed retrieval: build, persist, reopen and query a salient-feature index.

Demonstrates the two-stage pipeline of :mod:`repro.indexing`:

1. build an :class:`IndexedSearcher` over a synthetic collection
   (k-means codebook over salient-feature descriptors + TF-IDF inverted
   index + the PR 1 distance-engine cascade for exact re-ranking);
2. persist it to a directory of memory-mapped shards and reopen it;
3. answer k-NN queries with a small candidate budget, compare against
   the exhaustive ranking, and show the ``exact=True`` escape hatch.

Run with::

    PYTHONPATH=src python examples/indexed_search.py
"""

from __future__ import annotations

import tempfile

from repro.core.config import DescriptorConfig, SDTWConfig
from repro.datasets.synthetic import make_fiftywords_like
from repro.indexing import CodebookConfig, IndexedSearcher


def main() -> None:
    # A 50-class collection: every class contributes a handful of series.
    dataset = make_fiftywords_like(num_series=150, length=128, seed=11)
    config = SDTWConfig(descriptor=DescriptorConfig(num_bins=16))

    print(f"Building index over {len(dataset)} series ...")
    searcher = IndexedSearcher.from_dataset(
        dataset,
        config=config,
        codebook_config=CodebookConfig.for_sdtw(config, num_codewords=64),
        constraint="fc,fw",
        candidate_budget=40,
    )
    print(f"codebook: {searcher.codebook.num_codewords} codewords, "
          f"postings: {searcher.index.num_postings}")

    with tempfile.TemporaryDirectory() as directory:
        searcher.save(directory)
        reopened = IndexedSearcher.open(
            directory, config=config, constraint="fc,fw", candidate_budget=40,
        )
        print(f"reopened from {directory} "
              f"(memory-mapped: {reopened.index.is_memory_mapped})\n")

        query = dataset[0].values
        indexed = reopened.query(query, k=5, exclude_identifier=dataset[0].identifier)
        print(f"indexed query: scanned {indexed.candidates_generated} of "
              f"{len(reopened)} series "
              f"({indexed.elapsed_seconds * 1000:.1f} ms)")
        for hit in indexed.hits:
            print(f"  {hit.identifier:>18s}  distance={hit.distance:8.4f} "
                  f"label={hit.label}")

        exact = reopened.query(query, k=5, exact=True,
                               exclude_identifier=dataset[0].identifier)
        print(f"\nexact escape hatch: scanned every series "
              f"({exact.rerank_seconds * 1000:.1f} ms)")
        agreement = len(set(indexed.indices) & set(exact.indices))
        print(f"overlap with exhaustive top-5: {agreement}/5")

        report = reopened.recall_at_k(
            [dataset[i].values for i in range(8)], k=5,
            exclude_identifiers=[dataset[i].identifier for i in range(8)],
        )
        print(f"\nrecall@5 over 8 queries: {report.mean_recall:.3f} "
              f"(C={report.candidate_budget}, speedup {report.speedup:.1f}x)")


if __name__ == "__main__":
    main()
