"""Descriptor-length study (the paper's Figure 18, in miniature).

The salient-feature descriptor length controls how much temporal context
each feature carries: very short descriptors cannot disambiguate similar
features, while long descriptors add context (and matching cost).  This
example sweeps a few descriptor lengths on one data set and reports how
distance error, top-k agreement, and grid savings respond for the adaptive
constraint families.

Run with::

    python examples/descriptor_length_study.py [dataset] [num_series]
"""

from __future__ import annotations

import sys

from repro.experiments.fig18 import adaptive_algorithms, run_fig18


def main(dataset: str = "trace", num_series: int = 10) -> None:
    lengths = (4, 16, 64)
    print(f"Sweeping descriptor lengths {lengths} on {dataset!r} "
          f"({num_series} series)\n")
    result = run_fig18(
        dataset_names=(dataset,),
        num_series=num_series,
        descriptor_lengths=lengths,
        algorithms=adaptive_algorithms(),
        k=5,
    )
    print(result.to_text())

    # Highlight the (ac,aw) trade-off across descriptor lengths.
    print("\n(ac,aw) summary:")
    for row in result.rows:
        if row[2] == "(ac,aw)":
            print(f"  {row[1]:>4d} bins: distance error {row[3]:.3f}, "
                  f"top-5 agreement {row[4]:.3f}, cell gain {row[6]:.1%}")
    print("\nModerate-to-long descriptors give the adaptive algorithms enough "
          "temporal context to align features reliably.")


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "trace"
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    main(name, count)
