"""Batch retrieval through the cascaded distance engine.

The paper's time-gain argument only pays off at retrieval scale: one query
against a whole collection, where most candidate pairs should be discarded
without ever running a dynamic program.  This example

1. builds a labelled synthetic collection and a :class:`DistanceEngine`
   for each execution backend (serial / vectorized / multiprocessing),
2. answers a batch of leave-one-out k-NN queries in a single call,
3. shows that every backend returns *identical* rankings while doing very
   different amounts of per-stage work, and
4. prints the cascade accounting (LB_Kim -> LB_Keogh -> early-abandoning
   banded DTW) and the Figure 17 style time breakdown per backend.

Run with::

    python examples/batch_retrieval.py [num_series]
"""

from __future__ import annotations

import sys

from repro.datasets import make_gun_like
from repro.engine import DistanceEngine
from repro.utils.tables import format_table


def main(num_series: int = 24) -> None:
    dataset = make_gun_like(num_series=num_series, seed=19)
    print(f"Data set: {dataset.name}, {len(dataset)} series, "
          f"{dataset.num_classes} classes")

    num_queries = min(8, len(dataset))
    queries = [dataset[i].values for i in range(num_queries)]

    rankings = {}
    rows = []
    excludes = None
    for backend, workers in (("serial", None), ("vectorized", None),
                             ("multiprocessing", 2)):
        engine = DistanceEngine("fc,fw", backend=backend, num_workers=workers)
        identifiers = engine.add_dataset(dataset)
        excludes = identifiers[:num_queries]
        engine.prepare()  # one-time cost: profiles, envelopes, features
        result = engine.knn(queries, k=5, exclude_identifiers=excludes)
        stats = result.stats
        rankings[backend] = result.rankings()
        rows.append([
            backend,
            stats.candidates,
            stats.pruned_lb_kim,
            stats.pruned_lb_keogh,
            stats.dtw_abandoned,
            stats.dtw_computed,
            f"{stats.cell_gain:.1%}",
            result.elapsed_seconds,
        ])

    print()
    print(format_table(
        ["backend", "candidates", "LB_Kim", "LB_Keogh", "abandoned",
         "completed", "cells saved", "seconds"],
        rows,
        title="Cascade work per backend (identical results)",
    ))

    assert rankings["serial"] == rankings["vectorized"] == rankings["multiprocessing"]
    print("\nAll backends returned identical rankings. First query's hits:")
    engine = DistanceEngine("fc,fw", backend="vectorized")
    engine.add_dataset(dataset)
    first = engine.query(queries[0], 5, exclude_identifier=excludes[0])
    for rank, hit in enumerate(first.hits, start=1):
        print(f"  {rank}. {hit.identifier} (class {hit.label}) "
              f"distance={hit.distance:.4f}")

    breakdown = first.stats
    print("\nTime breakdown of that query (Figure 17 phases):")
    print(f"  lower bounds        {breakdown.bound_seconds:.6f}s")
    print(f"  feature extraction  {breakdown.extract_seconds:.6f}s")
    print(f"  matching + pruning  {breakdown.matching_seconds:.6f}s")
    print(f"  dynamic programming {breakdown.dp_seconds:.6f}s")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 24)
