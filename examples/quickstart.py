"""Quickstart: compute sDTW distances between two warped time series.

This example builds two series that share the same underlying features but
are locally warped in time, then compares the optimal DTW distance against
the constrained sDTW distances of every constraint family the paper
proposes, reporting distance, error, and the share of the DTW grid each
algorithm actually filled.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import SDTW, dtw


def make_pair():
    """Two series with the same three temporal features, warped differently."""
    t = np.linspace(0.0, 1.0, 220)
    x = (
        np.exp(-((t - 0.22) ** 2) / 0.0015)
        + 0.8 * np.exp(-((t - 0.55) ** 2) / 0.006)
        - 0.5 * np.exp(-((t - 0.85) ** 2) / 0.0012)
    )
    t2 = np.linspace(0.0, 1.0, 260)
    y = (
        np.exp(-((t2 - 0.30) ** 2) / 0.0015)
        + 0.8 * np.exp(-((t2 - 0.52) ** 2) / 0.006)
        - 0.5 * np.exp(-((t2 - 0.80) ** 2) / 0.0012)
    )
    rng = np.random.default_rng(0)
    return x + rng.normal(0, 0.01, x.size), y + rng.normal(0, 0.01, y.size)


def main() -> None:
    x, y = make_pair()
    print(f"Series lengths: |X| = {x.size}, |Y| = {y.size}")

    exact = dtw(x, y)
    print(f"\nOptimal DTW distance : {exact.distance:.4f} "
          f"({exact.cells_filled} grid cells filled)\n")

    engine = SDTW()

    # Inspect the salient-feature alignment the constraints are built from.
    alignment = engine.align(x, y)
    print(f"Salient features     : {len(alignment.features_x)} on X, "
          f"{len(alignment.features_y)} on Y")
    print(f"Dominant matches     : {len(alignment.matches)}")
    print(f"Consistent matches   : {alignment.consistent.num_pairs}")
    print(f"Corresponding intervals: {alignment.partition.num_intervals}\n")

    header = f"{'constraint':10s} {'distance':>10s} {'error':>8s} {'cells':>8s} {'saved':>7s}"
    print(header)
    print("-" * len(header))
    for constraint in ("fc,fw", "fc,aw", "ac,fw", "ac,aw", "ac2,aw"):
        result = engine.distance(x, y, constraint=constraint)
        error = (result.distance - exact.distance) / exact.distance
        print(f"{constraint:10s} {result.distance:10.4f} {error:8.2%} "
              f"{result.cells_filled:8d} {result.cell_savings:7.1%}")

    print("\nThe adaptive-core constraints track the optimal distance closely "
          "while filling a fraction of the grid.")


if __name__ == "__main__":
    main()
