"""Persistent salient features + query-by-example search.

Section 3.4 of the paper stresses that salient-feature extraction is a
one-time cost per series: features can be stored alongside the data and
reused for every subsequent comparison.  This example

1. builds a feature store for a Gun-like collection and saves it to disk,
2. reloads the store to show the features round-trip,
3. runs leave-one-out k-NN queries through a :class:`Workspace` in exact
   mode (LB_Keogh pre-filter + constrained sDTW refinement), and
4. reports classification quality and how much work the two pruning layers
   (lower bound + locally relevant band) saved.

Run with::

    python examples/feature_store_and_search.py [num_series]
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro.core.config import SDTWConfig
from repro.datasets import make_gun_like
from repro.retrieval.feature_store import FeatureStore
from repro.service import EngineConfig, Workspace, WorkspaceConfig
from repro.utils.plotting import sparkline


def classify(workspace: Workspace, values, k: int, *,
             exclude_identifier=None):
    """Majority-vote k-NN label, ties broken by the closest neighbour."""
    result = workspace.query(values, k, mode="exact",
                             exclude_identifier=exclude_identifier)
    votes: dict = {}
    for hit in result.hits:
        if hit.label is not None:
            votes[hit.label] = votes.get(hit.label, 0) + 1
    if not votes:
        return None, result
    top = max(votes.values())
    tied = {label for label, count in votes.items() if count == top}
    winner = next(hit.label for hit in result.hits if hit.label in tied)
    return winner, result


def main(num_series: int = 16) -> None:
    dataset = make_gun_like(num_series=num_series, seed=11)
    print(f"Data set: {dataset.name}, {len(dataset)} series, "
          f"{dataset.num_classes} classes")
    print("Example members:")
    for ts in dataset.series[:3]:
        print(f"  {ts.identifier} (class {ts.label})  {sparkline(ts.values)}")

    config = SDTWConfig()

    # 1. Build and persist the feature store.
    store = FeatureStore(config=config)
    store.add_dataset(dataset)
    store_path = os.path.join(tempfile.gettempdir(), "sdtw_feature_store.npz")
    store.save(store_path)
    size_kb = os.path.getsize(store_path) / 1024.0
    total_features = sum(len(store.features_of(i)) for i in store.identifiers())
    print(f"\nStored {total_features} salient features for {len(store)} series "
          f"in {store_path} ({size_kb:.0f} KiB)")

    # 2. Reload the store: extraction cost is paid once, not per query.
    reloaded = FeatureStore.load(store_path, config=config)
    print(f"Reloaded {len(reloaded)} series' features from disk")

    # 3. Leave-one-out classification through the Workspace facade
    # (exact mode: LB cascade + constrained sDTW refinement).
    workspace = Workspace(WorkspaceConfig(
        sdtw=config, engine=EngineConfig(constraint="ac,aw")))
    workspace.add_dataset(dataset)
    correct = 0
    pruned_total = 0
    computed_total = 0
    for ts in dataset:
        predicted, result = classify(workspace, ts.values, 3,
                                     exclude_identifier=ts.identifier)
        correct += int(predicted == ts.label)
        pruned_total += result.stats.pruned
        computed_total += result.stats.refined

    total_queries = len(dataset)
    print(f"\nLeave-one-out 3-NN accuracy : {correct / total_queries:.1%}")
    print(f"Candidates pruned by LB_Keogh: {pruned_total} "
          f"(computed {computed_total} constrained distances)")
    print("\nThe lower bound removes hopeless candidates cheaply; the locally "
          "relevant band then keeps each remaining comparison far below the "
          "full O(NM) cost.")


if __name__ == "__main__":
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    main(count)
