"""repro — a reproduction of the sDTW system (Candan et al., VLDB 2012).

The library computes dynamic time warping (DTW) distances under *locally
relevant* constraints derived from salient-feature alignments:

1. SIFT-like salient features are extracted from each 1-D time series
   (:mod:`repro.core.features`).
2. Features of two series are matched and temporally inconsistent matches
   are pruned (:mod:`repro.core.matching`, :mod:`repro.core.consistency`).
3. The consistent alignment induces corresponding interval partitions that
   shape an adaptive search band for the DTW dynamic program
   (:mod:`repro.core.bands`, :mod:`repro.dtw.banded`).

Quick start
-----------
The :class:`Workspace` facade is the front door to the whole system —
batch k-NN, indexed search and stream monitoring behind one object:

>>> import numpy as np
>>> from repro import Workspace
>>> ws = Workspace()                     # in-memory; Workspace.create(path) persists
>>> for phase in (0.0, 0.3, 0.9):
...     _ = ws.add(np.sin(np.linspace(0, 6.28, 100) - phase))
>>> result = ws.query(np.sin(np.linspace(0, 6.28, 100)), k=1)
>>> result.ids
('series-00000',)

The same query surface serves over the network: ``repro-sdtw serve``
puts a workspace behind an HTTP front end (:mod:`repro.server`), with
:class:`RemoteWorkspace` as the drop-in client and
:class:`ShardedWorkspace` scatter-gathering a hash-partitioned shard
set bit-identically to a single workspace (see docs/API.md for the
wire contract).

Pairwise distances remain available directly:

>>> from repro import SDTW
>>> x = np.sin(np.linspace(0, 6.28, 100))
>>> y = np.sin(np.linspace(0, 6.28, 120) - 0.3)
>>> engine = SDTW()
>>> result = engine.distance(x, y, constraint="ac,aw")
>>> result.cell_savings >= 0.0
True

The :mod:`repro.experiments` package regenerates every table and figure of
the paper's evaluation section; see EXPERIMENTS.md in the repository root.

Naming note: the canonical *search index* classes (:class:`IndexedSearcher`
and friends) live in :mod:`repro.indexing` and are re-exported here; the
pairwise distance matrix of :mod:`repro.retrieval` is
``PairwiseDistanceMatrix`` (its pre-rename ``DistanceIndex`` alias has
been removed; see the README migration table).
"""

from .core.config import (
    DEFAULT_CONFIG,
    DescriptorConfig,
    MatchingConfig,
    SDTWConfig,
    ScaleSpaceConfig,
)
from .core.features import SalientFeature, extract_salient_features
from .core.sdtw import SDTW, SDTWAlignment, SDTWResult, sdtw_distance
from .dtw.full import DTWResult, dtw, dtw_distance
from .dtw.banded import banded_dtw
from .dtw.constraints import itakura_band, sakoe_chiba_band
from .engine import BatchKNNResult, DistanceEngine, EngineStats
from .streaming import (
    IncrementalExtractor,
    SpringMatcher,
    StreamBuffer,
    StreamMatch,
    StreamMonitor,
    StreamStats,
)
from .indexing import (
    Codebook,
    CodebookConfig,
    IndexReader,
    IndexWriter,
    IndexedSearchResult,
    IndexedSearcher,
    InvertedIndex,
)
from .service import (
    EngineConfig,
    IndexConfig,
    ServingConfig,
    Workspace,
    WorkspaceConfig,
    WorkspaceQueryResult,
)
from .server import RemoteWorkspace, ShardedWorkspace, WorkspaceServer
from .telemetry import MetricsRegistry, QueryTrace, TraceRing
from .exceptions import (
    BandError,
    ConfigurationError,
    DatasetError,
    EmptySeriesError,
    ExperimentError,
    RemoteWorkspaceError,
    ReproError,
    ServerError,
    ValidationError,
    WorkspaceError,
)

__version__ = "1.9.0"

__all__ = [
    "BandError",
    "BatchKNNResult",
    "Codebook",
    "CodebookConfig",
    "ConfigurationError",
    "DEFAULT_CONFIG",
    "DatasetError",
    "DescriptorConfig",
    "DistanceEngine",
    "DTWResult",
    "EmptySeriesError",
    "EngineConfig",
    "EngineStats",
    "ExperimentError",
    "IncrementalExtractor",
    "IndexConfig",
    "IndexReader",
    "IndexWriter",
    "IndexedSearchResult",
    "IndexedSearcher",
    "InvertedIndex",
    "MatchingConfig",
    "MetricsRegistry",
    "QueryTrace",
    "RemoteWorkspace",
    "RemoteWorkspaceError",
    "ReproError",
    "SDTW",
    "SDTWAlignment",
    "SDTWConfig",
    "SDTWResult",
    "SalientFeature",
    "ScaleSpaceConfig",
    "ServerError",
    "ServingConfig",
    "ShardedWorkspace",
    "SpringMatcher",
    "StreamBuffer",
    "StreamMatch",
    "StreamMonitor",
    "StreamStats",
    "TraceRing",
    "ValidationError",
    "Workspace",
    "WorkspaceConfig",
    "WorkspaceError",
    "WorkspaceQueryResult",
    "WorkspaceServer",
    "__version__",
    "banded_dtw",
    "dtw",
    "dtw_distance",
    "extract_salient_features",
    "itakura_band",
    "sakoe_chiba_band",
    "sdtw_distance",
]
