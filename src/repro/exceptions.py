"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An input value failed validation (wrong shape, dtype, or range)."""


class EmptySeriesError(ValidationError):
    """A time series with zero elements was supplied where data is required."""


class ConfigurationError(ReproError, ValueError):
    """A configuration object holds an inconsistent or out-of-range value."""


class BandError(ReproError):
    """A constraint band is malformed (e.g. it disconnects the DTW grid)."""


class DatasetError(ReproError):
    """A dataset could not be generated, parsed, or validated."""


class ExperimentError(ReproError):
    """An experiment harness was invoked with an unknown or invalid target."""


class AnalysisError(ReproError):
    """A static-analysis run could not complete (bad baseline file,
    unknown checker selector, unreadable input path)."""


class WorkspaceError(ReproError):
    """A :class:`repro.service.Workspace` operation failed (bad layout,
    missing manifest, stale index, or use after close).

    Errors raised by a live workspace carry its flight record — a
    JSON-safe bundle of recent events, traces, metrics and config (see
    :meth:`repro.service.Workspace.dump_flight_record`) — on
    :attr:`flight_record`, so the state preceding the failure travels
    with the exception.  ``None`` when no workspace context existed
    (manifest parse failures, pre-construction errors) or diagnostics
    capture itself failed.
    """

    flight_record = None


class ServerError(ReproError):
    """An HTTP serving-tier failure (malformed wire payload, unreachable
    shard, server lifecycle misuse).  Client-side transport failures of
    :class:`repro.server.RemoteWorkspace` raise the
    :class:`RemoteWorkspaceError` subclass so callers can distinguish
    "the workspace said no" (:class:`WorkspaceError`, re-raised from the
    server's error payload) from "the wire is down"."""


class RemoteWorkspaceError(ServerError):
    """A :class:`repro.server.RemoteWorkspace` request could not reach
    its server or got a response that is not part of the wire contract."""
