"""Internal input-validation helpers shared across the library.

These helpers centralise the conversion of user-supplied sequences into
canonical 1-D ``float64`` numpy arrays and the common range checks used by
the public API.  They are internal (underscore module) but thoroughly
tested because every public entry point funnels through them.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

from .exceptions import EmptySeriesError, ValidationError

ArrayLike = Union[Sequence[float], np.ndarray, Iterable[float]]


def as_series(values: ArrayLike, name: str = "series") -> np.ndarray:
    """Convert *values* to a 1-D ``float64`` array, validating its contents.

    Parameters
    ----------
    values:
        Any iterable of numbers (list, tuple, numpy array, generator).
    name:
        Name used in error messages so callers can identify which argument
        failed validation.

    Returns
    -------
    numpy.ndarray
        A contiguous 1-D float64 copy of the input.

    Raises
    ------
    EmptySeriesError
        If the input contains no elements.
    ValidationError
        If the input is not one-dimensional or contains NaN/Inf values.
    """
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                     dtype=float)
    if arr.ndim != 1:
        raise ValidationError(
            f"{name} must be one-dimensional, got shape {arr.shape}"
        )
    if arr.size == 0:
        raise EmptySeriesError(f"{name} must contain at least one element")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    # Always return an owned copy so callers can never mutate user data (and
    # vice versa) through the validated array.
    return np.array(arr, dtype=float, copy=True, order="C")


def check_positive(value: float, name: str) -> float:
    """Return *value* if it is strictly positive, else raise ValidationError."""
    if not value > 0:
        raise ValidationError(f"{name} must be strictly positive, got {value!r}")
    return float(value)


def check_non_negative(value: float, name: str) -> float:
    """Return *value* if it is >= 0, else raise ValidationError."""
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value!r}")
    return float(value)


def check_fraction(value: float, name: str, *, inclusive: bool = True) -> float:
    """Validate that *value* lies in [0, 1] (or (0, 1) if not inclusive)."""
    value = float(value)
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValidationError(f"{name} must lie in [0, 1], got {value!r}")
    else:
        if not 0.0 < value < 1.0:
            raise ValidationError(f"{name} must lie in (0, 1), got {value!r}")
    return value


def check_int_at_least(value: int, minimum: int, name: str) -> int:
    """Validate that *value* is an integer >= *minimum*."""
    if int(value) != value:
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_probability_vector(values: ArrayLike, name: str = "weights") -> np.ndarray:
    """Validate a non-negative vector that sums to a positive total; normalise it."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValidationError(f"{name} must be a non-empty 1-D vector")
    if np.any(arr < 0) or not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} must be non-negative and finite")
    total = arr.sum()
    if total <= 0:
        raise ValidationError(f"{name} must have a positive sum")
    return arr / total
