"""Query-by-example search: a deprecated shim over the Workspace facade.

:class:`TimeSeriesSearchEngine` was the original retrieval-facing front
end of the batch distance engine.  The service layer's
:class:`repro.service.Workspace` now owns that role — one stateful
facade over the exact engine, the inverted index and the stream monitor,
with a persistent on-disk layout and a declarative configuration — so
this class survives only as a thin compatibility shim: construction
emits a :class:`DeprecationWarning` and every call delegates to an
in-memory ``Workspace`` running in exact mode.  Query results are
bit-identical to the old implementation (both delegate to the same
:class:`~repro.engine.DistanceEngine` cascade), with one behavioural
narrowing: the Workspace layout is identifier-keyed, so explicitly
repeating a stored identifier — which the bare engine tolerated — now
raises :class:`~repro.exceptions.ValidationError` at ``add`` time.

Migration::

    engine = TimeSeriesSearchEngine("ac,aw", config)   # old
    engine.add_dataset(ds); engine.query(q, k=5)

    ws = Workspace(WorkspaceConfig(                    # new
        sdtw=config, engine=EngineConfig(constraint="ac,aw")))
    ws.add_dataset(ds); ws.query(q, k=5, mode="exact")
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import as_series
from ..core.config import SDTWConfig
from ..datasets.base import Dataset
from ..engine import DistanceEngine, QueryResult
from ..exceptions import DatasetError, ValidationError, WorkspaceError


@dataclass(frozen=True)
class SearchHit:
    """One retrieved series.

    Attributes
    ----------
    identifier:
        Identifier of the stored series.
    index:
        Position of the series in the engine's insertion order.
    distance:
        The (constrained) DTW distance to the query.
    label:
        The stored class label, if any.
    """

    identifier: str
    index: int
    distance: float
    label: Optional[int] = None


@dataclass(frozen=True)
class SearchResult:
    """Result of a k-NN query.

    Attributes
    ----------
    hits:
        The k nearest stored series, ordered by distance.
    candidates_pruned:
        Number of stored series skipped because an LB_Kim or LB_Keogh
        lower bound exceeded the running k-th best distance.
    distances_computed:
        Number of (constrained) DTW refinements started (including those
        abandoned early once they provably exceeded the k-th best).
    cells_filled:
        Total DTW grid cells filled across the refinement step.
    elapsed_seconds:
        Wall-clock time of the whole query.
    """

    hits: Tuple[SearchHit, ...]
    candidates_pruned: int
    distances_computed: int
    cells_filled: int
    elapsed_seconds: float

    @property
    def labels(self) -> List[Optional[int]]:
        """Labels of the hits, in rank order."""
        return [hit.label for hit in self.hits]


def _to_search_result(result: QueryResult) -> SearchResult:
    stats = result.stats
    return SearchResult(
        hits=tuple(
            SearchHit(
                identifier=hit.identifier,
                index=hit.index,
                distance=hit.distance,
                label=hit.label,
            )
            for hit in result.hits
        ),
        candidates_pruned=stats.pruned,
        distances_computed=stats.refined,
        cells_filled=stats.cells_filled,
        elapsed_seconds=stats.elapsed_seconds,
    )


class TimeSeriesSearchEngine:
    """Deprecated: use :class:`repro.service.Workspace` instead.

    k-NN search over a collection of time series using sDTW distances,
    delegating to an in-memory Workspace.  Identifiers must be unique
    (the Workspace layout is identifier-keyed).

    Parameters
    ----------
    constraint:
        Constraint family used for the refinement distances (``"full"``
        gives exact DTW; any sDTW label gives the constrained distance;
        ``"itakura"`` the parallelogram baseline).
    config:
        sDTW configuration (band widths, descriptor length, …).
    lb_radius_fraction:
        Kept for API compatibility with the sequential engine: any value
        in ``(0, 1]`` enables the lower-bound cascade; ``None`` disables
        lower-bound pruning entirely.
    backend:
        Execution backend: ``"serial"`` (default), ``"vectorized"`` or
        ``"multiprocessing"``.
    num_workers:
        Worker processes for the multiprocessing backend.
    early_abandon:
        Whether refinements may stop once they provably exceed the running
        k-th best distance (exact either way).
    """

    def __init__(
        self,
        constraint: str = "ac,aw",
        config: Optional[SDTWConfig] = None,
        lb_radius_fraction: Optional[float] = 0.10,
        *,
        backend: str = "serial",
        num_workers: Optional[int] = None,
        early_abandon: bool = True,
    ) -> None:
        warnings.warn(
            "TimeSeriesSearchEngine is deprecated; use "
            "repro.service.Workspace (exact mode) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if lb_radius_fraction is not None and not 0 < lb_radius_fraction <= 1:
            raise ValidationError("lb_radius_fraction must lie in (0, 1]")
        # Imported lazily: repro.service imports this package's siblings.
        from ..service import EngineConfig, Workspace, WorkspaceConfig

        self.constraint = constraint
        self.config = config if config is not None else SDTWConfig()
        self.lb_radius_fraction = lb_radius_fraction
        self._workspace = Workspace(
            WorkspaceConfig(
                sdtw=self.config,
                engine=EngineConfig(
                    constraint=constraint,
                    backend=backend,
                    num_workers=num_workers,
                    prune=lb_radius_fraction is not None,
                    early_abandon=early_abandon,
                ),
            )
        )

    @property
    def engine(self) -> DistanceEngine:
        """The underlying serving :class:`DistanceEngine`."""
        return self._workspace.engine

    # ------------------------------------------------------------------ #
    # Indexing
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._workspace)

    def add(
        self,
        values: Union[Sequence[float], np.ndarray],
        identifier: Optional[str] = None,
        label: Optional[int] = None,
    ) -> str:
        """Add one series to the searchable collection."""
        return self._workspace.add(values, identifier=identifier, label=label)

    def add_dataset(self, dataset: Dataset) -> List[str]:
        """Add every series of a data set (labels preserved).

        Returns the stored identifiers in insertion order.
        """
        return self._workspace.add_dataset(dataset)

    # ------------------------------------------------------------------ #
    # Querying
    # ------------------------------------------------------------------ #
    def query(
        self,
        values: Union[Sequence[float], np.ndarray],
        k: int = 5,
        *,
        exclude_identifier: Optional[str] = None,
    ) -> SearchResult:
        """Find the k nearest stored series to a query series.

        Parameters
        ----------
        values:
            The query series.
        k:
            Number of neighbours to return.
        exclude_identifier:
            Skip the stored series with this identifier (used by
            leave-one-out evaluations when the query itself is stored).
        """
        query = as_series(values, "query")
        try:
            batch = self._workspace.knn(
                [query], k, exclude_identifiers=[exclude_identifier]
            )
        except WorkspaceError as exc:
            # The Workspace rejects empty-roster queries with its own
            # error type; this shim's documented contract predates it.
            raise DatasetError(str(exc)) from exc
        return _to_search_result(batch.results[0])

    def batch_query(
        self,
        queries: Sequence[Union[Sequence[float], np.ndarray]],
        k: int = 5,
        *,
        exclude_identifiers: Optional[Sequence[Optional[str]]] = None,
    ) -> List[SearchResult]:
        """Answer many queries in one engine call.

        With the multiprocessing backend the queries are fanned out across
        worker processes; results arrive in query order regardless.
        """
        try:
            batch = self._workspace.knn(
                queries, k, exclude_identifiers=exclude_identifiers
            )
        except WorkspaceError as exc:
            raise DatasetError(str(exc)) from exc
        return [_to_search_result(result) for result in batch.results]

    def build_index(
        self,
        *,
        codebook_config=None,
        candidate_budget: int = 100,
        num_shards: int = 4,
    ):
        """Build an :class:`repro.indexing.IndexedSearcher` over this collection.

        Prefer :meth:`repro.service.Workspace.build_index`, which keeps
        the index inside the facade.  This shim builds and returns a
        stand-alone searcher over the current serving engine, like the
        historical implementation.
        """
        # Imported lazily: repro.indexing imports the engine machinery.
        from ..indexing import IndexedSearcher

        return IndexedSearcher.from_engine(
            self._workspace.engine,
            config=self.config,
            codebook_config=codebook_config,
            num_shards=num_shards,
            candidate_budget=candidate_budget,
        )

    def classify(
        self,
        values: Union[Sequence[float], np.ndarray],
        k: int = 5,
        *,
        exclude_identifier: Optional[str] = None,
    ) -> Optional[int]:
        """Majority-vote k-NN class label for a query series.

        Ties are broken in favour of the label of the closest neighbour
        among the tied labels; returns ``None`` when no stored series has a
        label.
        """
        result = self.query(values, k, exclude_identifier=exclude_identifier)
        votes: dict = {}
        for hit in result.hits:
            if hit.label is None:
                continue
            votes[hit.label] = votes.get(hit.label, 0) + 1
        if not votes:
            return None
        top = max(votes.values())
        tied = {label for label, count in votes.items() if count == top}
        for hit in result.hits:
            if hit.label in tied:
                return hit.label
        return None
