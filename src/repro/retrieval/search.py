"""Query-by-example time-series search with lower-bound pruning + sDTW.

The paper motivates sDTW with retrieval: given a query series, find its k
nearest neighbours in a collection under DTW without paying the full
O(NM)-per-pair cost.  :class:`TimeSeriesSearchEngine` combines the two
classic ingredients with the paper's contribution:

1. a cheap LB_Keogh lower bound ranks candidates and prunes those whose
   bound already exceeds the current k-th best distance (Keogh, VLDB 2002);
2. the surviving candidates are refined with a constrained sDTW distance
   (any of the paper's constraint families, or the exact DTW).

The engine reports how many candidates the lower bound eliminated and how
many DTW grid cells were filled, so callers can see both pruning effects
compose.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import as_series, check_int_at_least
from ..core.config import SDTWConfig
from ..core.sdtw import SDTW
from ..datasets.base import Dataset
from ..dtw.lower_bounds import keogh_envelope, lb_keogh
from ..exceptions import DatasetError, ValidationError


@dataclass(frozen=True)
class SearchHit:
    """One retrieved series.

    Attributes
    ----------
    identifier:
        Identifier of the stored series.
    index:
        Position of the series in the engine's insertion order.
    distance:
        The (constrained) DTW distance to the query.
    label:
        The stored class label, if any.
    """

    identifier: str
    index: int
    distance: float
    label: Optional[int] = None


@dataclass(frozen=True)
class SearchResult:
    """Result of a k-NN query.

    Attributes
    ----------
    hits:
        The k nearest stored series, ordered by distance.
    candidates_pruned:
        Number of stored series skipped because their LB_Keogh lower bound
        exceeded the running k-th best distance.
    distances_computed:
        Number of (constrained) DTW computations actually performed.
    cells_filled:
        Total DTW grid cells filled across the refinement step.
    elapsed_seconds:
        Wall-clock time of the whole query.
    """

    hits: Tuple[SearchHit, ...]
    candidates_pruned: int
    distances_computed: int
    cells_filled: int
    elapsed_seconds: float

    @property
    def labels(self) -> List[Optional[int]]:
        """Labels of the hits, in rank order."""
        return [hit.label for hit in self.hits]


@dataclass
class _StoredSeries:
    identifier: str
    values: np.ndarray
    label: Optional[int]
    envelope: Tuple[np.ndarray, np.ndarray]


class TimeSeriesSearchEngine:
    """k-NN search over a collection of time series using sDTW distances.

    Parameters
    ----------
    constraint:
        Constraint family used for the refinement distances (``"full"``
        gives exact DTW; any sDTW label gives the constrained distance).
    config:
        sDTW configuration (band widths, descriptor length, …).
    lb_radius_fraction:
        Sakoe–Chiba radius of the LB_Keogh envelopes, as a fraction of the
        stored series length.  Set to ``None`` to disable lower-bound
        pruning entirely.
    """

    def __init__(
        self,
        constraint: str = "ac,aw",
        config: Optional[SDTWConfig] = None,
        lb_radius_fraction: Optional[float] = 0.10,
    ) -> None:
        if lb_radius_fraction is not None and not 0 < lb_radius_fraction <= 1:
            raise ValidationError("lb_radius_fraction must lie in (0, 1]")
        self.constraint = constraint
        self.config = config if config is not None else SDTWConfig()
        self.lb_radius_fraction = lb_radius_fraction
        self._engine = SDTW(self.config)
        self._stored: List[_StoredSeries] = []

    # ------------------------------------------------------------------ #
    # Indexing
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._stored)

    def add(
        self,
        values: Union[Sequence[float], np.ndarray],
        identifier: Optional[str] = None,
        label: Optional[int] = None,
    ) -> str:
        """Add one series to the searchable collection.

        Features are extracted eagerly (and cached in the engine) so query
        time only pays for matching and the banded dynamic program.
        """
        array = as_series(values, "values")
        identifier = identifier or f"series-{len(self._stored):05d}"
        radius = self._lb_radius(array.size)
        envelope = keogh_envelope(array, radius) if radius is not None else (None, None)
        self._stored.append(
            _StoredSeries(
                identifier=identifier, values=array, label=label, envelope=envelope
            )
        )
        self._engine.extract_features(array)
        return identifier

    def add_dataset(self, dataset: Dataset) -> None:
        """Add every series of a data set (labels preserved)."""
        for index, ts in enumerate(dataset):
            identifier = ts.identifier or f"{dataset.name}-{index:04d}"
            self.add(ts.values, identifier=identifier, label=ts.label)

    def _lb_radius(self, length: int) -> Optional[int]:
        if self.lb_radius_fraction is None:
            return None
        return max(1, int(round(self.lb_radius_fraction * length)))

    # ------------------------------------------------------------------ #
    # Querying
    # ------------------------------------------------------------------ #
    def query(
        self,
        values: Union[Sequence[float], np.ndarray],
        k: int = 5,
        *,
        exclude_identifier: Optional[str] = None,
    ) -> SearchResult:
        """Find the k nearest stored series to a query series.

        Parameters
        ----------
        values:
            The query series.
        k:
            Number of neighbours to return.
        exclude_identifier:
            Skip the stored series with this identifier (used by
            leave-one-out evaluations when the query itself is stored).
        """
        if not self._stored:
            raise DatasetError("the search engine contains no series")
        query = as_series(values, "query")
        k = check_int_at_least(k, 1, "k")
        start = time.perf_counter()

        # Rank candidates by their lower bound so good candidates are
        # refined first and the pruning threshold drops quickly.
        candidates: List[Tuple[float, int]] = []
        for index, stored in enumerate(self._stored):
            if exclude_identifier is not None and stored.identifier == exclude_identifier:
                continue
            if stored.envelope[0] is not None:
                bound = lb_keogh(query, stored.values,
                                 self._lb_radius(stored.values.size),
                                 envelope=stored.envelope)
            else:
                bound = 0.0
            candidates.append((bound, index))
        candidates.sort()

        hits: List[SearchHit] = []
        pruned = 0
        computed = 0
        cells = 0
        worst_kept = np.inf
        for bound, index in candidates:
            if len(hits) >= k and bound > worst_kept:
                pruned += 1
                continue
            stored = self._stored[index]
            if self.constraint.strip().lower() == "full":
                result = self._engine.distance(query, stored.values, "full")
            else:
                result = self._engine.distance(query, stored.values, self.constraint)
            computed += 1
            cells += result.cells_filled
            hit = SearchHit(
                identifier=stored.identifier,
                index=index,
                distance=result.distance,
                label=stored.label,
            )
            hits.append(hit)
            hits.sort(key=lambda h: (h.distance, h.index))
            if len(hits) > k:
                hits = hits[:k]
            if len(hits) == k:
                worst_kept = hits[-1].distance

        elapsed = time.perf_counter() - start
        return SearchResult(
            hits=tuple(hits),
            candidates_pruned=pruned,
            distances_computed=computed,
            cells_filled=cells,
            elapsed_seconds=elapsed,
        )

    def classify(
        self,
        values: Union[Sequence[float], np.ndarray],
        k: int = 5,
        *,
        exclude_identifier: Optional[str] = None,
    ) -> Optional[int]:
        """Majority-vote k-NN class label for a query series.

        Ties are broken in favour of the label of the closest neighbour
        among the tied labels; returns ``None`` when no stored series has a
        label.
        """
        result = self.query(values, k, exclude_identifier=exclude_identifier)
        votes: dict = {}
        for hit in result.hits:
            if hit.label is None:
                continue
            votes[hit.label] = votes.get(hit.label, 0) + 1
        if not votes:
            return None
        top = max(votes.values())
        tied = {label for label, count in votes.items() if count == top}
        for hit in result.hits:
            if hit.label in tied:
                return hit.label
        return None
