"""Persistent storage for extracted salient features.

Section 3.4 of the paper points out that salient-feature extraction is a
one-time cost: once the features of a series are extracted they can be
stored and indexed along with the series and reused across every retrieval
or classification task that touches it.  :class:`FeatureStore` implements
that idea: it maps series identifiers to their feature lists, persists them
to a single ``.npz`` archive, and hands pre-extracted features to the
:class:`repro.core.sdtw.SDTW` engine's cache so repeated comparisons skip
extraction entirely.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.config import SDTWConfig
from ..core.features import SalientFeature, extract_salient_features
from ..core.sdtw import SDTW
from ..datasets.base import Dataset
from ..exceptions import DatasetError, ValidationError

# One feature row in the packed matrix:
# position, sigma, scope_start, scope_end, octave, level, amplitude,
# mean_amplitude, dog_value, scale_class_code, descriptor_length,
# descriptor... (rows are zero-padded to the longest descriptor; the
# recorded per-row length restores exact sizes on load).
_FIXED_COLUMNS = 11
_DESC_LENGTH_COLUMN = 10
# Version-1 archives predate the descriptor-length column.
_FIXED_COLUMNS_V1 = 10
_SCALE_CODES = {"fine": 0.0, "medium": 1.0, "rough": 2.0}
_SCALE_NAMES = {0: "fine", 1: "medium", 2: "rough"}

# On-disk archive format written by FeatureStore.save (v2 added the
# per-row descriptor-length column); load() still reads v1 archives.
STORE_FORMAT_VERSION = 2


def _features_to_matrix(features: Sequence[SalientFeature]) -> np.ndarray:
    """Pack a feature list into a dense float matrix (one row per feature).

    Descriptors of mixed lengths are zero-padded to the longest one, but
    each row records its true descriptor length so the round trip is
    exact (zero padding is otherwise indistinguishable from genuine
    trailing-zero descriptor bins).
    """
    if not features:
        return np.zeros((0, _FIXED_COLUMNS))
    descriptor_length = max(f.descriptor.size for f in features)
    matrix = np.zeros((len(features), _FIXED_COLUMNS + descriptor_length))
    for row, feature in enumerate(features):
        matrix[row, 0] = feature.position
        matrix[row, 1] = feature.sigma
        matrix[row, 2] = feature.scope_start
        matrix[row, 3] = feature.scope_end
        matrix[row, 4] = feature.octave
        matrix[row, 5] = feature.level
        matrix[row, 6] = feature.amplitude
        matrix[row, 7] = feature.mean_amplitude
        matrix[row, 8] = feature.dog_value
        matrix[row, 9] = _SCALE_CODES.get(feature.scale_class, 0.0)
        matrix[row, _DESC_LENGTH_COLUMN] = feature.descriptor.size
        matrix[row, _FIXED_COLUMNS: _FIXED_COLUMNS + feature.descriptor.size] = (
            feature.descriptor
        )
    return matrix


def _matrix_to_features(matrix: np.ndarray, version: int = 2) -> List[SalientFeature]:
    """Unpack a dense matrix back into a feature list.

    Version-1 archives did not record per-row descriptor lengths; their
    descriptors are restored padded (the historical behaviour).
    """
    fixed = _FIXED_COLUMNS if version >= 2 else _FIXED_COLUMNS_V1
    features: List[SalientFeature] = []
    for row in np.atleast_2d(matrix):
        if row.size < fixed:
            raise ValidationError("packed feature row is too short")
        descriptor = np.asarray(row[fixed:], dtype=float)
        if version >= 2:
            length = int(row[_DESC_LENGTH_COLUMN])
            if not 0 <= length <= descriptor.size:
                raise ValidationError(
                    f"packed descriptor length {length} is inconsistent with "
                    f"a row of {descriptor.size} descriptor columns"
                )
            descriptor = descriptor[:length]
        features.append(
            SalientFeature(
                position=float(row[0]),
                sigma=float(row[1]),
                scope_start=float(row[2]),
                scope_end=float(row[3]),
                octave=int(row[4]),
                level=int(row[5]),
                amplitude=float(row[6]),
                mean_amplitude=float(row[7]),
                dog_value=float(row[8]),
                scale_class=_SCALE_NAMES.get(int(row[9]), "fine"),
                descriptor=descriptor,
            )
        )
    return features


@dataclass
class FeatureStore:
    """A persistent map from series identifiers to their salient features.

    Attributes
    ----------
    config:
        The extraction configuration the stored features were produced
        with.  Loading a store and querying it with a different descriptor
        length would silently mix incompatible descriptors, so the store
        records the configuration fingerprint and refuses mismatched merges.
    """

    config: SDTWConfig = field(default_factory=SDTWConfig)
    _features: Dict[str, Tuple[SalientFeature, ...]] = field(default_factory=dict)
    _series: Dict[str, np.ndarray] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Population
    # ------------------------------------------------------------------ #
    def add_series(
        self,
        identifier: str,
        values: Union[Sequence[float], np.ndarray],
        features: Optional[Sequence[SalientFeature]] = None,
        *,
        extract: bool = True,
    ) -> Tuple[SalientFeature, ...]:
        """Add one series (extracting its features unless they are supplied).

        With ``extract=False`` (and no explicit *features*) only the raw
        series is stored and extraction is deferred until
        :meth:`ensure_features` — consumers whose constraint families
        never read salient features (fixed bands, no index) then skip the
        extraction cost entirely.  :meth:`save` materialises any deferred
        features so persisted archives are always complete.
        """
        if not identifier:
            raise ValidationError("series identifier must be a non-empty string")
        array = np.asarray(values, dtype=float)
        if features is None and not extract:
            self._series[identifier] = array
            self._features.pop(identifier, None)
            return ()
        if features is None:
            features = extract_salient_features(array, self.config)
        stored = tuple(features)
        self._features[identifier] = stored
        self._series[identifier] = array
        return stored

    def add_dataset(self, dataset: Dataset) -> None:
        """Add every series of a data set, keyed by its identifier."""
        for index, ts in enumerate(dataset):
            identifier = ts.identifier or f"{dataset.name}-{index:04d}"
            self.add_series(identifier, ts.values)

    def remove_series(self, identifier: str) -> None:
        """Drop one series (and its features) from the store."""
        if identifier not in self._series:
            raise DatasetError(f"no series stored for {identifier!r}")
        del self._series[identifier]
        self._features.pop(identifier, None)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, identifier: str) -> bool:
        return identifier in self._series

    def identifiers(self) -> List[str]:
        """All stored series identifiers, sorted."""
        return sorted(self._series)

    def has_features(self, identifier: str) -> bool:
        """Whether this series' features have been extracted already."""
        return identifier in self._features

    def ensure_features(self, identifier: str) -> Tuple[SalientFeature, ...]:
        """The features of one series, extracting them if still deferred."""
        if identifier not in self._features:
            values = self.series_of(identifier)
            self._features[identifier] = tuple(
                extract_salient_features(values, self.config)
            )
        return self._features[identifier]

    def features_of(self, identifier: str) -> Tuple[SalientFeature, ...]:
        """The stored features of one series."""
        try:
            return self._features[identifier]
        except KeyError as exc:
            raise DatasetError(f"no features stored for {identifier!r}") from exc

    def series_of(self, identifier: str) -> np.ndarray:
        """The stored raw values of one series."""
        try:
            return self._series[identifier]
        except KeyError as exc:
            raise DatasetError(f"no series stored for {identifier!r}") from exc

    def descriptor_matrix(self, identifier: Optional[str] = None) -> np.ndarray:
        """Batch descriptor export feeding the indexing codebook.

        Returns the stored descriptors stacked into one dense matrix of
        ``config.descriptor.num_bins`` columns — all series (in
        :meth:`identifiers` order) when *identifier* is ``None``, one
        series otherwise.  This is the training input of
        :class:`repro.indexing.Codebook`.
        """
        from ..core.descriptors import descriptor_matrix

        num_bins = self.config.descriptor.num_bins
        if identifier is not None:
            return descriptor_matrix(self.features_of(identifier), num_bins)
        blocks = [
            descriptor_matrix(self._features[name], num_bins)
            for name in self.identifiers()
        ]
        if not blocks:
            return np.zeros((0, num_bins))
        return np.vstack(blocks)

    def warm_engine(self, engine: Optional[SDTW] = None) -> SDTW:
        """Return an :class:`SDTW` engine whose feature cache is pre-seeded.

        The engine will never re-extract features for stored series, which
        reproduces the paper's amortisation argument exactly.
        """
        if engine is None:
            engine = SDTW(self.config)
        for identifier, values in self._series.items():
            if identifier not in self._features:
                continue  # deferred extraction: nothing to seed yet
            key = engine._cache_key(np.ascontiguousarray(values, dtype=float))
            engine._feature_cache[key] = self._features[identifier]
        return engine

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, os.PathLike]) -> None:
        """Persist the store to a single ``.npz`` archive.

        Features whose extraction was deferred (``add_series(...,
        extract=False)``) are materialised here, so archives always hold
        the complete series + features mapping.
        """
        path = os.fspath(path)
        payload: Dict[str, np.ndarray] = {}
        manifest = {
            "identifiers": self.identifiers(),
            "descriptor_bins": self.config.descriptor.num_bins,
            "version": STORE_FORMAT_VERSION,
        }
        for index, identifier in enumerate(manifest["identifiers"]):
            payload[f"series_{index}"] = self._series[identifier]
            payload[f"features_{index}"] = _features_to_matrix(
                list(self.ensure_features(identifier))
            )
        payload["manifest"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        np.savez_compressed(path, **payload)

    @classmethod
    def load(
        cls, path: Union[str, os.PathLike], config: Optional[SDTWConfig] = None
    ) -> "FeatureStore":
        """Load a store previously written by :meth:`save`."""
        path = os.fspath(path)
        if not os.path.exists(path):
            raise DatasetError(f"feature store not found: {path}")
        archive = np.load(path, allow_pickle=False)
        manifest = json.loads(bytes(archive["manifest"]).decode("utf-8"))
        store = cls(config=config if config is not None else SDTWConfig())
        if manifest.get("descriptor_bins") != store.config.descriptor.num_bins:
            raise ValidationError(
                "stored descriptors were extracted with "
                f"{manifest.get('descriptor_bins')} bins but the supplied "
                f"configuration expects {store.config.descriptor.num_bins}"
            )
        version = int(manifest.get("version", 1))
        for index, identifier in enumerate(manifest["identifiers"]):
            values = np.asarray(archive[f"series_{index}"], dtype=float)
            matrix = np.asarray(archive[f"features_{index}"], dtype=float)
            features = _matrix_to_features(matrix, version) if matrix.size else []
            store._series[identifier] = values
            store._features[identifier] = tuple(features)
        return store
