"""Pairwise distance computation with per-pair cost accounting.

The experiments need, for every algorithm, both the pairwise distance
matrix over a data set and the cost of producing it — wall-clock seconds
split into matching and dynamic-programming time, plus the number of DTW
grid cells filled (a hardware-independent proxy for the same quantity).
:class:`PairwiseDistanceMatrix` packages those together.

Naming note: this class was historically called ``DistanceIndex``, a
name that collided conceptually with the disk-backed salient-feature
*search* index of :mod:`repro.indexing` (inverted postings, shards,
candidate generation) even though the two share nothing.  The canonical
search-index classes are re-exported from ``repro.indexing`` and the
top-level ``repro`` package; this class is :class:`PairwiseDistanceMatrix`
(the deprecated ``DistanceIndex`` alias has been removed — see the
migration table in the README).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.bands import parse_constraint_spec
from ..core.sdtw import SDTW, SDTWResult
from ..dtw.full import dtw
from ..engine.backends import run_parallel
from ..exceptions import ValidationError


@dataclass
class PairwiseDistanceMatrix:
    """Pairwise distances plus the cost of computing them.

    Attributes
    ----------
    constraint:
        The constraint label the index was built with (``"full"`` for the
        optimal DTW).
    distances:
        Symmetric matrix of pairwise distances (diagonal is zero).
    matching_seconds:
        Total wall-clock time spent on feature matching and inconsistency
        pruning across all pairs (task (b) in the paper's breakdown).
    dp_seconds:
        Total wall-clock time spent filling DTW grids and backtracking
        (task (c)).
    extract_seconds:
        Total wall-clock time spent extracting salient features (the
        amortisable, one-time-per-series task (a)).
    cells_filled:
        Total number of DTW grid cells evaluated.
    total_cells:
        Total number of grid cells a full DTW would have evaluated.
    """

    constraint: str
    distances: np.ndarray
    matching_seconds: float = 0.0
    dp_seconds: float = 0.0
    extract_seconds: float = 0.0
    cells_filled: int = 0
    total_cells: int = 0

    @property
    def compute_seconds(self) -> float:
        """Per-comparison cost: matching + dynamic programming."""
        return self.matching_seconds + self.dp_seconds

    @property
    def cell_fraction(self) -> float:
        """Fraction of the full grid work that was actually performed."""
        if self.total_cells == 0:
            return 1.0
        return self.cells_filled / self.total_cells

    @property
    def num_series(self) -> int:
        """Number of series the index covers."""
        return int(self.distances.shape[0])


ProgressCallback = Callable[[int, int], None]

# One computed pair: (a, b, value, matching_s, dp_s, extract_s, cells, grid).
_PairRecord = Tuple[int, int, float, float, float, float, int, int]


def _compute_pair(
    engine: SDTW, constraint: str, is_full: bool, symmetrize: bool,
    xa: np.ndarray, xb: np.ndarray, a: int, b: int,
) -> _PairRecord:
    grid = xa.size * xb.size
    if is_full:
        start = time.perf_counter()
        result = dtw(xa, xb, engine.config.pointwise_distance, return_path=False)
        elapsed = time.perf_counter() - start
        return (a, b, result.distance, 0.0, elapsed, 0.0, result.cells_filled, grid)
    forward: SDTWResult = engine.distance(xa, xb, constraint)
    if symmetrize:
        backward: SDTWResult = engine.distance(xb, xa, constraint)
        return (
            a, b, (forward.distance + backward.distance) / 2.0,
            forward.matching_seconds + backward.matching_seconds,
            forward.dp_seconds + backward.dp_seconds,
            forward.extract_seconds + backward.extract_seconds,
            forward.cells_filled + backward.cells_filled,
            2 * grid,
        )
    return (
        a, b, forward.distance,
        forward.matching_seconds, forward.dp_seconds, forward.extract_seconds,
        forward.cells_filled, grid,
    )


def _pair_chunk_task(state, chunk) -> List[_PairRecord]:
    """Worker task: compute one chunk of pairs against the shared state."""
    engine, arrays, constraint, is_full, symmetrize = state
    return [
        _compute_pair(engine, constraint, is_full, symmetrize,
                      arrays[a], arrays[b], a, b)
        for a, b in chunk
    ]


def compute_distance_index(
    series: Sequence[np.ndarray],
    constraint: str = "full",
    engine: Optional[SDTW] = None,
    *,
    symmetrize: bool = True,
    progress: Optional[ProgressCallback] = None,
    num_workers: Optional[int] = None,
) -> PairwiseDistanceMatrix:
    """Compute the pairwise distance index of a collection under one constraint.

    Parameters
    ----------
    series:
        The value arrays of the collection.
    constraint:
        ``"full"`` or any sDTW constraint label (``"fc,fw"``, ``"ac,aw"``, …).
    engine:
        The :class:`SDTW` engine to use; a default-configured engine is
        created when omitted.  Passing a shared engine lets feature
        extraction be amortised across constraints, mirroring the paper's
        treatment of extraction as a one-time cost.
    symmetrize:
        Whether to average the (possibly asymmetric) constrained distances
        over the two orientations.  Full DTW is symmetric already and is
        computed once per unordered pair regardless.
    progress:
        Optional callback ``(done_pairs, total_pairs)`` for long runs
        (called per chunk when workers are used).
    num_workers:
        When greater than 1, the unordered pairs are chunked across a
        process pool (the engine's multiprocessing plumbing).  Features
        are extracted in the parent first so forked workers inherit a warm
        salient-feature cache.

    Returns
    -------
    PairwiseDistanceMatrix
    """
    arrays = [np.asarray(s, dtype=float) for s in series]
    count = len(arrays)
    if count < 2:
        raise ValidationError("need at least two series to build a distance index")
    if engine is None:
        engine = SDTW()

    is_full = constraint.strip().lower() == "full"
    pair_list = [(a, b) for a in range(count) for b in range(a + 1, count)]
    total_pairs = len(pair_list)

    workers = 1 if num_workers is None else max(1, int(num_workers))
    if workers > 1 and total_pairs > 1:
        if not is_full:
            # Pay the one-time extraction cost once, in the parent — but
            # only for constraints whose bands actually consume salient
            # features; the fixed families never read them.
            spec = parse_constraint_spec(constraint)
            if spec.core == "adaptive" or spec.width == "adaptive":
                for array in arrays:
                    engine.extract_features(array)
        chunk_count = min(total_pairs, workers * 4)
        chunks = [pair_list[i::chunk_count] for i in range(chunk_count)]
        state = (engine, arrays, constraint, is_full, symmetrize)
        records: List[_PairRecord] = []
        done = 0
        for chunk_records in run_parallel(state, _pair_chunk_task, chunks, workers):
            records.extend(chunk_records)
            done += len(chunk_records)
            if progress is not None:
                progress(done, total_pairs)
    else:
        records = []
        for done, (a, b) in enumerate(pair_list, start=1):
            records.append(
                _compute_pair(engine, constraint, is_full, symmetrize,
                              arrays[a], arrays[b], a, b)
            )
            if progress is not None:
                progress(done, total_pairs)

    distances = np.zeros((count, count))
    matching_seconds = 0.0
    dp_seconds = 0.0
    extract_seconds = 0.0
    cells_filled = 0
    total_cells = 0
    for a, b, value, match_s, dp_s, extract_s, cells, grid in records:
        distances[a, b] = distances[b, a] = value
        matching_seconds += match_s
        dp_seconds += dp_s
        extract_seconds += extract_s
        cells_filled += cells
        total_cells += grid

    return PairwiseDistanceMatrix(
        constraint="full" if is_full else constraint,
        distances=distances,
        matching_seconds=matching_seconds,
        dp_seconds=dp_seconds,
        extract_seconds=extract_seconds,
        cells_filled=cells_filled,
        total_cells=total_cells,
    )


