"""Pairwise distance computation with per-pair cost accounting.

The experiments need, for every algorithm, both the pairwise distance
matrix over a data set and the cost of producing it — wall-clock seconds
split into matching and dynamic-programming time, plus the number of DTW
grid cells filled (a hardware-independent proxy for the same quantity).
:class:`DistanceIndex` packages those together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from ..core.sdtw import SDTW, SDTWResult
from ..dtw.full import dtw
from ..exceptions import ValidationError


@dataclass
class DistanceIndex:
    """Pairwise distances plus the cost of computing them.

    Attributes
    ----------
    constraint:
        The constraint label the index was built with (``"full"`` for the
        optimal DTW).
    distances:
        Symmetric matrix of pairwise distances (diagonal is zero).
    matching_seconds:
        Total wall-clock time spent on feature matching and inconsistency
        pruning across all pairs (task (b) in the paper's breakdown).
    dp_seconds:
        Total wall-clock time spent filling DTW grids and backtracking
        (task (c)).
    extract_seconds:
        Total wall-clock time spent extracting salient features (the
        amortisable, one-time-per-series task (a)).
    cells_filled:
        Total number of DTW grid cells evaluated.
    total_cells:
        Total number of grid cells a full DTW would have evaluated.
    """

    constraint: str
    distances: np.ndarray
    matching_seconds: float = 0.0
    dp_seconds: float = 0.0
    extract_seconds: float = 0.0
    cells_filled: int = 0
    total_cells: int = 0

    @property
    def compute_seconds(self) -> float:
        """Per-comparison cost: matching + dynamic programming."""
        return self.matching_seconds + self.dp_seconds

    @property
    def cell_fraction(self) -> float:
        """Fraction of the full grid work that was actually performed."""
        if self.total_cells == 0:
            return 1.0
        return self.cells_filled / self.total_cells

    @property
    def num_series(self) -> int:
        """Number of series the index covers."""
        return int(self.distances.shape[0])


ProgressCallback = Callable[[int, int], None]


def compute_distance_index(
    series: Sequence[np.ndarray],
    constraint: str = "full",
    engine: Optional[SDTW] = None,
    *,
    symmetrize: bool = True,
    progress: Optional[ProgressCallback] = None,
) -> DistanceIndex:
    """Compute the pairwise distance index of a collection under one constraint.

    Parameters
    ----------
    series:
        The value arrays of the collection.
    constraint:
        ``"full"`` or any sDTW constraint label (``"fc,fw"``, ``"ac,aw"``, …).
    engine:
        The :class:`SDTW` engine to use; a default-configured engine is
        created when omitted.  Passing a shared engine lets feature
        extraction be amortised across constraints, mirroring the paper's
        treatment of extraction as a one-time cost.
    symmetrize:
        Whether to average the (possibly asymmetric) constrained distances
        over the two orientations.  Full DTW is symmetric already and is
        computed once per unordered pair regardless.
    progress:
        Optional callback ``(done_pairs, total_pairs)`` for long runs.

    Returns
    -------
    DistanceIndex
    """
    arrays = [np.asarray(s, dtype=float) for s in series]
    count = len(arrays)
    if count < 2:
        raise ValidationError("need at least two series to build a distance index")
    if engine is None:
        engine = SDTW()

    distances = np.zeros((count, count))
    matching_seconds = 0.0
    dp_seconds = 0.0
    extract_seconds = 0.0
    cells_filled = 0
    total_cells = 0

    is_full = constraint.strip().lower() == "full"
    pair_list = [(a, b) for a in range(count) for b in range(a + 1, count)]
    total_pairs = len(pair_list)

    for done, (a, b) in enumerate(pair_list, start=1):
        xa, xb = arrays[a], arrays[b]
        grid = xa.size * xb.size
        if is_full:
            import time as _time

            start = _time.perf_counter()
            result = dtw(xa, xb, engine.config.pointwise_distance, return_path=False)
            elapsed = _time.perf_counter() - start
            distances[a, b] = distances[b, a] = result.distance
            dp_seconds += elapsed
            cells_filled += result.cells_filled
            total_cells += grid
        else:
            forward: SDTWResult = engine.distance(xa, xb, constraint)
            if symmetrize:
                backward: SDTWResult = engine.distance(xb, xa, constraint)
                value = (forward.distance + backward.distance) / 2.0
                matching_seconds += forward.matching_seconds + backward.matching_seconds
                dp_seconds += forward.dp_seconds + backward.dp_seconds
                extract_seconds += forward.extract_seconds + backward.extract_seconds
                cells_filled += forward.cells_filled + backward.cells_filled
                total_cells += 2 * grid
            else:
                value = forward.distance
                matching_seconds += forward.matching_seconds
                dp_seconds += forward.dp_seconds
                extract_seconds += forward.extract_seconds
                cells_filled += forward.cells_filled
                total_cells += grid
            distances[a, b] = distances[b, a] = value
        if progress is not None:
            progress(done, total_pairs)

    return DistanceIndex(
        constraint="full" if is_full else constraint,
        distances=distances,
        matching_seconds=matching_seconds,
        dp_seconds=dp_seconds,
        extract_seconds=extract_seconds,
        cells_filled=cells_filled,
        total_cells=total_cells,
    )
