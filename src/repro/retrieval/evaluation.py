"""Evaluation criteria of Section 4.2: retrieval accuracy, distance error,
classification accuracy, and time gain.

All four criteria compare a constrained-DTW distance index against the
reference index built with the optimal (full-grid) DTW:

* retrieval accuracy — average overlap between the top-k result sets,
* distance error — average relative error of the distance estimates,
* classification accuracy — average Jaccard overlap between the k-NN label
  sets,
* time gain — relative reduction of the per-comparison computation time
  (matching + dynamic programming), with a cell-count analogue that is
  independent of the host machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .._validation import check_int_at_least
from ..exceptions import ValidationError
from ..utils.stats import relative_error, safe_divide
from .index import PairwiseDistanceMatrix
from .knn import batch_top_k, knn_labels


def retrieval_accuracy(
    reference: np.ndarray,
    estimate: np.ndarray,
    k: int,
    *,
    exclude_self: bool = True,
) -> float:
    """Average top-k overlap between two distance matrices.

    ``acc_ret(k) = avg_X |top_ref(X, k) ∩ top_est(X, k)| / k``
    """
    ref = np.asarray(reference, dtype=float)
    est = np.asarray(estimate, dtype=float)
    if ref.shape != est.shape or ref.ndim != 2 or ref.shape[0] != ref.shape[1]:
        raise ValidationError("distance matrices must be square and equal-shaped")
    k = check_int_at_least(k, 1, "k")
    count = ref.shape[0]
    excludes = [query if exclude_self else None for query in range(count)]
    overlaps = [
        len(set(top_ref) & set(top_est)) / float(k)
        for top_ref, top_est in zip(
            batch_top_k(ref, k, exclude=excludes),
            batch_top_k(est, k, exclude=excludes),
        )
    ]
    return float(np.mean(overlaps))


def distance_error(
    reference: np.ndarray,
    estimate: np.ndarray,
    *,
    pairs: Optional[Sequence[tuple]] = None,
) -> float:
    """Average relative error of the estimated distances.

    ``err_dist = avg_{X,Y} (Δ*(X,Y) − Δ_DTW(X,Y)) / Δ_DTW(X,Y)``

    Parameters
    ----------
    reference, estimate:
        Square distance matrices (reference = optimal DTW).
    pairs:
        Optional subset of (i, j) index pairs to average over; defaults to
        every unordered pair with ``i < j``.  Pairs whose reference
        distance is zero are skipped.
    """
    ref = np.asarray(reference, dtype=float)
    est = np.asarray(estimate, dtype=float)
    if ref.shape != est.shape or ref.ndim != 2:
        raise ValidationError("distance matrices must be square and equal-shaped")
    if pairs is None:
        count = ref.shape[0]
        pairs = [(a, b) for a in range(count) for b in range(a + 1, count)]
    errors: List[float] = []
    for a, b in pairs:
        if ref[a, b] == 0:
            continue
        errors.append(relative_error(est[a, b], ref[a, b]))
    finite = [e for e in errors if np.isfinite(e)]
    if not finite:
        return 0.0
    return float(np.mean(finite))


def classification_accuracy(
    reference: np.ndarray,
    estimate: np.ndarray,
    labels: Sequence[Optional[int]],
    k: int,
) -> float:
    """Average Jaccard overlap of the k-NN label sets under the two indexes.

    ``acc_cls(k) = avg_X |labels_ref(X, k) ∩ labels_est(X, k)| /
    |labels_ref(X, k) ∪ labels_est(X, k)|``
    """
    ref = np.asarray(reference, dtype=float)
    est = np.asarray(estimate, dtype=float)
    if ref.shape != est.shape or ref.ndim != 2:
        raise ValidationError("distance matrices must be square and equal-shaped")
    if len(labels) != ref.shape[0]:
        raise ValidationError("labels length must match the matrix size")
    k = check_int_at_least(k, 1, "k")
    scores = []
    for query in range(ref.shape[0]):
        ref_labels = knn_labels(ref, labels, query, k)
        est_labels = knn_labels(est, labels, query, k)
        union = ref_labels | est_labels
        if not union:
            scores.append(1.0)
            continue
        scores.append(len(ref_labels & est_labels) / float(len(union)))
    return float(np.mean(scores))


def time_gain(reference_seconds: float, estimate_seconds: float) -> float:
    """Relative time saving: ``(time_DTW − time_*) / time_DTW``."""
    return safe_divide(reference_seconds - estimate_seconds, reference_seconds, 0.0)


def cell_gain(reference_cells: int, estimate_cells: int) -> float:
    """Relative saving in DTW grid cells filled (hardware-independent gain)."""
    return safe_divide(float(reference_cells - estimate_cells),
                       float(reference_cells), 0.0)


@dataclass(frozen=True)
class EvaluationResult:
    """Evaluation of one constrained index against the full-DTW reference.

    Attributes
    ----------
    constraint:
        The constraint label being evaluated.
    retrieval_accuracy:
        Top-k retrieval accuracy per requested k.
    classification_accuracy:
        k-NN classification accuracy per requested k (empty when the data
        set carries no labels).
    distance_error:
        Mean relative error of the distance estimates.
    time_gain:
        Relative wall-clock saving of tasks (b)+(c) vs. full DTW.
    cell_gain:
        Relative saving in DTW cells filled vs. full DTW.
    matching_seconds, dp_seconds:
        Absolute cost breakdown of the constrained index (Figure 17 data).
    reference_seconds:
        Cost of the full-DTW reference index.
    """

    constraint: str
    retrieval_accuracy: Dict[int, float]
    classification_accuracy: Dict[int, float]
    distance_error: float
    time_gain: float
    cell_gain: float
    matching_seconds: float
    dp_seconds: float
    reference_seconds: float


def evaluate_constraint(
    reference: PairwiseDistanceMatrix,
    estimate: PairwiseDistanceMatrix,
    labels: Optional[Sequence[Optional[int]]] = None,
    ks: Sequence[int] = (5, 10),
) -> EvaluationResult:
    """Evaluate a constrained distance index against the full-DTW reference.

    Parameters
    ----------
    reference:
        Index built with ``constraint="full"``.
    estimate:
        Index built with any constrained algorithm.
    labels:
        Class labels (enables the classification criterion).
    ks:
        The k values for the top-k and k-NN criteria (paper: 5 and 10).
    """
    retrieval = {
        k: retrieval_accuracy(reference.distances, estimate.distances, k) for k in ks
    }
    classification: Dict[int, float] = {}
    if labels is not None and any(label is not None for label in labels):
        classification = {
            k: classification_accuracy(
                reference.distances, estimate.distances, labels, k
            )
            for k in ks
        }
    return EvaluationResult(
        constraint=estimate.constraint,
        retrieval_accuracy=retrieval,
        classification_accuracy=classification,
        distance_error=distance_error(reference.distances, estimate.distances),
        time_gain=time_gain(reference.compute_seconds, estimate.compute_seconds),
        cell_gain=cell_gain(reference.cells_filled, estimate.cells_filled),
        matching_seconds=estimate.matching_seconds,
        dp_seconds=estimate.dp_seconds,
        reference_seconds=reference.compute_seconds,
    )
