"""Retrieval and classification substrate.

Implements the evaluation machinery of Section 4 of the paper: pairwise
distance computation with per-pair timing, top-k retrieval, k-NN label
assignment with the paper's multi-label tie handling, and the four
evaluation criteria (retrieval accuracy, distance error, classification
accuracy, time gain).

Naming note: the pairwise distance *matrix* with cost accounting is
:class:`~repro.retrieval.index.PairwiseDistanceMatrix` (historically
``DistanceIndex``, still importable as a deprecated alias).  The
disk-backed salient-feature *search* index lives in
:mod:`repro.indexing`, whose canonical classes are re-exported from the
top-level :mod:`repro` package.

The query-by-example front end :class:`TimeSeriesSearchEngine` is a
deprecated shim over :class:`repro.service.Workspace`.
"""

from .evaluation import (
    EvaluationResult,
    classification_accuracy,
    distance_error,
    evaluate_constraint,
    retrieval_accuracy,
    time_gain,
)
from .feature_store import FeatureStore
from .index import PairwiseDistanceMatrix, compute_distance_index
from .knn import batch_top_k, knn_indices, knn_labels, top_k_indices
from .search import SearchHit, SearchResult, TimeSeriesSearchEngine

__all__ = [
    "DistanceIndex",
    "EvaluationResult",
    "FeatureStore",
    "PairwiseDistanceMatrix",
    "SearchHit",
    "SearchResult",
    "TimeSeriesSearchEngine",
    "batch_top_k",
    "classification_accuracy",
    "compute_distance_index",
    "distance_error",
    "evaluate_constraint",
    "knn_indices",
    "knn_labels",
    "retrieval_accuracy",
    "time_gain",
    "top_k_indices",
]


def __getattr__(name: str):
    if name == "DistanceIndex":
        # Delegates to repro.retrieval.index.__getattr__, which emits the
        # DeprecationWarning exactly once per call site.
        from . import index

        return index.DistanceIndex
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
