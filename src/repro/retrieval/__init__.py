"""Retrieval and classification substrate.

Implements the evaluation machinery of Section 4 of the paper: pairwise
distance computation with per-pair timing, top-k retrieval, k-NN label
assignment with the paper's multi-label tie handling, and the four
evaluation criteria (retrieval accuracy, distance error, classification
accuracy, time gain).
"""

from .evaluation import (
    EvaluationResult,
    classification_accuracy,
    distance_error,
    evaluate_constraint,
    retrieval_accuracy,
    time_gain,
)
from .feature_store import FeatureStore
from .index import DistanceIndex, compute_distance_index
from .knn import batch_top_k, knn_indices, knn_labels, top_k_indices
from .search import SearchHit, SearchResult, TimeSeriesSearchEngine

__all__ = [
    "DistanceIndex",
    "EvaluationResult",
    "FeatureStore",
    "SearchHit",
    "SearchResult",
    "TimeSeriesSearchEngine",
    "batch_top_k",
    "classification_accuracy",
    "compute_distance_index",
    "distance_error",
    "evaluate_constraint",
    "knn_indices",
    "knn_labels",
    "retrieval_accuracy",
    "time_gain",
    "top_k_indices",
]
