"""Retrieval and classification substrate.

Implements the evaluation machinery of Section 4 of the paper: pairwise
distance computation with per-pair timing, top-k retrieval, k-NN label
assignment with the paper's multi-label tie handling, and the four
evaluation criteria (retrieval accuracy, distance error, classification
accuracy, time gain).

Naming note: the pairwise distance *matrix* with cost accounting is
:class:`~repro.retrieval.index.PairwiseDistanceMatrix`.  The disk-backed
salient-feature *search* index lives in :mod:`repro.indexing`, whose
canonical classes are re-exported from the top-level :mod:`repro`
package.

Removed entry points (see the migration table in the README): the
``TimeSeriesSearchEngine`` shim — use :class:`repro.service.Workspace`
in exact mode — and the ``DistanceIndex`` alias of
``PairwiseDistanceMatrix``.
"""

from .evaluation import (
    EvaluationResult,
    classification_accuracy,
    distance_error,
    evaluate_constraint,
    retrieval_accuracy,
    time_gain,
)
from .feature_store import FeatureStore
from .index import PairwiseDistanceMatrix, compute_distance_index
from .knn import batch_top_k, knn_indices, knn_labels, top_k_indices

__all__ = [
    "EvaluationResult",
    "FeatureStore",
    "PairwiseDistanceMatrix",
    "batch_top_k",
    "classification_accuracy",
    "compute_distance_index",
    "distance_error",
    "evaluate_constraint",
    "knn_indices",
    "knn_labels",
    "retrieval_accuracy",
    "time_gain",
    "top_k_indices",
]
