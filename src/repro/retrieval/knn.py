"""Top-k retrieval and k-nearest-neighbour label assignment.

The paper's classification criterion attaches to each query the set of
class labels that achieve the maximum count among its k nearest neighbours
(so ties can yield more than one label); classification accuracy is then
the Jaccard overlap between the label sets obtained with the optimal DTW
distances and with the constrained distances.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Sequence, Set

import numpy as np

from .._validation import check_int_at_least
from ..exceptions import ValidationError


def top_k_indices(
    distances: Sequence[float],
    k: int,
    exclude: Optional[int] = None,
) -> List[int]:
    """Indices of the *k* smallest distances, optionally excluding one index.

    Ties are broken by index so results are deterministic.

    Parameters
    ----------
    distances:
        Distance from the query to every candidate.
    k:
        Number of neighbours to return (capped at the number of available
        candidates).
    exclude:
        Candidate index to skip — normally the query itself in
        leave-one-out evaluations.
    """
    arr = np.asarray(distances, dtype=float)
    if arr.ndim != 1:
        raise ValidationError("distances must be a 1-D sequence")
    k = check_int_at_least(k, 1, "k")
    indices = np.arange(arr.size)
    if exclude is not None and 0 <= exclude < arr.size:
        indices = indices[indices != exclude]
    values = arr[indices]
    if k < values.size:
        # argpartition finds the value of the k-th smallest element in
        # O(n); ties *at* that value are then resolved exactly like the
        # historical full sort — candidates <= the k-th value are ranked
        # by (distance, index) and the first k kept.  NaN distances sort
        # last, deterministically; the historical Python ``sorted`` left
        # NaNs wherever its comparisons happened to put them, so NaN
        # ordering is intentionally (and sanely) different here.
        kth_value = values[np.argpartition(values, k - 1)[k - 1]]
        if np.isnan(kth_value):
            candidate_mask = np.ones(values.size, dtype=bool)
        else:
            candidate_mask = ~(values > kth_value)
        candidates = indices[candidate_mask]
        candidate_values = values[candidate_mask]
    else:
        candidates = indices
        candidate_values = values
    order = np.lexsort((candidates, candidate_values))
    return [int(index) for index in candidates[order][:k]]


def batch_top_k(
    distance_matrix: np.ndarray,
    k: int,
    *,
    exclude: Optional[Sequence[Optional[int]]] = None,
) -> List[List[int]]:
    """Top-k indices for every row of a (queries × candidates) matrix.

    The batch counterpart of :func:`top_k_indices`, used to rank the
    distance matrices produced by :class:`repro.engine.DistanceEngine`
    with exactly the same deterministic tie-breaking as the per-query
    search path.

    Parameters
    ----------
    distance_matrix:
        ``(Q, C)`` matrix of query-to-candidate distances.
    k:
        Neighbours per query.
    exclude:
        Optional per-row candidate index to skip (e.g. the query itself in
        leave-one-out evaluations); one entry per row when given.
    """
    matrix = np.asarray(distance_matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValidationError("distance_matrix must be two-dimensional")
    if exclude is not None and len(exclude) != matrix.shape[0]:
        raise ValidationError("exclude must have one entry per matrix row")
    rankings: List[List[int]] = []
    for row in range(matrix.shape[0]):
        skip = exclude[row] if exclude is not None else None
        rankings.append(top_k_indices(matrix[row], k, exclude=skip))
    return rankings


def knn_indices(
    distance_matrix: np.ndarray, query: int, k: int, exclude_self: bool = True
) -> List[int]:
    """k nearest neighbours of row *query* in a pairwise distance matrix."""
    matrix = np.asarray(distance_matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValidationError("distance_matrix must be square")
    exclude = query if exclude_self else None
    return top_k_indices(matrix[query], k, exclude=exclude)


def knn_labels(
    distance_matrix: np.ndarray,
    labels: Sequence[Optional[int]],
    query: int,
    k: int,
    exclude_self: bool = True,
) -> Set[int]:
    """Label set assigned to *query* by the k-NN rule with tie handling.

    All labels achieving the maximum count among the k nearest neighbours
    are returned (the paper's "more than one label" case).
    """
    neighbours = knn_indices(distance_matrix, query, k, exclude_self)
    votes = Counter(
        labels[idx] for idx in neighbours if labels[idx] is not None
    )
    if not votes:
        return set()
    top = max(votes.values())
    return {label for label, count in votes.items() if count == top}
