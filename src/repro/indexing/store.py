"""Index persistence: directory layout, manifest, writer and reader.

An index lives in one directory::

    index-dir/
        manifest.json     # routing table + identifiers + fingerprints
        codebook.npz      # fitted k-means quantizer
        pq.npz            # optional residual product quantizer
        stats.npz         # per-codeword IDF
        shard-0000.npz    # base postings shards (uncompressed, mappable)
        shard-0001.npz
        delta-0000.npz    # incremental delta shards (same format, full
        delta-0001.npz    # codeword range each)
        store.npz         # optional FeatureStore (series + features)

The manifest records which codeword range each shard file covers, so a
reader routes a codeword to its shard without opening the others; shard
payloads are memory-mapped on open (see :mod:`repro.indexing.shards`),
so opening an index reads only the manifest, codebook and IDF table —
postings pages fault in as queries touch them.

Format version 2 adds incremental state: delta shard entries, the
tombstoned slot list, the optional PQ codec file and per-posting raw
counts inside the shards.  Version 3 bit-packs sub-byte PQ codes inside
the shards (``pq_bits < 8`` no longer spends a full byte per code on
disk).  Both older versions still open: version-1 directories simply
cannot be compacted until rebuilt, and version-2 shards carry dense
codes the reader accepts as-is.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..exceptions import DatasetError, ValidationError
from .codebook import Codebook
from .postings import InvertedIndex
from .pq import ResidualPQ
from .shards import IndexShard

MANIFEST_NAME = "manifest.json"
CODEBOOK_NAME = "codebook.npz"
PQ_NAME = "pq.npz"
STATS_NAME = "stats.npz"
STORE_NAME = "store.npz"
FORMAT_NAME = "repro-salient-index"
FORMAT_VERSION = 3


def _shard_entry(filename: str, shard: IndexShard) -> Dict[str, object]:
    return {
        "file": filename,
        "first_codeword": shard.first_codeword,
        "last_codeword": shard.last_codeword,
        "num_postings": shard.num_postings,
        "num_codewords_present": int(shard.codeword_ids.size),
        "num_pq_postings": shard.num_pq_postings,
    }


@dataclass
class IndexWriter:
    """Writes a built index (and its codebook) to a directory.

    Parameters
    ----------
    directory:
        Target directory; created if missing.  Existing index files are
        overwritten — building is idempotent.
    """

    directory: Union[str, os.PathLike]

    def write(
        self,
        index: InvertedIndex,
        codebook: Codebook,
        identifiers: Sequence[str],
        labels: Optional[Sequence[Optional[int]]] = None,
        *,
        feature_store=None,
        extraction_config=None,
        pq: Optional[ResidualPQ] = None,
    ) -> str:
        """Persist everything; returns the manifest path.

        Parameters
        ----------
        index, codebook:
            The built inverted index and its fitted quantizer.  Delta
            shards and tombstones are persisted as-is, so an
            incrementally updated index round-trips without compaction.
        identifiers:
            Series identifiers, one per index *slot* (live identifiers
            must be unique; tombstoned slots keep their historical name
            so slot numbering survives the round trip).
        labels:
            Optional class labels, in the same order.
        feature_store:
            Optional :class:`repro.retrieval.feature_store.FeatureStore`
            saved alongside the index so a reader can re-rank without
            re-extracting features.
        extraction_config:
            The full :class:`~repro.core.config.SDTWConfig` the indexed
            features were extracted with; persisted in the manifest so a
            reader reconstructs (and can verify) the exact configuration
            instead of trusting the descriptor-bin count alone.
        pq:
            Optional fitted :class:`~repro.indexing.pq.ResidualPQ` whose
            codes are embedded in the shards.
        """
        if len(identifiers) != index.num_series:
            raise ValidationError(
                "identifiers must have one entry per indexed series"
            )
        live_identifiers = [
            identifier
            for slot, identifier in enumerate(identifiers)
            if not index.tombstones[slot]
        ]
        if len(set(live_identifiers)) != len(live_identifiers):
            # The on-disk format (and the bundled FeatureStore) key series
            # by identifier; duplicates would silently collapse on reopen.
            raise ValidationError(
                "index identifiers must be unique; the collection repeats "
                "at least one identifier"
            )
        if labels is not None and len(labels) != index.num_series:
            raise ValidationError("labels must have one entry per indexed series")
        directory = os.fspath(self.directory)
        os.makedirs(directory, exist_ok=True)

        codebook.save(os.path.join(directory, CODEBOOK_NAME))
        pq_file: Optional[str] = None
        if pq is not None:
            pq_file = PQ_NAME
            pq.save(os.path.join(directory, PQ_NAME))
        np.savez(os.path.join(directory, STATS_NAME), idf=index.idf)

        # Sub-byte quantizers get their codes bit-packed inside the
        # shard files (format version 3); 8-bit codes stay dense.
        pq_bits = None if pq is None else int(pq.config.bits)
        shard_entries: List[Dict[str, object]] = []
        for number, shard in enumerate(index.shards):
            filename = f"shard-{number:04d}.npz"
            shard.save(os.path.join(directory, filename), pq_bits=pq_bits)
            shard_entries.append(_shard_entry(filename, shard))
        delta_entries: List[Dict[str, object]] = []
        for number, shard in enumerate(index.delta_shards):
            filename = f"delta-{number:04d}.npz"
            shard.save(os.path.join(directory, filename), pq_bits=pq_bits)
            delta_entries.append(_shard_entry(filename, shard))

        store_file: Optional[str] = None
        if feature_store is not None:
            store_file = STORE_NAME
            feature_store.save(os.path.join(directory, STORE_NAME))

        manifest = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "num_series": index.num_series,
            "num_live": index.num_live,
            "num_codewords": index.num_codewords,
            "num_postings": index.num_postings,
            "descriptor_bins": codebook.config.descriptor_bins,
            "identifiers": list(identifiers),
            "labels": None if labels is None else [
                None if label is None else int(label) for label in labels
            ],
            "shards": shard_entries,
            "delta_shards": delta_entries,
            "tombstones": [
                int(slot) for slot in np.nonzero(index.tombstones)[0]
            ],
            "codebook_file": CODEBOOK_NAME,
            "pq_file": pq_file,
            "stats_file": STATS_NAME,
            "store_file": store_file,
            "extraction_config": (
                None if extraction_config is None else extraction_config.to_dict()
            ),
        }
        # Atomic manifest swap: until the new manifest is in place the
        # old one keeps referencing only files that still exist (shard
        # writes replace in place, nothing has been deleted yet), so a
        # crash or concurrent IndexReader.open never sees a manifest
        # pointing at missing shards.
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        temp_path = manifest_path + ".tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
            handle.write("\n")
        os.replace(temp_path, manifest_path)
        # Only now prune files a previous (larger) build left behind —
        # nothing references them anymore.
        written = {str(entry["file"]) for entry in shard_entries}
        written.update(str(entry["file"]) for entry in delta_entries)
        for name in os.listdir(directory):
            if (
                name.startswith(("shard-", "delta-"))
                and name.endswith(".npz")
                and name not in written
            ):
                os.remove(os.path.join(directory, name))
        return manifest_path


@dataclass
class IndexReader:
    """A reopened on-disk index.

    Attributes
    ----------
    directory:
        The index directory.
    manifest:
        The parsed manifest.
    codebook:
        The fitted quantizer.
    index:
        The inverted index (base + delta shards, tombstones applied),
        with shard postings memory-mapped unless the reader was opened
        with ``mmap=False``.
    pq:
        The residual product quantizer, or ``None`` when the index was
        written without one.
    identifiers, labels:
        Series identifiers / labels in slot order (including tombstoned
        slots; see :meth:`live_identifiers`).
    """

    directory: str
    manifest: Dict[str, object]
    codebook: Codebook
    index: InvertedIndex
    identifiers: List[str]
    labels: List[Optional[int]] = field(default_factory=list)
    pq: Optional[ResidualPQ] = None

    @classmethod
    def open(
        cls, directory: Union[str, os.PathLike], *, mmap: bool = True
    ) -> "IndexReader":
        """Open an index directory written by :class:`IndexWriter`.

        With ``mmap=True`` (the default) shard postings are served from
        memory-mapped files; ``mmap=False`` loads them fully into RAM.
        """
        directory = os.fspath(directory)
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise DatasetError(f"no index manifest found at {manifest_path}")
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("format") != FORMAT_NAME:
            raise ValidationError(
                f"{manifest_path} is not a {FORMAT_NAME} manifest"
            )
        if int(manifest.get("version", 0)) > FORMAT_VERSION:
            raise ValidationError(
                f"index format version {manifest.get('version')} is newer than "
                f"this reader (supports <= {FORMAT_VERSION})"
            )

        codebook = Codebook.load(
            os.path.join(directory, str(manifest["codebook_file"]))
        )
        pq: Optional[ResidualPQ] = None
        pq_file = manifest.get("pq_file")
        if pq_file:
            pq = ResidualPQ.load(os.path.join(directory, str(pq_file)))
        with np.load(
            os.path.join(directory, str(manifest["stats_file"])),
            allow_pickle=False,
        ) as stats:
            idf = np.asarray(stats["idf"], dtype=float)

        shards = [
            IndexShard.open(
                os.path.join(directory, str(entry["file"])),
                int(entry["first_codeword"]),
                int(entry["last_codeword"]),
                mmap=mmap,
            )
            for entry in manifest["shards"]
        ]
        delta_shards = [
            IndexShard.open(
                os.path.join(directory, str(entry["file"])),
                int(entry["first_codeword"]),
                int(entry["last_codeword"]),
                mmap=mmap,
            )
            for entry in manifest.get("delta_shards", [])
        ]
        num_series = int(manifest["num_series"])
        tombstones = np.zeros(num_series, dtype=bool)
        for slot in manifest.get("tombstones", []):
            tombstones[int(slot)] = True
        index = InvertedIndex(
            num_series=num_series,
            num_codewords=int(manifest["num_codewords"]),
            shards=shards,
            idf=idf,
            delta_shards=delta_shards,
            tombstones=tombstones,
        )
        labels = manifest.get("labels")
        return cls(
            directory=directory,
            manifest=manifest,
            codebook=codebook,
            index=index,
            pq=pq,
            identifiers=[str(name) for name in manifest["identifiers"]],
            labels=(
                [None] * index.num_series if labels is None
                else [None if label is None else int(label) for label in labels]
            ),
        )

    @property
    def num_series(self) -> int:
        return self.index.num_series

    def live_identifiers(self) -> List[str]:
        """Identifiers of the non-tombstoned slots, in slot order."""
        return [
            identifier
            for slot, identifier in enumerate(self.identifiers)
            if not self.index.tombstones[slot]
        ]

    def extraction_config(self):
        """The persisted :class:`SDTWConfig`, or ``None`` on old manifests."""
        from ..core.config import SDTWConfig

        payload = self.manifest.get("extraction_config")
        if payload is None:
            return None
        return SDTWConfig.from_dict(payload)

    @property
    def store_path(self) -> Optional[str]:
        """Path of the bundled feature store, if one was written."""
        store_file = self.manifest.get("store_file")
        if not store_file:
            return None
        return os.path.join(self.directory, str(store_file))

    def load_feature_store(self, config=None):
        """Load the bundled :class:`FeatureStore` (series + features)."""
        from ..retrieval.feature_store import FeatureStore

        path = self.store_path
        if path is None or not os.path.exists(path):
            raise DatasetError(
                f"index at {self.directory!r} was written without a feature store"
            )
        return FeatureStore.load(path, config=config)

    def stats_rows(self) -> List[List[object]]:
        """Tabular summary used by ``repro index stats``."""
        rows: List[List[object]] = []
        entries = list(self.manifest["shards"]) + list(
            self.manifest.get("delta_shards", [])
        )
        for entry in entries:
            path = os.path.join(self.directory, str(entry["file"]))
            size = os.path.getsize(path) if os.path.exists(path) else 0
            rows.append(
                [
                    str(entry["file"]),
                    f"[{entry['first_codeword']}, {entry['last_codeword']})",
                    int(entry["num_codewords_present"]),
                    int(entry["num_postings"]),
                    f"{size / 1024:.1f} KiB",
                ]
            )
        return rows


__all__ = ["IndexReader", "IndexWriter"]
