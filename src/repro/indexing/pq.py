"""Product quantization of salient-feature descriptor residuals.

The inverted index quantizes every salient feature to its nearest
codebook centroid, which is lossy on purpose: two features landing in
the same cell can still differ substantially, and TF-IDF codeword
overlap cannot tell them apart.  :class:`ResidualPQ` recovers most of
that lost resolution at a tiny storage cost, IVF-ADC style: the
*residual* of each stored feature (its embedding minus the centroid it
was assigned to) is split into ``subquantizers`` contiguous sub-vectors,
each sub-vector is quantized against its own small codebook
(``2**bits`` sub-centroids), and the feature is stored as one ``uint8``
code per sub-quantizer — ``subquantizers`` bytes instead of
``4 * dim`` bytes for the raw ``float32`` residual.

At query time a feature's residual against a probed centroid is turned
into an *asymmetric distance table* (exact query sub-vector vs. every
sub-centroid); the approximate squared distance between the query
feature and any stored feature of that cell is then a table lookup per
sub-quantizer plus a sum, so candidate series can be ranked by
approximate descriptor distance instead of TF-IDF overlap alone.

Training reuses the deterministic k-means machinery of
:mod:`repro.indexing.codebook`, so fitting, encoding and scoring are
bit-reproducible for a fixed seed.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import Optional, Union

import numpy as np

from ..exceptions import ConfigurationError, ValidationError
from ..utils.rng import rng_from_seed
from .codebook import _lloyd


def pack_codes(codes: np.ndarray, bits: int) -> np.ndarray:
    """Bit-pack a ``(rows, M)`` ``uint8`` code matrix into a flat stream.

    Each code contributes exactly *bits* bits (MSB first), row-major, so
    ``pq_bits < 8`` stops spending a full byte per code on disk.  With
    ``bits == 8`` the input is returned as-is (already dense).  The
    inverse is :func:`unpack_codes`; the round trip is exact because
    every code of a fitted quantizer is below ``2**bits``.
    """
    codes = np.ascontiguousarray(codes, dtype=np.uint8)
    if bits >= 8 or codes.size == 0:
        return codes.reshape(codes.shape)
    if int(codes.max()) >= (1 << bits):
        raise ValidationError(
            f"cannot pack codes >= 2**{bits} into {bits}-bit fields"
        )
    # Per-code bit rows (8 columns, MSB first), keep the low `bits`.
    bit_rows = np.unpackbits(codes.reshape(-1, 1), axis=1)[:, 8 - bits:]
    return np.packbits(bit_rows.reshape(-1))


def unpack_codes(
    packed: np.ndarray, bits: int, rows: int, cols: int
) -> np.ndarray:
    """Invert :func:`pack_codes` back into a ``(rows, cols)`` code matrix."""
    packed = np.asarray(packed, dtype=np.uint8)
    if bits >= 8:
        return packed.reshape(rows, cols)
    if rows * cols == 0:
        return np.zeros((rows, cols), dtype=np.uint8)
    total_bits = rows * cols * bits
    if packed.size * 8 < total_bits:
        raise ValidationError(
            f"packed code stream holds {packed.size * 8} bits but "
            f"{rows}x{cols} {bits}-bit codes need {total_bits}"
        )
    bit_rows = np.unpackbits(packed, count=total_bits).reshape(-1, bits)
    weights = (1 << np.arange(bits - 1, -1, -1)).astype(np.int64)
    values = (bit_rows.astype(np.int64) * weights).sum(axis=1)
    return values.astype(np.uint8).reshape(rows, cols)


@dataclass(frozen=True)
class PQConfig:
    """Parameters of the residual product quantizer.

    Attributes
    ----------
    subquantizers:
        Number of contiguous sub-vectors the residual is split into
        (``M``); each stored feature costs ``M`` bytes.  Residuals whose
        dimensionality is not a multiple of ``M`` are zero-padded.
    bits:
        Bits per sub-quantizer code; each sub-codebook holds
        ``2**bits`` sub-centroids (at most 8 bits, one ``uint8`` each).
    iterations:
        Maximum Lloyd iterations per sub-quantizer fit.
    training_sample:
        Maximum number of residuals the sub-quantizers train on
        (sampled deterministically); encoding always uses every feature.
    seed:
        Seed of the k-means++ initialisation and sampling.
    """

    subquantizers: int = 8
    bits: int = 8
    iterations: int = 20
    training_sample: int = 20000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.subquantizers < 1:
            raise ConfigurationError("subquantizers must be >= 1")
        if not 1 <= self.bits <= 8:
            raise ConfigurationError("bits must be between 1 and 8")
        if self.iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        if self.training_sample < 1:
            raise ConfigurationError("training_sample must be >= 1")


@dataclass
class ResidualPQ:
    """A fitted product quantizer over descriptor-residual vectors.

    Attributes
    ----------
    config:
        The :class:`PQConfig` the quantizer was built with.
    centroids:
        Sub-centroid tensor of shape ``(M, K, sub_dim)`` after
        :meth:`fit` (``K <= 2**bits``; ``sub_dim`` covers the padded
        residual).
    dim:
        Dimensionality of the *unpadded* residuals the quantizer was
        fitted on.
    """

    config: PQConfig
    centroids: Optional[np.ndarray] = None
    dim: Optional[int] = None

    @property
    def is_fitted(self) -> bool:
        return self.centroids is not None

    @property
    def num_subquantizers(self) -> int:
        self._require_fitted()
        return int(self.centroids.shape[0])

    @property
    def num_subcentroids(self) -> int:
        """Effective sub-codebook size (may be below ``2**bits``)."""
        self._require_fitted()
        return int(self.centroids.shape[1])

    @property
    def padded_dim(self) -> int:
        self._require_fitted()
        return int(self.centroids.shape[0] * self.centroids.shape[2])

    @property
    def code_bytes(self) -> int:
        """Persisted bytes per encoded feature.

        Codes are bit-packed on disk (:func:`pack_codes`), so a feature
        costs ``ceil(M * bits / 8)`` bytes — with ``bits=8`` that is the
        classic one byte per sub-quantizer, with ``bits<8`` strictly
        less.  In memory codes always stay one ``uint8`` per
        sub-quantizer for fast asymmetric-distance lookups.
        """
        return (self.config.subquantizers * self.config.bits + 7) // 8

    @property
    def compression_ratio(self) -> float:
        """Raw ``float32`` residual bytes divided by stored code bytes."""
        self._require_fitted()
        return (4.0 * float(self.dim)) / float(self.code_bytes)

    def _require_fitted(self) -> None:
        if self.centroids is None:
            raise ValidationError("the product quantizer has not been fitted")

    def _pad(self, residuals: np.ndarray) -> np.ndarray:
        """Zero-pad residual rows to a multiple of the sub-quantizer count."""
        residuals = np.atleast_2d(np.asarray(residuals, dtype=float))
        if self.dim is not None and residuals.shape[1] != self.dim:
            raise ValidationError(
                f"residuals have {residuals.shape[1]} columns but the "
                f"quantizer was fitted on {self.dim}"
            )
        m = self.config.subquantizers
        sub_dim = -(-residuals.shape[1] // m)
        padded = sub_dim * m
        if padded == residuals.shape[1]:
            return residuals
        out = np.zeros((residuals.shape[0], padded))
        out[:, : residuals.shape[1]] = residuals
        return out

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(self, residuals: np.ndarray) -> "ResidualPQ":
        """Train the sub-quantizers on a residual sample.

        Parameters
        ----------
        residuals:
            ``(num_features, dim)`` residual vectors (feature embeddings
            minus their assigned codebook centroids).
        """
        residuals = np.atleast_2d(np.asarray(residuals, dtype=float))
        if residuals.size == 0 or residuals.shape[0] < 1:
            raise ValidationError("cannot fit a product quantizer on zero residuals")
        self.dim = int(residuals.shape[1])
        padded = self._pad(residuals)
        m = self.config.subquantizers
        sub_dim = padded.shape[1] // m
        rng = rng_from_seed(self.config.seed)
        if padded.shape[0] > self.config.training_sample:
            chosen = rng.choice(
                padded.shape[0], self.config.training_sample, replace=False
            )
            sample = padded[np.sort(chosen)]
        else:
            sample = padded
        k = min(2 ** self.config.bits, sample.shape[0])
        centroids = np.empty((m, k, sub_dim))
        for sub in range(m):
            block = sample[:, sub * sub_dim : (sub + 1) * sub_dim]
            centroids[sub] = _lloyd(block, k, self.config.iterations, rng)
        self.centroids = centroids
        return self

    # ------------------------------------------------------------------ #
    # Encoding / decoding
    # ------------------------------------------------------------------ #
    def encode(self, residuals: np.ndarray) -> np.ndarray:
        """Quantize residual rows to ``(num_features, M)`` ``uint8`` codes."""
        self._require_fitted()
        padded = self._pad(residuals)
        m, _, sub_dim = self.centroids.shape
        codes = np.empty((padded.shape[0], m), dtype=np.uint8)
        for sub in range(m):
            block = padded[:, sub * sub_dim : (sub + 1) * sub_dim]
            # Squared distances to every sub-centroid; argmin is
            # deterministic (first minimum wins).
            cross = block @ self.centroids[sub].T
            sq = (block**2).sum(axis=1)[:, np.newaxis] - 2.0 * cross
            sq += (self.centroids[sub] ** 2).sum(axis=1)[np.newaxis, :]
            codes[:, sub] = sq.argmin(axis=1).astype(np.uint8)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate residuals from codes (unpadded columns)."""
        self._require_fitted()
        codes = np.atleast_2d(np.asarray(codes, dtype=np.uint8))
        m, _, sub_dim = self.centroids.shape
        if codes.shape[1] != m:
            raise ValidationError(
                f"codes have {codes.shape[1]} columns but the quantizer "
                f"uses {m} sub-quantizers"
            )
        out = np.empty((codes.shape[0], m * sub_dim))
        for sub in range(m):
            out[:, sub * sub_dim : (sub + 1) * sub_dim] = self.centroids[sub][
                codes[:, sub]
            ]
        return out[:, : self.dim]

    # ------------------------------------------------------------------ #
    # Asymmetric distance computation
    # ------------------------------------------------------------------ #
    def adc_table(self, residual: np.ndarray) -> np.ndarray:
        """Asymmetric distance table for one query residual.

        Returns ``(M, K)`` squared sub-distances between the *exact*
        query sub-vectors and every sub-centroid; summing one entry per
        sub-quantizer yields the approximate squared distance to a
        stored (quantized) feature.
        """
        self._require_fitted()
        padded = self._pad(np.asarray(residual, dtype=float).reshape(1, -1))[0]
        m, _, sub_dim = self.centroids.shape
        blocks = padded.reshape(m, 1, sub_dim)
        return ((self.centroids - blocks) ** 2).sum(axis=2)

    def adc_scores(self, codes: np.ndarray, table: np.ndarray) -> np.ndarray:
        """Approximate squared distances of coded features to the query.

        Parameters
        ----------
        codes:
            ``(num_features, M)`` stored codes.
        table:
            The :meth:`adc_table` of the query residual.
        """
        codes = np.atleast_2d(np.asarray(codes, dtype=np.int64))
        m = table.shape[0]
        return table[np.arange(m)[np.newaxis, :], codes].sum(axis=1)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, os.PathLike]) -> None:
        """Persist the fitted quantizer to one ``.npz`` archive."""
        self._require_fitted()
        blob = json.dumps(asdict(self.config)).encode("utf-8")
        np.savez(
            os.fspath(path),
            centroids=self.centroids,
            dim=np.array([self.dim], dtype=np.int64),
            config=np.frombuffer(blob, dtype=np.uint8),
        )

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "ResidualPQ":
        """Load a quantizer written by :meth:`save`."""
        with np.load(os.fspath(path), allow_pickle=False) as archive:
            config = PQConfig(**json.loads(bytes(archive["config"]).decode("utf-8")))
            centroids = np.asarray(archive["centroids"], dtype=float)
            dim = int(archive["dim"][0])
        return cls(config=config, centroids=centroids, dim=dim)


__all__ = ["PQConfig", "ResidualPQ", "pack_codes", "unpack_codes"]
