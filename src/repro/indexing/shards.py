"""Memory-mapped postings shards.

An index shard is one uncompressed ``.npz`` archive holding the postings
of a contiguous codeword range in CSR layout:

* ``codeword_ids`` — the codewords present in the shard, sorted ascending
  (``int32``);
* ``offsets`` — CSR offsets into the postings arrays, one entry per
  codeword id plus a trailing sentinel (``int64``);
* ``series`` — series indices of the postings (``int32``);
* ``weights`` — TF-IDF posting weights (``float32``).

``.npz`` archives are ZIP files; :func:`numpy.savez` stores members
*uncompressed* (``ZIP_STORED``), so each member is a plain ``.npy`` byte
range at a fixed offset inside the file.  :func:`mmap_npz` exploits that:
it parses the ZIP local headers and the ``.npy`` headers to recover each
member's dtype/shape/offset and returns :class:`numpy.memmap` views — the
OS pages postings in on demand and an index larger than RAM still serves
queries.  Compressed members (or anything else unexpected) fall back to a
normal in-memory load, so the reader works on any valid ``.npz``.
"""

from __future__ import annotations

import os
import struct
import zipfile
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..exceptions import ValidationError

# Fixed part of a ZIP local file header: signature, version, flags,
# compression, mod time, mod date, crc32, compressed size, uncompressed
# size, file name length, extra field length.
_LOCAL_HEADER = struct.Struct("<4s5H3I2H")
_LOCAL_MAGIC = b"PK\x03\x04"

SHARD_MEMBERS = ("codeword_ids", "offsets", "series", "weights")
# Members introduced by the incremental/PQ index format (version 2).
# ``counts`` holds the raw (pre-IDF, unnormalised) term frequencies so a
# compaction can recompute TF-IDF weights bit-identically to a fresh
# build; the ``pq_*`` members hold the rank-0 feature assignments and
# their product-quantized residual codes in a second CSR structure.
OPTIONAL_SHARD_MEMBERS = (
    "counts", "pq_codeword_ids", "pq_offsets", "pq_series", "pq_codes",
)
# Archive-only members of the version-3 sub-byte layout: ``pq_codes``
# may be replaced on disk by the bit-packed pair ``pq_codes_packed`` +
# ``pq_codes_shape`` (bits, rows, cols) when the quantizer uses fewer
# than 8 bits per code.  :meth:`IndexShard.open` unpacks transparently
# back into the dense ``pq_codes`` attribute, so these names never
# appear on a live shard object — and v2 archives (dense codes) keep
# loading unchanged.
PACKED_ARCHIVE_MEMBERS = ("pq_codes_packed", "pq_codes_shape")


def _member_data_offset(handle, info: zipfile.ZipInfo) -> int:
    """Absolute file offset of a STORED member's data bytes.

    The local header's name/extra lengths may differ from the central
    directory's, so the local header is parsed directly.
    """
    handle.seek(info.header_offset)
    raw = handle.read(_LOCAL_HEADER.size)
    if len(raw) != _LOCAL_HEADER.size:
        raise ValidationError(f"truncated ZIP local header in shard member {info.filename!r}")
    fields = _LOCAL_HEADER.unpack(raw)
    if fields[0] != _LOCAL_MAGIC:
        raise ValidationError(f"bad ZIP local header magic for member {info.filename!r}")
    name_length, extra_length = fields[9], fields[10]
    return info.header_offset + _LOCAL_HEADER.size + name_length + extra_length


def _mmap_npy_member(path: str, handle, info: zipfile.ZipInfo) -> np.ndarray:
    """Memory-map one STORED ``.npy`` member of a ``.npz`` archive."""
    data_offset = _member_data_offset(handle, info)
    handle.seek(data_offset)
    version = np.lib.format.read_magic(handle)
    if version == (1, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
    elif version == (2, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
    else:  # pragma: no cover - future .npy versions
        raise ValidationError(f"unsupported .npy version {version} in {info.filename!r}")
    if fortran:  # pragma: no cover - we only ever write C-order arrays
        raise ValidationError("fortran-order shard members cannot be memory-mapped")
    if dtype.hasobject:
        raise ValidationError("object arrays cannot be memory-mapped")
    return np.memmap(path, dtype=dtype, mode="r", offset=handle.tell(), shape=shape)


def mmap_npz(path: Union[str, os.PathLike]) -> Dict[str, np.ndarray]:
    """Open an uncompressed ``.npz`` archive as memory-mapped arrays.

    Members that cannot be mapped (compressed, object dtype, exotic
    format) are loaded into memory instead, so the result is always a
    complete ``{member name: array}`` mapping.
    """
    path = os.fspath(path)
    arrays: Dict[str, np.ndarray] = {}
    fallbacks = []
    with zipfile.ZipFile(path, "r") as archive:
        with open(path, "rb") as handle:
            for info in archive.infolist():
                name = info.filename
                key = name[:-4] if name.endswith(".npy") else name
                if info.compress_type != zipfile.ZIP_STORED:
                    fallbacks.append(key)
                    continue
                try:
                    arrays[key] = _mmap_npy_member(path, handle, info)
                except ValidationError:
                    fallbacks.append(key)
    if fallbacks:
        with np.load(path, allow_pickle=False) as archive:
            for key in fallbacks:
                arrays[key] = archive[key]
    return arrays


def load_npz(path: Union[str, os.PathLike]) -> Dict[str, np.ndarray]:
    """Load every member of a ``.npz`` archive fully into memory."""
    with np.load(os.fspath(path), allow_pickle=False) as archive:
        return {key: np.ascontiguousarray(archive[key]) for key in archive.files}


@dataclass
class IndexShard:
    """Postings for one contiguous codeword range ``[first, last)``.

    The arrays may be ordinary in-memory ``ndarray`` objects (while an
    index is being built) or :class:`numpy.memmap` views (after a shard is
    reopened from disk); queries treat both identically.

    Version-2 shards additionally carry ``counts`` (raw term
    frequencies, ``float64``; the input a compaction recomputes TF-IDF
    weights from) and an optional second CSR structure over the *rank-0*
    feature assignments: ``pq_codeword_ids`` / ``pq_offsets`` routing
    into ``pq_series`` (stored series per encoded feature) and
    ``pq_codes`` (``(num_features, M)`` ``uint8`` product-quantizer
    codes).  All five are optional so version-1 shards keep loading.
    """

    first_codeword: int
    last_codeword: int
    codeword_ids: np.ndarray
    offsets: np.ndarray
    series: np.ndarray
    weights: np.ndarray
    counts: Optional[np.ndarray] = None
    pq_codeword_ids: Optional[np.ndarray] = None
    pq_offsets: Optional[np.ndarray] = None
    pq_series: Optional[np.ndarray] = None
    pq_codes: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        # Optional decoded-postings cache (see enable_postings_cache);
        # plain instance state, never persisted with the shard.
        self._postings_cache: Optional[Dict[int, Tuple[np.ndarray, np.ndarray]]] = None
        self._postings_cache_capacity = 0
        # Lifetime hit/miss tallies while the cache is enabled.  Plain
        # unguarded ints: a lost increment under concurrent readers only
        # undercounts — the scoring path stays lock-free.
        self.postings_cache_hits = 0
        self.postings_cache_misses = 0
        if self.last_codeword < self.first_codeword:
            raise ValidationError("shard codeword range is inverted")
        if self.offsets.size != self.codeword_ids.size + 1:
            raise ValidationError("shard offsets must have one entry per codeword plus a sentinel")
        if self.series.size != self.weights.size:
            raise ValidationError("shard series/weights arrays must have equal length")
        if self.counts is not None and self.counts.size != self.series.size:
            raise ValidationError("shard counts must parallel the postings arrays")
        pq_members = (
            self.pq_codeword_ids, self.pq_offsets, self.pq_series, self.pq_codes,
        )
        if any(member is not None for member in pq_members) and any(
            member is None for member in pq_members
        ):
            raise ValidationError(
                "shard PQ members must be present together (pq_codeword_ids, "
                "pq_offsets, pq_series, pq_codes) or all absent"
            )
        if self.has_pq:
            if self.pq_offsets.size != self.pq_codeword_ids.size + 1:
                raise ValidationError(
                    "shard pq_offsets must have one entry per pq codeword "
                    "plus a sentinel"
                )
            if self.pq_codes.shape[0] != self.pq_series.size:
                raise ValidationError(
                    "shard pq_codes must have one row per pq_series entry"
                )

    @property
    def num_postings(self) -> int:
        return int(self.series.size)

    @property
    def has_counts(self) -> bool:
        return self.counts is not None

    @property
    def has_pq(self) -> bool:
        return self.pq_series is not None

    @property
    def num_pq_postings(self) -> int:
        return int(self.pq_series.size) if self.has_pq else 0

    @property
    def is_memory_mapped(self) -> bool:
        return isinstance(self.series, np.memmap)

    def covers(self, codeword: int) -> bool:
        return self.first_codeword <= codeword < self.last_codeword

    def postings_of(self, codeword: int):
        """``(series, weights)`` slices for one codeword (empty if absent)."""
        position = int(np.searchsorted(self.codeword_ids, codeword))
        if (
            position >= self.codeword_ids.size
            or int(self.codeword_ids[position]) != codeword
        ):
            empty = np.empty(0, dtype=self.series.dtype)
            return empty, np.empty(0, dtype=self.weights.dtype)
        start = int(self.offsets[position])
        stop = int(self.offsets[position + 1])
        return self.series[start:stop], self.weights[start:stop]

    def enable_postings_cache(self, capacity: int) -> None:
        """Keep up to *capacity* decoded postings pages hot in memory.

        A cached page is the ``(series, weights)`` pair of one codeword
        with the series indices materialised from the (possibly
        memory-mapped) backing arrays and the weights already widened to
        ``float64`` — exactly the form the scoring loop needs, so a hot
        codeword skips both the page fault and the ``astype`` copy.
        Shard payloads are immutable, so cached pages can never go
        stale; the cache itself rides along when a shard object is
        shared across index clones and serving snapshots.
        ``capacity <= 0`` disables caching.
        """
        capacity = int(capacity)
        if capacity <= 0:
            self._postings_cache = None
            self._postings_cache_capacity = 0
            return
        self._postings_cache_capacity = capacity
        if self._postings_cache is None:
            self._postings_cache = {}

    def scored_postings_of(self, codeword: int):
        """``(series, float64 weights)`` for one codeword, cached when hot.

        The uncached result is bit-identical to
        ``postings_of(codeword)`` followed by ``weights.astype(float)``
        — the cache only memoises that conversion, it never changes it.
        """
        cache = self._postings_cache
        if cache is not None:
            page = cache.get(codeword)
            if page is not None:
                self.postings_cache_hits += 1
                return page
            self.postings_cache_misses += 1
        series, weights = self.postings_of(codeword)
        page = (
            np.array(series, dtype=np.intp, copy=True),
            weights.astype(float),
        )
        if cache is not None and series.size:
            if len(cache) >= self._postings_cache_capacity:
                # FIFO eviction; dicts iterate in insertion order.  A
                # rare concurrent eviction race just clears the cache —
                # correctness never depends on what is cached.
                try:
                    del cache[next(iter(cache))]
                except (KeyError, RuntimeError, StopIteration):
                    cache.clear()
            cache[codeword] = page
        return page

    def counts_of(self, codeword: int) -> np.ndarray:
        """Raw term frequencies for one codeword (requires ``counts``)."""
        if self.counts is None:
            raise ValidationError(
                "this shard was written without raw counts (format version 1); "
                "rebuild the index to enable incremental maintenance"
            )
        position = int(np.searchsorted(self.codeword_ids, codeword))
        if (
            position >= self.codeword_ids.size
            or int(self.codeword_ids[position]) != codeword
        ):
            return np.empty(0, dtype=self.counts.dtype)
        start = int(self.offsets[position])
        stop = int(self.offsets[position + 1])
        return self.counts[start:stop]

    def pq_postings_of(self, codeword: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(series, codes)`` of the rank-0 features quantized to a codeword."""
        if not self.has_pq:
            return (
                np.empty(0, dtype=np.int32),
                np.empty((0, 0), dtype=np.uint8),
            )
        position = int(np.searchsorted(self.pq_codeword_ids, codeword))
        if (
            position >= self.pq_codeword_ids.size
            or int(self.pq_codeword_ids[position]) != codeword
        ):
            return (
                np.empty(0, dtype=self.pq_series.dtype),
                np.empty((0, self.pq_codes.shape[1]), dtype=self.pq_codes.dtype),
            )
        start = int(self.pq_offsets[position])
        stop = int(self.pq_offsets[position + 1])
        return self.pq_series[start:stop], self.pq_codes[start:stop]

    def save(
        self, path: Union[str, os.PathLike], *, pq_bits: Optional[int] = None
    ) -> None:
        """Write the shard as an uncompressed (mappable) ``.npz`` archive.

        The archive is assembled in a sibling temp file and moved into
        place with :func:`os.replace`, so a reader (or a crashed writer)
        never observes a half-written shard — overwriting a live index
        directory is safe on POSIX even while the previous shard files
        are still memory-mapped (the old inodes stay alive under the
        existing mappings).

        With ``pq_bits < 8`` the PQ code matrix is bit-packed into
        ``ceil(bits/8)`` of its dense size (format version 3); without
        *pq_bits* (or at 8 bits) codes are written dense, which is the
        version-2 layout.
        """
        payload = {
            "codeword_ids": np.asarray(self.codeword_ids, dtype=np.int32),
            "offsets": np.asarray(self.offsets, dtype=np.int64),
            "series": np.asarray(self.series, dtype=np.int32),
            "weights": np.asarray(self.weights, dtype=np.float32),
        }
        if self.counts is not None:
            payload["counts"] = np.asarray(self.counts, dtype=np.float64)
        if self.has_pq:
            payload["pq_codeword_ids"] = np.asarray(
                self.pq_codeword_ids, dtype=np.int32
            )
            payload["pq_offsets"] = np.asarray(self.pq_offsets, dtype=np.int64)
            payload["pq_series"] = np.asarray(self.pq_series, dtype=np.int32)
            codes = np.asarray(self.pq_codes, dtype=np.uint8)
            if pq_bits is not None and pq_bits < 8:
                from .pq import pack_codes

                payload["pq_codes_packed"] = pack_codes(codes, pq_bits)
                payload["pq_codes_shape"] = np.array(
                    [pq_bits, codes.shape[0], codes.shape[1]], dtype=np.int64
                )
            else:
                payload["pq_codes"] = codes
        path = os.fspath(path)
        temp_path = path + ".tmp"
        try:
            with open(temp_path, "wb") as handle:
                np.savez(handle, **payload)
            os.replace(temp_path, path)
        finally:
            if os.path.exists(temp_path):  # pragma: no cover - error path
                os.remove(temp_path)

    @classmethod
    def open(
        cls,
        path: Union[str, os.PathLike],
        first_codeword: int,
        last_codeword: int,
        *,
        mmap: bool = True,
    ) -> "IndexShard":
        """Reopen a shard written by :meth:`save`.

        With ``mmap=True`` (the default) the postings arrays are
        memory-mapped; ``mmap=False`` loads them fully into RAM (the
        baseline the memory benchmark compares against).
        """
        arrays = mmap_npz(path) if mmap else load_npz(path)
        missing = [name for name in SHARD_MEMBERS if name not in arrays]
        if missing:
            raise ValidationError(
                f"shard archive {os.fspath(path)!r} is missing members: {missing}"
            )
        pq_codes = arrays.get("pq_codes")
        if pq_codes is None and "pq_codes_packed" in arrays:
            # Version-3 sub-byte layout: decode the bit-packed stream
            # back into the dense uint8 matrix queries expect.  The
            # decoded matrix lives in RAM (it cannot be memory-mapped),
            # which is the documented cost of the smaller file.
            from .pq import unpack_codes

            shape = np.asarray(arrays["pq_codes_shape"], dtype=np.int64)
            if shape.shape != (3,):
                raise ValidationError(
                    f"shard archive {os.fspath(path)!r} has a malformed "
                    f"pq_codes_shape member"
                )
            pq_codes = unpack_codes(
                arrays["pq_codes_packed"],
                int(shape[0]), int(shape[1]), int(shape[2]),
            )
        return cls(
            first_codeword=first_codeword,
            last_codeword=last_codeword,
            codeword_ids=arrays["codeword_ids"],
            offsets=arrays["offsets"],
            series=arrays["series"],
            weights=arrays["weights"],
            counts=arrays.get("counts"),
            pq_codeword_ids=arrays.get("pq_codeword_ids"),
            pq_offsets=arrays.get("pq_offsets"),
            pq_series=arrays.get("pq_series"),
            pq_codes=pq_codes,
        )
