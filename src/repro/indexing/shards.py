"""Memory-mapped postings shards.

An index shard is one uncompressed ``.npz`` archive holding the postings
of a contiguous codeword range in CSR layout:

* ``codeword_ids`` — the codewords present in the shard, sorted ascending
  (``int32``);
* ``offsets`` — CSR offsets into the postings arrays, one entry per
  codeword id plus a trailing sentinel (``int64``);
* ``series`` — series indices of the postings (``int32``);
* ``weights`` — TF-IDF posting weights (``float32``).

``.npz`` archives are ZIP files; :func:`numpy.savez` stores members
*uncompressed* (``ZIP_STORED``), so each member is a plain ``.npy`` byte
range at a fixed offset inside the file.  :func:`mmap_npz` exploits that:
it parses the ZIP local headers and the ``.npy`` headers to recover each
member's dtype/shape/offset and returns :class:`numpy.memmap` views — the
OS pages postings in on demand and an index larger than RAM still serves
queries.  Compressed members (or anything else unexpected) fall back to a
normal in-memory load, so the reader works on any valid ``.npz``.
"""

from __future__ import annotations

import os
import struct
import zipfile
from dataclasses import dataclass
from typing import Dict, Union

import numpy as np

from ..exceptions import ValidationError

# Fixed part of a ZIP local file header: signature, version, flags,
# compression, mod time, mod date, crc32, compressed size, uncompressed
# size, file name length, extra field length.
_LOCAL_HEADER = struct.Struct("<4s5H3I2H")
_LOCAL_MAGIC = b"PK\x03\x04"

SHARD_MEMBERS = ("codeword_ids", "offsets", "series", "weights")


def _member_data_offset(handle, info: zipfile.ZipInfo) -> int:
    """Absolute file offset of a STORED member's data bytes.

    The local header's name/extra lengths may differ from the central
    directory's, so the local header is parsed directly.
    """
    handle.seek(info.header_offset)
    raw = handle.read(_LOCAL_HEADER.size)
    if len(raw) != _LOCAL_HEADER.size:
        raise ValidationError(f"truncated ZIP local header in shard member {info.filename!r}")
    fields = _LOCAL_HEADER.unpack(raw)
    if fields[0] != _LOCAL_MAGIC:
        raise ValidationError(f"bad ZIP local header magic for member {info.filename!r}")
    name_length, extra_length = fields[9], fields[10]
    return info.header_offset + _LOCAL_HEADER.size + name_length + extra_length


def _mmap_npy_member(path: str, handle, info: zipfile.ZipInfo) -> np.ndarray:
    """Memory-map one STORED ``.npy`` member of a ``.npz`` archive."""
    data_offset = _member_data_offset(handle, info)
    handle.seek(data_offset)
    version = np.lib.format.read_magic(handle)
    if version == (1, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
    elif version == (2, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
    else:  # pragma: no cover - future .npy versions
        raise ValidationError(f"unsupported .npy version {version} in {info.filename!r}")
    if fortran:  # pragma: no cover - we only ever write C-order arrays
        raise ValidationError("fortran-order shard members cannot be memory-mapped")
    if dtype.hasobject:
        raise ValidationError("object arrays cannot be memory-mapped")
    return np.memmap(path, dtype=dtype, mode="r", offset=handle.tell(), shape=shape)


def mmap_npz(path: Union[str, os.PathLike]) -> Dict[str, np.ndarray]:
    """Open an uncompressed ``.npz`` archive as memory-mapped arrays.

    Members that cannot be mapped (compressed, object dtype, exotic
    format) are loaded into memory instead, so the result is always a
    complete ``{member name: array}`` mapping.
    """
    path = os.fspath(path)
    arrays: Dict[str, np.ndarray] = {}
    fallbacks = []
    with zipfile.ZipFile(path, "r") as archive:
        with open(path, "rb") as handle:
            for info in archive.infolist():
                name = info.filename
                key = name[:-4] if name.endswith(".npy") else name
                if info.compress_type != zipfile.ZIP_STORED:
                    fallbacks.append(key)
                    continue
                try:
                    arrays[key] = _mmap_npy_member(path, handle, info)
                except ValidationError:
                    fallbacks.append(key)
    if fallbacks:
        with np.load(path, allow_pickle=False) as archive:
            for key in fallbacks:
                arrays[key] = archive[key]
    return arrays


def load_npz(path: Union[str, os.PathLike]) -> Dict[str, np.ndarray]:
    """Load every member of a ``.npz`` archive fully into memory."""
    with np.load(os.fspath(path), allow_pickle=False) as archive:
        return {key: np.ascontiguousarray(archive[key]) for key in archive.files}


@dataclass
class IndexShard:
    """Postings for one contiguous codeword range ``[first, last)``.

    The arrays may be ordinary in-memory ``ndarray`` objects (while an
    index is being built) or :class:`numpy.memmap` views (after a shard is
    reopened from disk); queries treat both identically.
    """

    first_codeword: int
    last_codeword: int
    codeword_ids: np.ndarray
    offsets: np.ndarray
    series: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        if self.last_codeword < self.first_codeword:
            raise ValidationError("shard codeword range is inverted")
        if self.offsets.size != self.codeword_ids.size + 1:
            raise ValidationError("shard offsets must have one entry per codeword plus a sentinel")
        if self.series.size != self.weights.size:
            raise ValidationError("shard series/weights arrays must have equal length")

    @property
    def num_postings(self) -> int:
        return int(self.series.size)

    @property
    def is_memory_mapped(self) -> bool:
        return isinstance(self.series, np.memmap)

    def covers(self, codeword: int) -> bool:
        return self.first_codeword <= codeword < self.last_codeword

    def postings_of(self, codeword: int):
        """``(series, weights)`` slices for one codeword (empty if absent)."""
        position = int(np.searchsorted(self.codeword_ids, codeword))
        if (
            position >= self.codeword_ids.size
            or int(self.codeword_ids[position]) != codeword
        ):
            empty = np.empty(0, dtype=self.series.dtype)
            return empty, np.empty(0, dtype=self.weights.dtype)
        start = int(self.offsets[position])
        stop = int(self.offsets[position + 1])
        return self.series[start:stop], self.weights[start:stop]

    def save(self, path: Union[str, os.PathLike]) -> None:
        """Write the shard as an uncompressed (mappable) ``.npz`` archive."""
        np.savez(
            os.fspath(path),
            codeword_ids=np.asarray(self.codeword_ids, dtype=np.int32),
            offsets=np.asarray(self.offsets, dtype=np.int64),
            series=np.asarray(self.series, dtype=np.int32),
            weights=np.asarray(self.weights, dtype=np.float32),
        )

    @classmethod
    def open(
        cls,
        path: Union[str, os.PathLike],
        first_codeword: int,
        last_codeword: int,
        *,
        mmap: bool = True,
    ) -> "IndexShard":
        """Reopen a shard written by :meth:`save`.

        With ``mmap=True`` (the default) the postings arrays are
        memory-mapped; ``mmap=False`` loads them fully into RAM (the
        baseline the memory benchmark compares against).
        """
        arrays = mmap_npz(path) if mmap else load_npz(path)
        missing = [name for name in SHARD_MEMBERS if name not in arrays]
        if missing:
            raise ValidationError(
                f"shard archive {os.fspath(path)!r} is missing members: {missing}"
            )
        return cls(
            first_codeword=first_codeword,
            last_codeword=last_codeword,
            codeword_ids=arrays["codeword_ids"],
            offsets=arrays["offsets"],
            series=arrays["series"],
            weights=arrays["weights"],
        )
