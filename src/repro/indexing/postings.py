"""The sharded inverted index: codeword -> (series, weight) postings.

Candidate generation works like text retrieval: every stored series is a
sparse TF-IDF-weighted bag of codewords (L2-normalised), a query becomes
the same kind of bag, and candidates are ranked by the dot product of
the two — accumulated codeword-by-codeword over the postings lists, so
query cost scales with the postings the query's codewords touch rather
than with the collection size.

Postings are grouped into :class:`~repro.indexing.shards.IndexShard`
objects, each covering a contiguous codeword range with roughly equal
postings mass.  Shards are the persistence unit: on disk each one is an
uncompressed ``.npz`` that reopens as memory-mapped arrays, so the
scoring loop below works identically on a freshly built in-memory index
and on an index paged in from disk.

Incremental maintenance (format version 2) follows the classic
LSM/tombstone recipe over *immutable* shard sets:

* :meth:`InvertedIndex.add_series` appends one small **delta shard**
  covering the whole codeword space — O(new features), no refit, no
  rebuild.  Delta postings are weighted with the index's frozen IDF
  table (the usual, documented drift until the next compaction).
* :meth:`InvertedIndex.remove_series` **tombstones** a series slot;
  tombstoned slots are masked out of every score and candidate list but
  their postings stay on disk until compaction.
* :meth:`InvertedIndex.compact` folds base + delta shards minus
  tombstones into a fresh base shard set, recomputing document
  frequencies and TF-IDF weights from the raw per-posting ``counts`` —
  the result is bit-identical to :meth:`InvertedIndex.from_bags` over
  the surviving bags (and therefore to a from-scratch rebuild under the
  same frozen codebook).

Existing shards are never mutated in place: mutators only append to (or
replace) the shard list, so readers holding a reference to an index
snapshot keep scoring a consistent shard set without locks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_int_at_least
from ..exceptions import ValidationError
from .shards import IndexShard

Bag = Tuple[np.ndarray, np.ndarray]
# One series' rank-0 PQ payload: (codeword per feature, (F, M) uint8 codes).
PQEntry = Tuple[np.ndarray, np.ndarray]


def inverse_document_frequencies(
    document_frequencies: np.ndarray, num_series: int
) -> np.ndarray:
    """Smoothed IDF: ``log(1 + N / df)`` (strictly positive)."""
    df = np.asarray(document_frequencies, dtype=float)
    return np.log1p(num_series / np.maximum(df, 1.0))


def _split_codeword_ranges(
    postings_per_codeword: np.ndarray, num_shards: int
) -> List[Tuple[int, int]]:
    """Partition the codeword space into ranges of ~equal postings mass."""
    num_codewords = postings_per_codeword.size
    num_shards = max(1, min(num_shards, num_codewords))
    cumulative = np.concatenate([[0], np.cumsum(postings_per_codeword)])
    total = float(cumulative[-1])
    boundaries = [0]
    for shard in range(1, num_shards):
        target = total * shard / num_shards
        cut = int(np.searchsorted(cumulative, target, side="left"))
        boundaries.append(min(max(cut, boundaries[-1] + 1), num_codewords))
    boundaries.append(num_codewords)
    ranges = []
    for lo, hi in zip(boundaries[:-1], boundaries[1:]):
        if hi > lo:
            ranges.append((lo, hi))
    return ranges or [(0, num_codewords)]


def _csr_for_range(
    codeword_column: np.ndarray, lo: int, hi: int
) -> Tuple[int, int, np.ndarray, np.ndarray]:
    """CSR pieces for one codeword range of a sorted codeword column."""
    start = int(np.searchsorted(codeword_column, lo, side="left"))
    stop = int(np.searchsorted(codeword_column, hi, side="left"))
    local = codeword_column[start:stop]
    unique, first_positions = np.unique(local, return_index=True)
    offsets = np.concatenate([first_positions, [local.size]]).astype(np.int64)
    return start, stop, unique.astype(np.int32), offsets


def _sorted_columns(
    per_series_codewords: Sequence[np.ndarray],
    per_series_payloads: Sequence[Sequence[np.ndarray]],
) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray]]:
    """Scatter per-series columns into codeword-major, series-minor order.

    The lexsort is stable, so entries sharing a ``(codeword, series)``
    pair keep their per-series input order — this is what makes a
    compaction's output bit-identical to a fresh build.
    """
    codeword_parts: List[np.ndarray] = []
    series_parts: List[np.ndarray] = []
    payload_parts: List[List[np.ndarray]] = [[] for _ in per_series_payloads[0]] if (
        per_series_codewords and per_series_payloads
    ) else []
    for series_index, codewords in enumerate(per_series_codewords):
        codewords = np.asarray(codewords, dtype=np.int64)
        if not codewords.size:
            continue
        codeword_parts.append(codewords)
        series_parts.append(np.full(codewords.size, series_index, dtype=np.int64))
        for column, payload in enumerate(per_series_payloads[series_index]):
            payload_parts[column].append(payload)
    if not codeword_parts:
        return (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            [np.zeros(0) for _ in payload_parts],
        )
    codeword_column = np.concatenate(codeword_parts)
    series_column = np.concatenate(series_parts)
    order = np.lexsort((series_column, codeword_column))
    payloads = [np.concatenate(parts)[order] for parts in payload_parts]
    return codeword_column[order], series_column[order], payloads


class InvertedIndex:
    """TF-IDF scored candidate generation over sharded postings.

    Parameters
    ----------
    num_series:
        Number of series *slots* the index covers (live plus
        tombstoned).  Slots are assigned in insertion order and are
        never reused until :meth:`compact` renumbers them.
    num_codewords:
        Size of the codeword space (the codebook's effective k).
    shards:
        Base postings shards in ascending codeword order.
    idf:
        Inverse document frequency per codeword, ``(num_codewords,)``.
    delta_shards:
        Incremental shards appended by :meth:`add_series`; each covers
        the whole codeword space.
    tombstones:
        Boolean mask of removed slots, ``(num_series,)``.
    """

    def __init__(
        self,
        num_series: int,
        num_codewords: int,
        shards: Sequence[IndexShard],
        idf: np.ndarray,
        *,
        delta_shards: Optional[Sequence[IndexShard]] = None,
        tombstones: Optional[np.ndarray] = None,
    ) -> None:
        self.num_series = check_int_at_least(num_series, 1, "num_series")
        self.num_codewords = check_int_at_least(num_codewords, 1, "num_codewords")
        self.shards = list(shards)
        self.idf = np.asarray(idf, dtype=float)
        if self.idf.shape != (self.num_codewords,):
            raise ValidationError("idf must have one entry per codeword")
        if not self.shards:
            raise ValidationError("an inverted index needs at least one shard")
        covered = self.shards[0].first_codeword
        for shard in self.shards:
            if shard.first_codeword != covered:
                raise ValidationError("shards must cover contiguous codeword ranges")
            covered = shard.last_codeword
        if self.shards[0].first_codeword != 0 or covered != self.num_codewords:
            raise ValidationError("shards must cover the whole codeword space")
        self.delta_shards = list(delta_shards) if delta_shards is not None else []
        for shard in self.delta_shards:
            if shard.first_codeword != 0 or shard.last_codeword != self.num_codewords:
                raise ValidationError(
                    "delta shards must cover the whole codeword space"
                )
        if tombstones is None:
            self.tombstones = np.zeros(self.num_series, dtype=bool)
        else:
            self.tombstones = np.asarray(tombstones, dtype=bool).copy()
            if self.tombstones.shape != (self.num_series,):
                raise ValidationError("tombstones must have one entry per slot")
        self._shard_starts = np.array(
            [shard.first_codeword for shard in self.shards], dtype=int
        )
        # Decoded-postings page cache capacity (per shard); propagated to
        # clones so delta shards appended after a clone inherit it.
        self._postings_cache_capacity = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_bags(
        cls,
        bags: Sequence[Bag],
        num_codewords: int,
        *,
        num_shards: int = 1,
        pq_entries: Optional[Sequence[Optional[PQEntry]]] = None,
    ) -> "InvertedIndex":
        """Build an in-memory index from per-series bags of codewords.

        Each bag is ``(codewords, counts)`` as produced by
        :meth:`repro.indexing.codebook.Codebook.bag`.  Term frequencies
        are IDF-weighted and L2-normalised per series before being
        scattered into the postings lists, so posting weights can be
        dot-producted directly; the raw counts are stored alongside so a
        later compaction can recompute the weights exactly.

        Parameters
        ----------
        pq_entries:
            Optional per-series PQ payloads, one ``(codewords, codes)``
            pair per series (rank-0 codeword per feature in feature
            order, plus the matching ``(F, M)`` ``uint8`` code rows) —
            or ``None`` for series without features.
        """
        num_series = len(bags)
        if num_series == 0:
            raise ValidationError("cannot build an index over zero series")
        if pq_entries is not None and len(pq_entries) != num_series:
            raise ValidationError("pq_entries must have one entry per series")
        num_codewords = check_int_at_least(num_codewords, 1, "num_codewords")
        document_frequency = np.zeros(num_codewords)
        for codewords, counts in bags:
            codewords = np.asarray(codewords)
            if codewords.size and (
                codewords.min() < 0 or codewords.max() >= num_codewords
            ):
                raise ValidationError("bag codeword id outside the codebook range")
            document_frequency[codewords] += 1.0
        idf = inverse_document_frequencies(document_frequency, num_series)

        # Normalised per-series weights, scattered codeword-major.
        per_series_codewords: List[np.ndarray] = []
        per_series_payloads: List[List[np.ndarray]] = []
        for codewords, counts in bags:
            codewords = np.asarray(codewords, dtype=np.int64)
            counts = np.asarray(counts, dtype=np.float64)
            weights = counts * idf[codewords]
            norm = float(np.linalg.norm(weights))
            if norm > 0.0:
                weights = weights / norm
            per_series_codewords.append(codewords)
            per_series_payloads.append([weights.astype(np.float32), counts])
        codeword_column, series_column, (weight_column, count_column) = (
            _sorted_columns(per_series_codewords, per_series_payloads)
        )

        code_width = 0
        if pq_entries is not None:
            pq_per_series_codewords: List[np.ndarray] = []
            pq_per_series_payloads: List[List[np.ndarray]] = []
            for entry in pq_entries:
                if entry is None:
                    pq_per_series_codewords.append(np.zeros(0, dtype=np.int64))
                    pq_per_series_payloads.append(
                        [np.zeros((0, 0), dtype=np.uint8)]
                    )
                    continue
                entry_codewords = np.asarray(entry[0], dtype=np.int64)
                entry_codes = np.atleast_2d(np.asarray(entry[1], dtype=np.uint8))
                if entry_codewords.size != entry_codes.shape[0]:
                    raise ValidationError(
                        "pq entry must carry one code row per assigned feature"
                    )
                if entry_codewords.size:
                    code_width = max(code_width, entry_codes.shape[1])
                pq_per_series_codewords.append(entry_codewords)
                pq_per_series_payloads.append([entry_codes])
            if code_width == 0:
                # No series carried any encoded feature; skip the PQ
                # structure entirely rather than building empty CSRs.
                pq_codeword_column = None
            else:
                for payloads in pq_per_series_payloads:
                    if payloads[0].shape[0] == 0:
                        payloads[0] = np.zeros((0, code_width), dtype=np.uint8)
                pq_codeword_column, pq_series_column, (pq_code_column,) = (
                    _sorted_columns(pq_per_series_codewords, pq_per_series_payloads)
                )
                pq_code_column = np.asarray(pq_code_column, dtype=np.uint8).reshape(
                    -1, code_width
                )
        else:
            pq_codeword_column = None

        postings_per_codeword = np.bincount(
            codeword_column, minlength=num_codewords
        )
        shards = []
        for lo, hi in _split_codeword_ranges(postings_per_codeword, num_shards):
            start, stop, unique, offsets = _csr_for_range(codeword_column, lo, hi)
            pq_members = {}
            if pq_codeword_column is not None:
                pq_start, pq_stop, pq_unique, pq_offsets = _csr_for_range(
                    pq_codeword_column, lo, hi
                )
                pq_members = {
                    "pq_codeword_ids": pq_unique,
                    "pq_offsets": pq_offsets,
                    "pq_series": pq_series_column[pq_start:pq_stop].astype(np.int32),
                    "pq_codes": pq_code_column[pq_start:pq_stop],
                }
            shards.append(
                IndexShard(
                    first_codeword=int(lo),
                    last_codeword=int(hi),
                    codeword_ids=unique,
                    offsets=offsets,
                    series=series_column[start:stop].astype(np.int32),
                    weights=weight_column[start:stop],
                    counts=count_column[start:stop],
                    **pq_members,
                )
            )
        return cls(
            num_series=num_series,
            num_codewords=num_codewords,
            shards=shards,
            idf=idf,
        )

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #
    @property
    def num_live(self) -> int:
        """Series slots that have not been tombstoned."""
        return int(self.num_series - self.tombstones.sum())

    @property
    def num_delta_shards(self) -> int:
        return len(self.delta_shards)

    @property
    def num_tombstones(self) -> int:
        return int(self.tombstones.sum())

    @property
    def has_pq(self) -> bool:
        """Whether any shard carries PQ code postings."""
        return any(s.has_pq for s in self.shards) or any(
            s.has_pq for s in self.delta_shards
        )

    @property
    def supports_incremental(self) -> bool:
        """Whether every shard carries the raw counts compaction needs."""
        return all(s.has_counts for s in self.shards) and all(
            s.has_counts for s in self.delta_shards
        )

    def clone(self) -> "InvertedIndex":
        """A copy sharing the (immutable) shard objects.

        Mutating the clone via :meth:`add_series` / :meth:`remove_series`
        never affects the original: shard payload arrays are never
        written in place, only the clone's shard list and tombstone mask
        change.  This is how serving snapshots stay lock-free while a
        writer prepares the next index state.
        """
        clone = InvertedIndex(
            num_series=self.num_series,
            num_codewords=self.num_codewords,
            shards=self.shards,
            idf=self.idf,
            delta_shards=self.delta_shards,
            tombstones=self.tombstones,
        )
        clone._postings_cache_capacity = self._postings_cache_capacity
        return clone

    def enable_postings_cache(self, capacity: int) -> None:
        """Enable the decoded-postings page cache on every shard.

        *capacity* is the number of hot codeword pages each shard keeps
        (``<= 0`` disables).  Shards are shared structurally across
        :meth:`clone` copies and serving snapshots, so pages warmed by
        one snapshot stay hot for the next — the payload arrays are
        immutable, which is what makes the sharing safe.  Delta shards
        appended later by :meth:`add_series` inherit the capacity.
        """
        self._postings_cache_capacity = max(0, int(capacity))
        for shard in list(self.shards) + list(self.delta_shards):
            shard.enable_postings_cache(self._postings_cache_capacity)

    def postings_cache_stats(self) -> dict:
        """Aggregate postings-page cache hit/miss tallies across shards.

        Counts accumulate over shard-object lifetime; because shards are
        shared structurally across clones and serving snapshots, the
        tallies survive snapshot derivations.  Read by the telemetry
        export (``repro_postings_cache_*`` gauges) and by per-query
        traces as a before/after delta.
        """
        hits = 0
        misses = 0
        for shard in list(self.shards) + list(self.delta_shards):
            hits += shard.postings_cache_hits
            misses += shard.postings_cache_misses
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / total) if total else 0.0,
        }

    def add_series(self, bag: Bag, pq_entry: Optional[PQEntry] = None) -> int:
        """Append one series as a delta shard; returns its new slot id.

        Cost is O(bag size): the new postings are weighted with the
        index's *frozen* IDF table (document frequencies drift until the
        next :meth:`compact`) and wrapped into one immutable delta shard
        covering the whole codeword space.  Existing shards are not
        touched.
        """
        slot = self.num_series
        codewords = np.asarray(bag[0], dtype=np.int64)
        counts = np.asarray(bag[1], dtype=np.float64)
        if codewords.size and (
            codewords.min() < 0 or codewords.max() >= self.num_codewords
        ):
            raise ValidationError("bag codeword id outside the codebook range")
        if codewords.size and np.any(np.diff(codewords) <= 0):
            raise ValidationError("bag codewords must be sorted and unique")
        weights = counts * self.idf[codewords]
        norm = float(np.linalg.norm(weights))
        if norm > 0.0:
            weights = weights / norm
        pq_members = {}
        if pq_entry is not None:
            entry_codewords = np.asarray(pq_entry[0], dtype=np.int64)
            entry_codes = np.atleast_2d(np.asarray(pq_entry[1], dtype=np.uint8))
            if entry_codewords.size != entry_codes.shape[0]:
                raise ValidationError(
                    "pq entry must carry one code row per assigned feature"
                )
            order = np.argsort(entry_codewords, kind="stable")
            sorted_codewords = entry_codewords[order]
            unique, first_positions = np.unique(sorted_codewords, return_index=True)
            pq_members = {
                "pq_codeword_ids": unique.astype(np.int32),
                "pq_offsets": np.concatenate(
                    [first_positions, [sorted_codewords.size]]
                ).astype(np.int64),
                "pq_series": np.full(sorted_codewords.size, slot, dtype=np.int32),
                "pq_codes": entry_codes[order],
            }
        if codewords.size or pq_members:
            delta = IndexShard(
                first_codeword=0,
                last_codeword=self.num_codewords,
                codeword_ids=codewords.astype(np.int32),
                offsets=np.arange(codewords.size + 1, dtype=np.int64),
                series=np.full(codewords.size, slot, dtype=np.int32),
                weights=weights.astype(np.float32),
                counts=counts,
                **pq_members,
            )
            if self._postings_cache_capacity:
                delta.enable_postings_cache(self._postings_cache_capacity)
            self.delta_shards.append(delta)
        self.num_series = slot + 1
        self.tombstones = np.append(self.tombstones, False)
        return slot

    def remove_series(self, slot: int) -> None:
        """Tombstone one series slot (postings removed at compaction)."""
        slot = int(slot)
        if not 0 <= slot < self.num_series:
            raise ValidationError(
                f"slot {slot} is outside this index's {self.num_series} slots"
            )
        tombstones = self.tombstones.copy()
        tombstones[slot] = True
        self.tombstones = tombstones

    def _gather_columns(self, pq: bool):
        """All postings columns across base + delta shards, in shard order."""
        codeword_parts: List[np.ndarray] = []
        series_parts: List[np.ndarray] = []
        payload_parts: List[np.ndarray] = []
        for shard in list(self.shards) + list(self.delta_shards):
            if pq:
                if not shard.has_pq:
                    continue
                lengths = np.diff(np.asarray(shard.pq_offsets, dtype=np.int64))
                codeword_parts.append(
                    np.repeat(np.asarray(shard.pq_codeword_ids, dtype=np.int64),
                              lengths)
                )
                series_parts.append(np.asarray(shard.pq_series, dtype=np.int64))
                payload_parts.append(np.asarray(shard.pq_codes, dtype=np.uint8))
            else:
                if not shard.has_counts:
                    raise ValidationError(
                        "cannot compact an index whose shards were written "
                        "without raw counts (format version 1); rebuild it"
                    )
                lengths = np.diff(np.asarray(shard.offsets, dtype=np.int64))
                codeword_parts.append(
                    np.repeat(np.asarray(shard.codeword_ids, dtype=np.int64),
                              lengths)
                )
                series_parts.append(np.asarray(shard.series, dtype=np.int64))
                payload_parts.append(np.asarray(shard.counts, dtype=np.float64))
        if not codeword_parts:
            empty_payload = (
                np.zeros((0, 0), dtype=np.uint8) if pq else np.zeros(0)
            )
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), (
                empty_payload
            )
        return (
            np.concatenate(codeword_parts),
            np.concatenate(series_parts),
            np.concatenate(payload_parts),
        )

    def compact(self, *, num_shards: int = 1) -> Tuple["InvertedIndex", np.ndarray]:
        """Merge base + delta shards, dropping tombstoned series.

        Returns ``(compacted, slot_map)``: a fresh index over the live
        series renumbered ``0..num_live-1`` in slot order, and the
        old-slot -> new-slot mapping (``-1`` for tombstoned slots).
        Document frequencies and TF-IDF weights are recomputed from the
        stored raw counts, so the result is **bit-identical** to
        :meth:`from_bags` over the surviving bags — i.e. to a
        from-scratch rebuild with the same codebook.
        """
        live = ~self.tombstones
        if not live.any():
            raise ValidationError("cannot compact an index with every slot removed")
        slot_map = np.full(self.num_series, -1, dtype=np.int64)
        slot_map[live] = np.arange(int(live.sum()), dtype=np.int64)

        codewords, series, counts = self._gather_columns(pq=False)
        keep = live[series] if series.size else np.zeros(0, dtype=bool)
        codewords, series, counts = codewords[keep], series[keep], counts[keep]
        # Per-series bags, codewords ascending — exactly what the
        # original builds passed to from_bags.
        order = np.lexsort((codewords, series))
        codewords, series, counts = (
            codewords[order], slot_map[series[order]], counts[order],
        )
        num_live = int(live.sum())
        bags: List[Bag] = [
            (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64))
            for _ in range(num_live)
        ]
        if series.size:
            boundaries = np.flatnonzero(np.diff(series)) + 1
            for block_series, block_codewords, block_counts in zip(
                np.split(series, boundaries),
                np.split(codewords, boundaries),
                np.split(counts, boundaries),
            ):
                bags[int(block_series[0])] = (block_codewords, block_counts)

        pq_entries: Optional[List[Optional[PQEntry]]] = None
        if self.has_pq:
            pq_codewords, pq_series, pq_codes = self._gather_columns(pq=True)
            keep = live[pq_series] if pq_series.size else np.zeros(0, dtype=bool)
            pq_codewords, pq_series, pq_codes = (
                pq_codewords[keep], pq_series[keep], pq_codes[keep],
            )
            # Stable series-major regrouping: within a series the
            # (codeword, original order) pairs survive every merge, so
            # the rebuilt CSR matches a fresh build bit for bit.
            order = np.argsort(pq_series, kind="stable")
            pq_codewords, pq_series, pq_codes = (
                pq_codewords[order], slot_map[pq_series[order]], pq_codes[order],
            )
            pq_entries = [None] * num_live
            if pq_series.size:
                boundaries = np.flatnonzero(np.diff(pq_series)) + 1
                for block_series, block_codewords, block_codes in zip(
                    np.split(pq_series, boundaries),
                    np.split(pq_codewords, boundaries),
                    np.split(pq_codes, boundaries),
                ):
                    pq_entries[int(block_series[0])] = (
                        block_codewords, block_codes,
                    )

        compacted = InvertedIndex.from_bags(
            bags, self.num_codewords,
            num_shards=num_shards, pq_entries=pq_entries,
        )
        return compacted, slot_map

    # ------------------------------------------------------------------ #
    # Querying
    # ------------------------------------------------------------------ #
    @property
    def num_postings(self) -> int:
        return sum(shard.num_postings for shard in self.shards) + sum(
            shard.num_postings for shard in self.delta_shards
        )

    @property
    def num_pq_postings(self) -> int:
        return sum(shard.num_pq_postings for shard in self.shards) + sum(
            shard.num_pq_postings for shard in self.delta_shards
        )

    @property
    def is_memory_mapped(self) -> bool:
        return all(shard.is_memory_mapped for shard in self.shards)

    def query_weights(self, bag: Bag) -> Tuple[np.ndarray, np.ndarray]:
        """IDF-weighted, L2-normalised query bag ``(codewords, weights)``."""
        codewords = np.asarray(bag[0], dtype=np.int64)
        counts = np.asarray(bag[1], dtype=float)
        if codewords.size and (
            codewords.min() < 0 or codewords.max() >= self.num_codewords
        ):
            raise ValidationError("query codeword id outside the codebook range")
        weights = counts * self.idf[codewords]
        norm = float(np.linalg.norm(weights))
        if norm > 0.0:
            weights = weights / norm
        return codewords, weights

    def scores(self, bag: Bag) -> Tuple[np.ndarray, np.ndarray]:
        """Cosine scores of every stored series against a query bag.

        Returns ``(scores, touched)``: the score vector and a boolean
        mask of series that share at least one codeword with the query
        (series outside the mask were never visited — that is the
        sublinear part).  Tombstoned slots always score zero and are
        never marked touched.
        """
        codewords, weights = self.query_weights(bag)
        scores = np.zeros(self.num_series)
        touched = np.zeros(self.num_series, dtype=bool)
        if not codewords.size:
            return scores, touched
        shard_of = np.searchsorted(self._shard_starts, codewords, side="right") - 1
        for position in range(codewords.size):
            shard = self.shards[int(shard_of[position])]
            series, posting_weights = shard.scored_postings_of(
                int(codewords[position])
            )
            if not series.size:
                continue
            # Series indices are unique within one codeword's postings
            # list (one posting per (codeword, series)), so plain fancy
            # indexing accumulates correctly — and avoids np.add.at's
            # slow unbuffered path on the hot stage-1 loop.  float64
            # accumulation over float32 postings, in stored order, keeps
            # in-memory and reopened indexes scoring bit-identically
            # (scored_postings_of memoises exactly the float64 widening
            # this loop used to do inline).
            scores[series] += weights[position] * posting_weights
            touched[series] = True
        for shard in self.delta_shards:
            for position in range(codewords.size):
                series, posting_weights = shard.scored_postings_of(
                    int(codewords[position])
                )
                if not series.size:
                    continue
                scores[series] += weights[position] * posting_weights
                touched[series] = True
        if self.num_tombstones:
            scores[self.tombstones] = 0.0
            touched[self.tombstones] = False
        return scores, touched

    def pq_postings_segments(self, codeword: int):
        """Yield ``(series, codes)`` PQ postings of one codeword per shard."""
        codeword = int(codeword)
        shard_index = int(
            np.searchsorted(self._shard_starts, codeword, side="right") - 1
        )
        for shard in [self.shards[shard_index]] + list(self.delta_shards):
            if not shard.has_pq:
                continue
            series, codes = shard.pq_postings_of(codeword)
            if series.size:
                yield series, codes

    def candidates(self, bag: Bag, limit: Optional[int] = None) -> np.ndarray:
        """Ranked candidate series indices for a query bag.

        Series sharing codewords with the query come first, by descending
        score with ascending index as the deterministic tie-break; when
        *limit* exceeds the number of scored series the remaining *live*
        indices follow in ascending order, so ``limit >= num_live``
        always degrades to the full live collection (the exactness
        escape hatch).  Tombstoned slots are never returned.
        """
        if limit is None:
            limit = self.num_series
        limit = check_int_at_least(limit, 1, "limit")
        scores, touched = self.scores(bag)
        scored = np.nonzero(touched)[0]
        ranked = scored[np.lexsort((scored, -scores[scored]))]
        if ranked.size >= limit:
            return ranked[:limit]
        rest = np.nonzero(~touched & ~self.tombstones)[0]
        return np.concatenate([ranked, rest[: limit - ranked.size]])


__all__ = ["InvertedIndex", "inverse_document_frequencies"]
