"""The sharded inverted index: codeword -> (series, weight) postings.

Candidate generation works like text retrieval: every stored series is a
sparse TF-IDF-weighted bag of codewords (L2-normalised), a query becomes
the same kind of bag, and candidates are ranked by the dot product of
the two — accumulated codeword-by-codeword over the postings lists, so
query cost scales with the postings the query's codewords touch rather
than with the collection size.

Postings are grouped into :class:`~repro.indexing.shards.IndexShard`
objects, each covering a contiguous codeword range with roughly equal
postings mass.  Shards are the persistence unit: on disk each one is an
uncompressed ``.npz`` that reopens as memory-mapped arrays, so the
scoring loop below works identically on a freshly built in-memory index
and on an index paged in from disk.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_int_at_least
from ..exceptions import ValidationError
from .shards import IndexShard

Bag = Tuple[np.ndarray, np.ndarray]


def inverse_document_frequencies(
    document_frequencies: np.ndarray, num_series: int
) -> np.ndarray:
    """Smoothed IDF: ``log(1 + N / df)`` (strictly positive)."""
    df = np.asarray(document_frequencies, dtype=float)
    return np.log1p(num_series / np.maximum(df, 1.0))


def _split_codeword_ranges(
    postings_per_codeword: np.ndarray, num_shards: int
) -> List[Tuple[int, int]]:
    """Partition the codeword space into ranges of ~equal postings mass."""
    num_codewords = postings_per_codeword.size
    num_shards = max(1, min(num_shards, num_codewords))
    cumulative = np.concatenate([[0], np.cumsum(postings_per_codeword)])
    total = float(cumulative[-1])
    boundaries = [0]
    for shard in range(1, num_shards):
        target = total * shard / num_shards
        cut = int(np.searchsorted(cumulative, target, side="left"))
        boundaries.append(min(max(cut, boundaries[-1] + 1), num_codewords))
    boundaries.append(num_codewords)
    ranges = []
    for lo, hi in zip(boundaries[:-1], boundaries[1:]):
        if hi > lo:
            ranges.append((lo, hi))
    return ranges or [(0, num_codewords)]


class InvertedIndex:
    """TF-IDF scored candidate generation over sharded postings.

    Parameters
    ----------
    num_series:
        Size of the indexed collection.
    num_codewords:
        Size of the codeword space (the codebook's effective k).
    shards:
        Postings shards in ascending codeword order.
    idf:
        Inverse document frequency per codeword, ``(num_codewords,)``.
    """

    def __init__(
        self,
        num_series: int,
        num_codewords: int,
        shards: Sequence[IndexShard],
        idf: np.ndarray,
    ) -> None:
        self.num_series = check_int_at_least(num_series, 1, "num_series")
        self.num_codewords = check_int_at_least(num_codewords, 1, "num_codewords")
        self.shards = list(shards)
        self.idf = np.asarray(idf, dtype=float)
        if self.idf.shape != (self.num_codewords,):
            raise ValidationError("idf must have one entry per codeword")
        if not self.shards:
            raise ValidationError("an inverted index needs at least one shard")
        covered = self.shards[0].first_codeword
        for shard in self.shards:
            if shard.first_codeword != covered:
                raise ValidationError("shards must cover contiguous codeword ranges")
            covered = shard.last_codeword
        if self.shards[0].first_codeword != 0 or covered != self.num_codewords:
            raise ValidationError("shards must cover the whole codeword space")
        self._shard_starts = np.array(
            [shard.first_codeword for shard in self.shards], dtype=int
        )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_bags(
        cls,
        bags: Sequence[Bag],
        num_codewords: int,
        *,
        num_shards: int = 1,
    ) -> "InvertedIndex":
        """Build an in-memory index from per-series bags of codewords.

        Each bag is ``(codewords, counts)`` as produced by
        :meth:`repro.indexing.codebook.Codebook.bag`.  Term frequencies
        are IDF-weighted and L2-normalised per series before being
        scattered into the postings lists, so posting weights can be
        dot-producted directly.
        """
        num_series = len(bags)
        if num_series == 0:
            raise ValidationError("cannot build an index over zero series")
        num_codewords = check_int_at_least(num_codewords, 1, "num_codewords")
        document_frequency = np.zeros(num_codewords)
        for codewords, counts in bags:
            codewords = np.asarray(codewords)
            if codewords.size and (
                codewords.min() < 0 or codewords.max() >= num_codewords
            ):
                raise ValidationError("bag codeword id outside the codebook range")
            document_frequency[codewords] += 1.0
        idf = inverse_document_frequencies(document_frequency, num_series)

        # Normalised per-series weights, scattered codeword-major.
        all_codewords: List[np.ndarray] = []
        all_series: List[np.ndarray] = []
        all_weights: List[np.ndarray] = []
        for series_index, (codewords, counts) in enumerate(bags):
            codewords = np.asarray(codewords, dtype=np.int64)
            if not codewords.size:
                continue
            weights = np.asarray(counts, dtype=float) * idf[codewords]
            norm = float(np.linalg.norm(weights))
            if norm > 0.0:
                weights = weights / norm
            all_codewords.append(codewords)
            all_series.append(np.full(codewords.size, series_index, dtype=np.int64))
            all_weights.append(weights)
        if all_codewords:
            codeword_column = np.concatenate(all_codewords)
            series_column = np.concatenate(all_series)
            weight_column = np.concatenate(all_weights).astype(np.float32)
        else:
            codeword_column = np.zeros(0, dtype=np.int64)
            series_column = np.zeros(0, dtype=np.int64)
            weight_column = np.zeros(0, dtype=np.float32)
        # Codeword-major, series-minor ordering makes postings lists
        # contiguous and deterministically ordered.
        order = np.lexsort((series_column, codeword_column))
        codeword_column = codeword_column[order]
        series_column = series_column[order]
        weight_column = weight_column[order]

        postings_per_codeword = np.bincount(
            codeword_column, minlength=num_codewords
        )
        shards = []
        for lo, hi in _split_codeword_ranges(postings_per_codeword, num_shards):
            start = int(np.searchsorted(codeword_column, lo, side="left"))
            stop = int(np.searchsorted(codeword_column, hi, side="left"))
            local_codewords = codeword_column[start:stop]
            unique, first_positions = np.unique(local_codewords, return_index=True)
            offsets = np.concatenate(
                [first_positions, [local_codewords.size]]
            ).astype(np.int64)
            shards.append(
                IndexShard(
                    first_codeword=int(lo),
                    last_codeword=int(hi),
                    codeword_ids=unique.astype(np.int32),
                    offsets=offsets,
                    series=series_column[start:stop].astype(np.int32),
                    weights=weight_column[start:stop],
                )
            )
        return cls(
            num_series=num_series,
            num_codewords=num_codewords,
            shards=shards,
            idf=idf,
        )

    # ------------------------------------------------------------------ #
    # Querying
    # ------------------------------------------------------------------ #
    @property
    def num_postings(self) -> int:
        return sum(shard.num_postings for shard in self.shards)

    @property
    def is_memory_mapped(self) -> bool:
        return all(shard.is_memory_mapped for shard in self.shards)

    def query_weights(self, bag: Bag) -> Tuple[np.ndarray, np.ndarray]:
        """IDF-weighted, L2-normalised query bag ``(codewords, weights)``."""
        codewords = np.asarray(bag[0], dtype=np.int64)
        counts = np.asarray(bag[1], dtype=float)
        if codewords.size and (
            codewords.min() < 0 or codewords.max() >= self.num_codewords
        ):
            raise ValidationError("query codeword id outside the codebook range")
        weights = counts * self.idf[codewords]
        norm = float(np.linalg.norm(weights))
        if norm > 0.0:
            weights = weights / norm
        return codewords, weights

    def scores(self, bag: Bag) -> Tuple[np.ndarray, np.ndarray]:
        """Cosine scores of every stored series against a query bag.

        Returns ``(scores, touched)``: the score vector and a boolean
        mask of series that share at least one codeword with the query
        (series outside the mask were never visited — that is the
        sublinear part).
        """
        codewords, weights = self.query_weights(bag)
        scores = np.zeros(self.num_series)
        touched = np.zeros(self.num_series, dtype=bool)
        if not codewords.size:
            return scores, touched
        shard_of = np.searchsorted(self._shard_starts, codewords, side="right") - 1
        for position in range(codewords.size):
            shard = self.shards[int(shard_of[position])]
            series, posting_weights = shard.postings_of(int(codewords[position]))
            if not series.size:
                continue
            # Series indices are unique within one codeword's postings
            # list (one posting per (codeword, series)), so plain fancy
            # indexing accumulates correctly — and avoids np.add.at's
            # slow unbuffered path on the hot stage-1 loop.  float64
            # accumulation over float32 postings, in stored order, keeps
            # in-memory and reopened indexes scoring bit-identically.
            scores[series] += weights[position] * posting_weights.astype(float)
            touched[series] = True
        return scores, touched

    def candidates(self, bag: Bag, limit: Optional[int] = None) -> np.ndarray:
        """Ranked candidate series indices for a query bag.

        Series sharing codewords with the query come first, by descending
        score with ascending index as the deterministic tie-break; when
        *limit* exceeds the number of scored series the remaining indices
        follow in ascending order, so ``limit >= num_series`` always
        degrades to the full collection (the exactness escape hatch).
        """
        if limit is None:
            limit = self.num_series
        limit = check_int_at_least(limit, 1, "limit")
        scores, touched = self.scores(bag)
        scored = np.nonzero(touched)[0]
        ranked = scored[np.lexsort((scored, -scores[scored]))]
        if ranked.size >= limit:
            return ranked[:limit]
        rest = np.nonzero(~touched)[0]
        return np.concatenate([ranked, rest[: limit - ranked.size]])


__all__ = ["InvertedIndex", "inverse_document_frequencies"]
