"""Two-stage indexed search: candidate generation + exact re-ranking.

:class:`IndexedSearcher` is the query-facing front of the indexing
subsystem.  A query runs in two stages:

1. **Candidate generation** — the query's salient features are
   quantized against the collection's :class:`Codebook` and scored
   through the :class:`InvertedIndex`; the top ``C`` series by codeword
   overlap (``C`` = the candidate budget, configurable per query) become
   the candidate set.  Cost scales with the postings touched, not with
   the collection size.
2. **Exact re-ranking** — the candidates are handed to the PR 1
   :class:`~repro.engine.DistanceEngine` cascade (LB_Kim -> LB_Keogh ->
   early-abandoning banded DTW) via its ``candidate_indices`` hook, so
   the distances and orderings of stage 2 are *exactly* those of a full
   scan restricted to the candidate set.

With ``candidates >= len(collection)`` the candidate set degrades to
the whole collection and the result is bit-identical to the exhaustive
engine ranking; ``exact=True`` skips stage 1 entirely (the escape
hatch).  :meth:`IndexedSearcher.recall_at_k` measures the speed/recall
trade-off against the exhaustive ranking.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import as_series, check_int_at_least
from ..core.config import SDTWConfig
from ..core.features import extract_salient_features
from ..datasets.base import Dataset
from ..engine import DistanceEngine
from ..engine.engine import EngineHit, QueryResult
from ..engine.stats import EngineStats
from ..exceptions import ValidationError
from .codebook import Codebook, CodebookConfig
from .postings import InvertedIndex
from .store import IndexReader, IndexWriter


@dataclass(frozen=True)
class IndexedSearchResult:
    """Result of one indexed query.

    Attributes
    ----------
    hits:
        The k nearest candidates after exact re-ranking.
    candidates_generated:
        Size of the candidate set stage 1 handed to the engine (equal to
        the collection size for ``exact=True`` queries).
    exact:
        Whether the query bypassed candidate generation.
    generation_seconds:
        Stage 1 wall-clock (feature extraction + quantization + postings
        scoring); zero for exact queries.
    rerank_seconds:
        Stage 2 wall-clock (the engine cascade over the candidates).
    stats:
        The engine's per-stage work accounting for stage 2.
    """

    hits: Tuple[EngineHit, ...]
    candidates_generated: int
    exact: bool
    generation_seconds: float
    rerank_seconds: float
    stats: EngineStats

    @property
    def indices(self) -> Tuple[int, ...]:
        return tuple(hit.index for hit in self.hits)

    @property
    def elapsed_seconds(self) -> float:
        return self.generation_seconds + self.rerank_seconds


@dataclass
class RecallReport:
    """Recall of the indexed ranking against the exhaustive one."""

    k: int
    candidate_budget: int
    per_query: List[float] = field(default_factory=list)
    indexed_seconds: float = 0.0
    exhaustive_seconds: float = 0.0

    @property
    def mean_recall(self) -> float:
        return float(np.mean(self.per_query)) if self.per_query else 0.0

    @property
    def speedup(self) -> float:
        if self.indexed_seconds <= 0.0:
            return float("inf")
        return self.exhaustive_seconds / self.indexed_seconds


class IndexedSearcher:
    """k-NN search with sublinear candidate generation.

    Parameters
    ----------
    index:
        The inverted index over the collection.
    codebook:
        The quantizer the index was built with.
    engine:
        A :class:`DistanceEngine` whose stored collection matches the
        index order (series ``i`` of the engine is series ``i`` of the
        index).
    config:
        Extraction configuration used for query features; must match the
        configuration the indexed features were extracted with.
    candidate_budget:
        Default number of candidates generated per query.
    """

    def __init__(
        self,
        index: InvertedIndex,
        codebook: Codebook,
        engine: DistanceEngine,
        *,
        config: Optional[SDTWConfig] = None,
        candidate_budget: int = 100,
    ) -> None:
        if len(engine) != index.num_series:
            raise ValidationError(
                f"engine holds {len(engine)} series but the index covers "
                f"{index.num_series}"
            )
        if not codebook.is_fitted:
            raise ValidationError("the searcher needs a fitted codebook")
        self.index = index
        self.codebook = codebook
        self.engine = engine
        self.config = config if config is not None else SDTWConfig()
        if self.config.descriptor.num_bins != codebook.config.descriptor_bins:
            raise ValidationError(
                f"extraction configuration has "
                f"{self.config.descriptor.num_bins}-bin descriptors but the "
                f"codebook was fitted on {codebook.config.descriptor_bins}-bin "
                f"descriptors"
            )
        self.candidate_budget = check_int_at_least(
            candidate_budget, 1, "candidate_budget"
        )
        # Build-time features, kept so save() can skip re-extraction.
        self._features: Optional[List] = None

    def __len__(self) -> int:
        return self.index.num_series

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_engine(
        cls,
        engine: DistanceEngine,
        *,
        config: Optional[SDTWConfig] = None,
        codebook_config: Optional[CodebookConfig] = None,
        num_shards: int = 4,
        candidate_budget: int = 100,
        features: Optional[Sequence[Sequence]] = None,
    ) -> "IndexedSearcher":
        """Build the index layers over an engine's stored collection.

        The single construction path every builder funnels through:
        features are extracted once per stored series (the paper's
        amortisation argument), the codebook is fitted on them, and the
        bags become the inverted index.  The engine is re-used as the
        re-ranking stage.

        Parameters
        ----------
        features:
            Optional pre-extracted salient features, one list per stored
            series in engine order (e.g. from a
            :class:`~repro.retrieval.feature_store.FeatureStore`); they
            must come from the same extraction configuration.  Skips the
            per-series extraction pass entirely — this is how the
            Workspace facade builds its index without ever re-extracting.
        """
        config = config if config is not None else SDTWConfig()
        if codebook_config is None:
            codebook_config = CodebookConfig.for_sdtw(config)
        stored = engine.stored_items()
        if not stored:
            raise ValidationError("cannot build an index over zero series")
        identifiers = [identifier for identifier, _, _ in stored]
        if len(set(identifiers)) != len(identifiers):
            # Persistence (and the bundled FeatureStore) key series by
            # identifier; duplicates would silently collapse on reopen.
            raise ValidationError(
                "cannot index a collection with duplicate identifiers"
            )
        if features is None:
            features = [
                extract_salient_features(values, config) for _, values, _ in stored
            ]
        else:
            features = [list(feature_list) for feature_list in features]
            if len(features) != len(stored):
                raise ValidationError(
                    "features must have one feature list per stored series"
                )
        lengths = [values.size for _, values, _ in stored]
        codebook = Codebook(codebook_config).fit(features, lengths)
        bags = [
            codebook.bag(feature_list, length)
            for feature_list, length in zip(features, lengths)
        ]
        index = InvertedIndex.from_bags(
            bags, codebook.num_codewords, num_shards=num_shards
        )
        searcher = cls(
            index, codebook, engine,
            config=config, candidate_budget=candidate_budget,
        )
        searcher._features = features
        return searcher

    @classmethod
    def build(
        cls,
        series: Sequence[Union[Sequence[float], np.ndarray]],
        identifiers: Optional[Sequence[str]] = None,
        labels: Optional[Sequence[Optional[int]]] = None,
        *,
        config: Optional[SDTWConfig] = None,
        codebook_config: Optional[CodebookConfig] = None,
        constraint: str = "fc,fw",
        num_shards: int = 4,
        candidate_budget: int = 100,
        backend: str = "serial",
        engine_kwargs: Optional[dict] = None,
    ) -> "IndexedSearcher":
        """Build a searcher (codebook + index + engine) over a collection."""
        config = config if config is not None else SDTWConfig()
        arrays = [as_series(values, f"series[{i}]") for i, values in enumerate(series)]
        if not arrays:
            raise ValidationError("cannot build an index over zero series")
        if identifiers is None:
            identifiers = [f"series-{i:05d}" for i in range(len(arrays))]
        if len(identifiers) != len(arrays):
            raise ValidationError("identifiers must have one entry per series")
        if labels is None:
            labels = [None] * len(arrays)
        if len(labels) != len(arrays):
            raise ValidationError("labels must have one entry per series")
        engine = DistanceEngine(
            constraint, config, backend=backend, **(engine_kwargs or {})
        )
        for values, identifier, label in zip(arrays, identifiers, labels):
            engine.add(values, identifier=identifier, label=label)
        return cls.from_engine(
            engine,
            config=config,
            codebook_config=codebook_config,
            num_shards=num_shards,
            candidate_budget=candidate_budget,
        )

    @classmethod
    def from_dataset(cls, dataset: Dataset, **kwargs) -> "IndexedSearcher":
        """Build a searcher over a data set (labels preserved)."""
        identifiers = [
            ts.identifier or f"{dataset.name}-{i:04d}"
            for i, ts in enumerate(dataset)
        ]
        return cls.build(
            dataset.values_list(), identifiers, dataset.labels, **kwargs
        )

    @classmethod
    def from_reader(
        cls,
        reader: IndexReader,
        *,
        config: Optional[SDTWConfig] = None,
        constraint: str = "fc,fw",
        candidate_budget: int = 100,
        backend: str = "serial",
        engine_kwargs: Optional[dict] = None,
    ) -> "IndexedSearcher":
        """Reopen a persisted index (with its bundled feature store).

        The feature store supplies the raw series for re-ranking, in the
        index's series order, so no re-extraction happens.
        """
        persisted = reader.extraction_config()
        if config is None:
            # Reconstruct the exact build-time configuration from the
            # manifest; only pre-fingerprint indexes fall back to defaults.
            config = persisted if persisted is not None else SDTWConfig()
        elif persisted is not None and config != persisted:
            raise ValidationError(
                "the supplied extraction configuration differs from the one "
                "this index was built with; omit `config` to use the "
                "persisted configuration"
            )
        store = reader.load_feature_store(config=config)
        engine = DistanceEngine(
            constraint, config, backend=backend, **(engine_kwargs or {})
        )
        for position, identifier in enumerate(reader.identifiers):
            engine.add(
                store.series_of(identifier),
                identifier=identifier,
                label=reader.labels[position],
            )
        return cls(
            reader.index, reader.codebook, engine,
            config=config, candidate_budget=candidate_budget,
        )

    def save(self, directory, *, feature_store=None) -> str:
        """Persist the searcher's index; returns the manifest path.

        When *feature_store* is omitted one is assembled from the
        engine's stored series (re-using build-time features when this
        searcher was created by :meth:`build`).
        """
        stored = self.engine.stored_items()
        if feature_store is None:
            from ..retrieval.feature_store import FeatureStore

            feature_store = FeatureStore(config=self.config)
            build_features = self._features
            for position, (identifier, values, _) in enumerate(stored):
                feature_store.add_series(
                    identifier,
                    values,
                    features=(
                        build_features[position]
                        if build_features is not None else None
                    ),
                )
        return IndexWriter(directory).write(
            self.index,
            self.codebook,
            [identifier for identifier, _, _ in stored],
            [label for _, _, label in stored],
            feature_store=feature_store,
            extraction_config=self.config,
        )

    @classmethod
    def open(cls, directory, **kwargs) -> "IndexedSearcher":
        """Open a persisted index directory (memory-mapped shards)."""
        mmap = kwargs.pop("mmap", True)
        return cls.from_reader(IndexReader.open(directory, mmap=mmap), **kwargs)

    # ------------------------------------------------------------------ #
    # Querying
    # ------------------------------------------------------------------ #
    def generate_candidates(
        self,
        values: Union[Sequence[float], np.ndarray],
        limit: Optional[int] = None,
    ) -> np.ndarray:
        """Stage 1 alone: the ranked candidate indices for a query."""
        query = as_series(values, "query")
        features = extract_salient_features(query, self.config)
        bag = self.codebook.bag(features, query.size, query=True)
        return self.index.candidates(
            bag, limit if limit is not None else self.candidate_budget
        )

    def query(
        self,
        values: Union[Sequence[float], np.ndarray],
        k: int = 10,
        *,
        candidates: Optional[int] = None,
        exact: bool = False,
        exclude_identifier: Optional[str] = None,
    ) -> IndexedSearchResult:
        """Find the k nearest stored series to a query.

        Parameters
        ----------
        values:
            The query series.
        k:
            Neighbours to return.
        candidates:
            Candidate budget ``C`` for this query (default: the
            searcher's budget).  ``C >= len(collection)`` reproduces the
            exhaustive ranking exactly.
        exact:
            Bypass the index and run the full engine scan (the escape
            hatch; the result is the exhaustive ranking).
        exclude_identifier:
            Skip this stored identifier (leave-one-out evaluations).
        """
        k = check_int_at_least(k, 1, "k")
        if exact:
            result = self.engine.query(
                values, k, exclude_identifier=exclude_identifier
            )
            return IndexedSearchResult(
                hits=result.hits,
                candidates_generated=len(self.engine),
                exact=True,
                generation_seconds=0.0,
                rerank_seconds=result.stats.elapsed_seconds,
                stats=result.stats,
            )
        started = time.perf_counter()
        candidate_set = self.generate_candidates(values, candidates)
        generation_seconds = time.perf_counter() - started
        result: QueryResult = self.engine.query(
            values, k,
            exclude_identifier=exclude_identifier,
            candidate_indices=candidate_set,
        )
        return IndexedSearchResult(
            hits=result.hits,
            candidates_generated=int(candidate_set.size),
            exact=False,
            generation_seconds=generation_seconds,
            rerank_seconds=result.stats.elapsed_seconds,
            stats=result.stats,
        )

    def batch_query(
        self,
        queries: Sequence[Union[Sequence[float], np.ndarray]],
        k: int = 10,
        *,
        candidates: Optional[int] = None,
        exclude_identifiers: Optional[Sequence[Optional[str]]] = None,
    ) -> List[IndexedSearchResult]:
        """Indexed k-NN for many queries (results in query order)."""
        if exclude_identifiers is not None and len(exclude_identifiers) != len(queries):
            raise ValidationError(
                "exclude_identifiers must have one entry per query"
            )
        return [
            self.query(
                values, k,
                candidates=candidates,
                exclude_identifier=(
                    exclude_identifiers[qi] if exclude_identifiers else None
                ),
            )
            for qi, values in enumerate(queries)
        ]

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def recall_at_k(
        self,
        queries: Sequence[Union[Sequence[float], np.ndarray]],
        k: int = 10,
        *,
        candidates: Optional[int] = None,
        exclude_identifiers: Optional[Sequence[Optional[str]]] = None,
    ) -> RecallReport:
        """Recall@k of the indexed ranking vs. the exhaustive ranking.

        Each query is answered twice — through the index and through the
        full engine scan — and the report aggregates per-query recall
        plus the two wall-clock totals (the speed/recall trade-off in
        one call).
        """
        k = check_int_at_least(k, 1, "k")
        budget = (
            self.candidate_budget if candidates is None
            else check_int_at_least(candidates, 1, "candidates")
        )
        report = RecallReport(k=k, candidate_budget=budget)
        for qi, values in enumerate(queries):
            exclude = (
                exclude_identifiers[qi] if exclude_identifiers is not None else None
            )
            indexed = self.query(
                values, k, candidates=budget, exclude_identifier=exclude
            )
            report.indexed_seconds += indexed.elapsed_seconds
            exact = self.query(values, k, exact=True, exclude_identifier=exclude)
            report.exhaustive_seconds += exact.elapsed_seconds
            exact_top = set(exact.indices)
            if exact_top:
                overlap = len(exact_top & set(indexed.indices))
                report.per_query.append(overlap / len(exact_top))
            else:
                report.per_query.append(1.0)
        return report


__all__ = ["IndexedSearchResult", "IndexedSearcher", "RecallReport"]
