"""Two-stage indexed search: candidate generation + exact re-ranking.

:class:`IndexedSearcher` is the query-facing front of the indexing
subsystem.  A query runs in two stages:

1. **Candidate generation** — the query's salient features are
   quantized against the collection's :class:`Codebook` and scored
   through the :class:`InvertedIndex`; the top ``C`` series by codeword
   overlap (``C`` = the candidate budget, configurable per query) become
   the candidate set.  Cost scales with the postings touched, not with
   the collection size.
2. **Exact re-ranking** — the candidates are handed to the PR 1
   :class:`~repro.engine.DistanceEngine` cascade (LB_Kim -> LB_Keogh ->
   early-abandoning banded DTW) via its ``candidate_indices`` hook, so
   the distances and orderings of stage 2 are *exactly* those of a full
   scan restricted to the candidate set.

With ``candidates >= len(collection)`` the candidate set degrades to
the whole collection and the result is bit-identical to the exhaustive
engine ranking; ``exact=True`` skips stage 1 entirely (the escape
hatch).  :meth:`IndexedSearcher.recall_at_k` measures the speed/recall
trade-off against the exhaustive ranking.

When constructed with a telemetry registry (see :mod:`repro.telemetry`)
the searcher counts candidate-cache hits/misses, and when a query trace
is active (:func:`repro.telemetry.trace.current_trace`) stage 1 attaches
its sub-spans — feature extraction, TF-IDF/PQ ranking, or the cache
short-circuit — to the trace.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import as_series, check_int_at_least
from ..core.config import SDTWConfig
from ..core.features import extract_salient_features
from ..datasets.base import Dataset
from ..engine import DistanceEngine
from ..engine.engine import EngineHit, QueryResult
from ..engine.stats import EngineStats
from ..exceptions import ValidationError
from ..telemetry.registry import NULL_REGISTRY
from ..telemetry.trace import current_trace
from .codebook import Codebook, CodebookConfig, feature_embedding
from .postings import InvertedIndex
from .pq import PQConfig, ResidualPQ
from .store import IndexReader, IndexWriter

_RANK_MODES = ("tfidf", "pq")


@dataclass(frozen=True)
class IndexedSearchResult:
    """Result of one indexed query.

    Attributes
    ----------
    hits:
        The k nearest candidates after exact re-ranking.
    candidates_generated:
        Size of the candidate set stage 1 handed to the engine (equal to
        the collection size for ``exact=True`` queries).
    exact:
        Whether the query bypassed candidate generation.
    generation_seconds:
        Stage 1 wall-clock (feature extraction + quantization + postings
        scoring); zero for exact queries.
    rerank_seconds:
        Stage 2 wall-clock (the engine cascade over the candidates).
    stats:
        The engine's per-stage work accounting for stage 2.
    """

    hits: Tuple[EngineHit, ...]
    candidates_generated: int
    exact: bool
    generation_seconds: float
    rerank_seconds: float
    stats: EngineStats

    @property
    def indices(self) -> Tuple[int, ...]:
        return tuple(hit.index for hit in self.hits)

    @property
    def elapsed_seconds(self) -> float:
        return self.generation_seconds + self.rerank_seconds


@dataclass
class RecallReport:
    """Recall of the indexed ranking against the exhaustive one."""

    k: int
    candidate_budget: int
    per_query: List[float] = field(default_factory=list)
    indexed_seconds: float = 0.0
    exhaustive_seconds: float = 0.0

    @property
    def mean_recall(self) -> float:
        return float(np.mean(self.per_query)) if self.per_query else 0.0

    @property
    def speedup(self) -> float:
        if self.indexed_seconds <= 0.0:
            return float("inf")
        return self.exhaustive_seconds / self.indexed_seconds


def pq_entry_for(
    codebook: Codebook,
    pq: ResidualPQ,
    features: Sequence,
    series_length: int,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Rank-0 codewords and PQ codes of one series' features.

    Both the build-time and the incremental ``add_series`` paths encode
    through this helper (one series at a time), so a compacted index is
    bit-identical to a from-scratch build with the same frozen codebook
    and quantizer.
    """
    if not len(features):
        return None
    embedded = feature_embedding(features, series_length, codebook.config)
    assigned = codebook.assign(features, series_length, 1)[:, 0].astype(np.int64)
    codes = pq.encode(embedded - codebook.centroids[assigned])
    return assigned, codes


def _fit_pq(
    codebook: Codebook,
    features_per_series: Sequence[Sequence],
    lengths: Sequence[int],
    pq_config: PQConfig,
) -> Tuple[ResidualPQ, List[Optional[Tuple[np.ndarray, np.ndarray]]]]:
    """Fit a residual quantizer on a collection and encode every series.

    Embeddings/assignments are computed once per series and reused for
    both the training-residual collection and the per-series encode, so
    the build pays the quantization geometry exactly once.  Each series
    is encoded individually — the same per-series call shape as the
    incremental :func:`pq_entry_for` path — so incrementally added
    series round-trip bit-identically through compaction.
    """
    per_series: List[Optional[Tuple[np.ndarray, np.ndarray]]] = []
    residual_blocks: List[np.ndarray] = []
    for features, length in zip(features_per_series, lengths):
        if not len(features):
            per_series.append(None)
            continue
        embedded = feature_embedding(features, length, codebook.config)
        assigned = codebook.assign(features, length, 1)[:, 0].astype(np.int64)
        residuals = embedded - codebook.centroids[assigned]
        per_series.append((assigned, residuals))
        residual_blocks.append(residuals)
    if not residual_blocks:
        raise ValidationError(
            "cannot fit a product quantizer: the collection has no salient "
            "features"
        )
    pq = ResidualPQ(pq_config).fit(np.vstack(residual_blocks))
    entries: List[Optional[Tuple[np.ndarray, np.ndarray]]] = [
        None if cached is None else (cached[0], pq.encode(cached[1]))
        for cached in per_series
    ]
    return pq, entries


class IndexedSearcher:
    """k-NN search with sublinear candidate generation.

    Parameters
    ----------
    index:
        The inverted index over the collection.
    codebook:
        The quantizer the index was built with.
    engine:
        A :class:`DistanceEngine` whose stored collection matches the
        index order (series ``i`` of the engine is series ``i`` of the
        index).
    config:
        Extraction configuration used for query features; must match the
        configuration the indexed features were extracted with.
    candidate_budget:
        Default number of candidates generated per query.
    pq:
        Optional fitted :class:`~repro.indexing.pq.ResidualPQ`; required
        for ``rank_mode="pq"`` queries (approximate descriptor-distance
        ranking of the candidate set).
    rank_mode:
        Default stage-1 ranking: ``"tfidf"`` (codeword-overlap cosine
        scores) or ``"pq"`` (asymmetric PQ distances over the touched
        series, falling back to TF-IDF order for series without codes).
    index_to_engine:
        Optional slot -> engine-position mapping.  Needed when the index
        carries tombstoned slots (the engine then only stores the live
        series); ``-1`` marks dead slots.  ``None`` means identity.
    postings_cache:
        Hot decoded-postings pages kept per shard (see
        :meth:`InvertedIndex.enable_postings_cache`); ``0`` disables.
    candidate_cache:
        LRU entries of stage-1 candidate sets keyed by (query bytes,
        budget, rank mode); a repeat query skips candidate generation
        entirely.  Cleared on every mutation.  ``0`` disables.
    telemetry:
        Optional :class:`repro.telemetry.MetricsRegistry`; the searcher
        pre-binds ``repro_candidate_cache_requests_total{outcome}``
        counter children so the hot path pays one increment, not a
        registry lookup.  ``None`` binds the no-op null registry.
    """

    def __init__(
        self,
        index: InvertedIndex,
        codebook: Codebook,
        engine: DistanceEngine,
        *,
        config: Optional[SDTWConfig] = None,
        candidate_budget: int = 100,
        pq: Optional[ResidualPQ] = None,
        rank_mode: str = "tfidf",
        index_to_engine: Optional[Sequence[int]] = None,
        postings_cache: int = 0,
        candidate_cache: int = 0,
        telemetry=None,
    ) -> None:
        if index_to_engine is None:
            if len(engine) != index.num_series:
                raise ValidationError(
                    f"engine holds {len(engine)} series but the index covers "
                    f"{index.num_series}"
                )
            if index.num_tombstones:
                raise ValidationError(
                    "an index with tombstoned slots needs an explicit "
                    "index_to_engine mapping (the engine only stores live "
                    "series)"
                )
            self._index_to_engine: Optional[np.ndarray] = None
        else:
            mapping = np.asarray(index_to_engine, dtype=np.int64)
            if mapping.shape != (index.num_series,):
                raise ValidationError(
                    "index_to_engine must have one entry per index slot"
                )
            live = mapping[~index.tombstones]
            if live.size and (live.min() < 0 or live.max() >= len(engine)):
                raise ValidationError(
                    "index_to_engine maps a live slot outside the engine"
                )
            self._index_to_engine = mapping
        if not codebook.is_fitted:
            raise ValidationError("the searcher needs a fitted codebook")
        if rank_mode not in _RANK_MODES:
            raise ValidationError(
                f"unknown rank_mode {rank_mode!r}; choose one of {_RANK_MODES}"
            )
        if rank_mode == "pq" and (pq is None or not index.has_pq):
            raise ValidationError(
                "rank_mode='pq' needs a fitted ResidualPQ and an index built "
                "with PQ codes"
            )
        self.index = index
        self.codebook = codebook
        self.engine = engine
        self.pq = pq
        self.rank_mode = rank_mode
        self.config = config if config is not None else SDTWConfig()
        if self.config.descriptor.num_bins != codebook.config.descriptor_bins:
            raise ValidationError(
                f"extraction configuration has "
                f"{self.config.descriptor.num_bins}-bin descriptors but the "
                f"codebook was fitted on {codebook.config.descriptor_bins}-bin "
                f"descriptors"
            )
        self.candidate_budget = check_int_at_least(
            candidate_budget, 1, "candidate_budget"
        )
        # Build-time features, kept so save() can skip re-extraction.
        self._features: Optional[List] = None
        # Lazily built identifier set; keeps add_series O(new features)
        # instead of re-materialising the collection per insertion.
        self._identifier_set: Optional[set] = None
        # Stage-1 candidate-set LRU (see enable_caches).
        self._candidate_cache: "OrderedDict[Tuple[bytes, int, str], np.ndarray]" = (
            OrderedDict()
        )
        self._candidate_cache_capacity = 0
        self._candidate_cache_lock = threading.Lock()
        registry = telemetry if telemetry is not None else NULL_REGISTRY
        cache_requests = registry.counter(
            "repro_candidate_cache_requests_total",
            "Stage-1 candidate-set cache lookups by outcome.",
            labels=("outcome",),
        )
        self._cache_hit_counter = cache_requests.labels(outcome="hit")
        self._cache_miss_counter = cache_requests.labels(outcome="miss")
        self.enable_caches(
            postings_cache=postings_cache, candidate_cache=candidate_cache
        )

    def __len__(self) -> int:
        return self.index.num_series

    @property
    def index_to_engine(self) -> Optional[np.ndarray]:
        """The slot -> engine-position mapping (``None`` means identity).

        Exposed read-only so a derived serving snapshot can extend the
        previous snapshot's mapping in O(new slots) instead of
        recomputing it from the roster.
        """
        return self._index_to_engine

    def enable_caches(
        self,
        *,
        postings_cache: Optional[int] = None,
        candidate_cache: Optional[int] = None,
    ) -> None:
        """(Re)configure the read-path caches.

        ``postings_cache`` sets the per-shard decoded-postings page
        capacity (shard payloads are immutable, so those pages can never
        go stale and survive snapshot derivations).  ``candidate_cache``
        sets the per-searcher LRU capacity for stage-1 candidate sets;
        that cache is dropped wholesale on :meth:`add_series` and
        :meth:`compact` because any mutation can change candidate
        rankings.  ``None`` leaves a knob unchanged; ``0`` disables.
        """
        if postings_cache is not None:
            self.index.enable_postings_cache(postings_cache)
        if candidate_cache is not None:
            with self._candidate_cache_lock:
                self._candidate_cache_capacity = max(0, int(candidate_cache))
                self._candidate_cache.clear()

    def _clear_candidate_cache(self) -> None:
        with self._candidate_cache_lock:
            self._candidate_cache.clear()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_engine(
        cls,
        engine: DistanceEngine,
        *,
        config: Optional[SDTWConfig] = None,
        codebook_config: Optional[CodebookConfig] = None,
        num_shards: int = 4,
        candidate_budget: int = 100,
        features: Optional[Sequence[Sequence]] = None,
        pq_config: Optional[PQConfig] = None,
        rank_mode: str = "tfidf",
        telemetry=None,
    ) -> "IndexedSearcher":
        """Build the index layers over an engine's stored collection.

        The single construction path every builder funnels through:
        features are extracted once per stored series (the paper's
        amortisation argument), the codebook is fitted on them, and the
        bags become the inverted index.  The engine is re-used as the
        re-ranking stage.

        Parameters
        ----------
        features:
            Optional pre-extracted salient features, one list per stored
            series in engine order (e.g. from a
            :class:`~repro.retrieval.feature_store.FeatureStore`); they
            must come from the same extraction configuration.  Skips the
            per-series extraction pass entirely — this is how the
            Workspace facade builds its index without ever re-extracting.
        pq_config:
            When given, a :class:`ResidualPQ` is fitted on the rank-0
            descriptor residuals and its codes are stored alongside the
            postings, enabling ``rank_mode="pq"`` queries.
        """
        config = config if config is not None else SDTWConfig()
        if codebook_config is None:
            codebook_config = CodebookConfig.for_sdtw(config)
        stored = engine.stored_items()
        if not stored:
            raise ValidationError("cannot build an index over zero series")
        identifiers = [identifier for identifier, _, _ in stored]
        if len(set(identifiers)) != len(identifiers):
            # Persistence (and the bundled FeatureStore) key series by
            # identifier; duplicates would silently collapse on reopen.
            raise ValidationError(
                "cannot index a collection with duplicate identifiers"
            )
        if features is None:
            features = [
                extract_salient_features(values, config) for _, values, _ in stored
            ]
        else:
            features = [list(feature_list) for feature_list in features]
            if len(features) != len(stored):
                raise ValidationError(
                    "features must have one feature list per stored series"
                )
        lengths = [values.size for _, values, _ in stored]
        codebook = Codebook(codebook_config).fit(features, lengths)
        bags = [
            codebook.bag(feature_list, length)
            for feature_list, length in zip(features, lengths)
        ]
        pq: Optional[ResidualPQ] = None
        pq_entries = None
        if pq_config is not None:
            pq, pq_entries = _fit_pq(codebook, features, lengths, pq_config)
        elif rank_mode == "pq":
            raise ValidationError(
                "rank_mode='pq' requires a pq_config so the residual codes "
                "are built"
            )
        index = InvertedIndex.from_bags(
            bags, codebook.num_codewords,
            num_shards=num_shards, pq_entries=pq_entries,
        )
        searcher = cls(
            index, codebook, engine,
            config=config, candidate_budget=candidate_budget,
            pq=pq, rank_mode=rank_mode, telemetry=telemetry,
        )
        searcher._features = features
        return searcher

    @classmethod
    def build(
        cls,
        series: Sequence[Union[Sequence[float], np.ndarray]],
        identifiers: Optional[Sequence[str]] = None,
        labels: Optional[Sequence[Optional[int]]] = None,
        *,
        config: Optional[SDTWConfig] = None,
        codebook_config: Optional[CodebookConfig] = None,
        constraint: str = "fc,fw",
        num_shards: int = 4,
        candidate_budget: int = 100,
        backend: str = "serial",
        engine_kwargs: Optional[dict] = None,
        pq_config: Optional[PQConfig] = None,
        rank_mode: str = "tfidf",
    ) -> "IndexedSearcher":
        """Build a searcher (codebook + index + engine) over a collection."""
        config = config if config is not None else SDTWConfig()
        arrays = [as_series(values, f"series[{i}]") for i, values in enumerate(series)]
        if not arrays:
            raise ValidationError("cannot build an index over zero series")
        if identifiers is None:
            identifiers = [f"series-{i:05d}" for i in range(len(arrays))]
        if len(identifiers) != len(arrays):
            raise ValidationError("identifiers must have one entry per series")
        if labels is None:
            labels = [None] * len(arrays)
        if len(labels) != len(arrays):
            raise ValidationError("labels must have one entry per series")
        engine = DistanceEngine(
            constraint, config, backend=backend, **(engine_kwargs or {})
        )
        for values, identifier, label in zip(arrays, identifiers, labels):
            engine.add(values, identifier=identifier, label=label)
        return cls.from_engine(
            engine,
            config=config,
            codebook_config=codebook_config,
            num_shards=num_shards,
            candidate_budget=candidate_budget,
            pq_config=pq_config,
            rank_mode=rank_mode,
        )

    @classmethod
    def from_dataset(cls, dataset: Dataset, **kwargs) -> "IndexedSearcher":
        """Build a searcher over a data set (labels preserved)."""
        identifiers = [
            ts.identifier or f"{dataset.name}-{i:04d}"
            for i, ts in enumerate(dataset)
        ]
        return cls.build(
            dataset.values_list(), identifiers, dataset.labels, **kwargs
        )

    @classmethod
    def from_reader(
        cls,
        reader: IndexReader,
        *,
        config: Optional[SDTWConfig] = None,
        constraint: str = "fc,fw",
        candidate_budget: int = 100,
        backend: str = "serial",
        engine_kwargs: Optional[dict] = None,
        rank_mode: str = "tfidf",
    ) -> "IndexedSearcher":
        """Reopen a persisted index (with its bundled feature store).

        The feature store supplies the raw series for re-ranking, in the
        index's series order, so no re-extraction happens.  Tombstoned
        slots are skipped: the engine only stores live series and the
        searcher routes candidates through a slot mapping.
        """
        persisted = reader.extraction_config()
        if config is None:
            # Reconstruct the exact build-time configuration from the
            # manifest; only pre-fingerprint indexes fall back to defaults.
            config = persisted if persisted is not None else SDTWConfig()
        elif persisted is not None and config != persisted:
            raise ValidationError(
                "the supplied extraction configuration differs from the one "
                "this index was built with; omit `config` to use the "
                "persisted configuration"
            )
        store = reader.load_feature_store(config=config)
        engine = DistanceEngine(
            constraint, config, backend=backend, **(engine_kwargs or {})
        )
        tombstones = reader.index.tombstones
        mapping: Optional[np.ndarray] = None
        if reader.index.num_tombstones:
            mapping = np.full(reader.index.num_series, -1, dtype=np.int64)
        for position, identifier in enumerate(reader.identifiers):
            if tombstones[position]:
                continue
            if mapping is not None:
                mapping[position] = len(engine)
            engine.add(
                store.series_of(identifier),
                identifier=identifier,
                label=reader.labels[position],
            )
        return cls(
            reader.index, reader.codebook, engine,
            config=config, candidate_budget=candidate_budget,
            pq=reader.pq, rank_mode=rank_mode,
            index_to_engine=mapping,
        )

    def save(self, directory, *, feature_store=None) -> str:
        """Persist the searcher's index; returns the manifest path.

        When *feature_store* is omitted one is assembled from the
        engine's stored series (re-using build-time features when this
        searcher was created by :meth:`build`).  Delta shards appended
        by :meth:`add_series` are persisted as-is (no forced
        compaction).
        """
        if self.index.num_tombstones:
            raise ValidationError(
                "cannot save a searcher over tombstoned slots; run compact() "
                "first (or persist through the owning Workspace)"
            )
        stored = self.engine.stored_items()
        if feature_store is None:
            from ..retrieval.feature_store import FeatureStore

            feature_store = FeatureStore(config=self.config)
            build_features = self._features
            for position, (identifier, values, _) in enumerate(stored):
                feature_store.add_series(
                    identifier,
                    values,
                    features=(
                        build_features[position]
                        if build_features is not None else None
                    ),
                )
        return IndexWriter(directory).write(
            self.index,
            self.codebook,
            [identifier for identifier, _, _ in stored],
            [label for _, _, label in stored],
            feature_store=feature_store,
            extraction_config=self.config,
            pq=self.pq,
        )

    @classmethod
    def open(cls, directory, **kwargs) -> "IndexedSearcher":
        """Open a persisted index directory (memory-mapped shards)."""
        mmap = kwargs.pop("mmap", True)
        return cls.from_reader(IndexReader.open(directory, mmap=mmap), **kwargs)

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #
    def add_series(
        self,
        values: Union[Sequence[float], np.ndarray],
        identifier: Optional[str] = None,
        label: Optional[int] = None,
    ) -> str:
        """Index one new series incrementally; returns its identifier.

        Cost is O(new features): the series is added to the engine, its
        features are extracted, quantized against the *frozen* codebook
        (and PQ, when present) and appended to the index as a delta
        shard — no codebook refit, no postings rebuild.  Run
        :meth:`compact` periodically to fold deltas back into the base
        shards with fresh IDF statistics.
        """
        array = as_series(values, "values")
        if self._identifier_set is None:
            self._identifier_set = {
                stored_id for stored_id, _, _ in self.engine.stored_items()
            }
        if identifier is not None and str(identifier) in self._identifier_set:
            raise ValidationError(
                f"identifier {identifier!r} is already indexed"
            )
        identifier = self.engine.add(array, identifier=identifier, label=label)
        self._identifier_set.add(identifier)
        features = extract_salient_features(array, self.config)
        bag = self.codebook.bag(features, array.size)
        pq_entry = None
        if self.pq is not None:
            pq_entry = pq_entry_for(self.codebook, self.pq, features, array.size)
        self.index.add_series(bag, pq_entry)
        self._clear_candidate_cache()
        if self._index_to_engine is not None:
            self._index_to_engine = np.append(
                self._index_to_engine, len(self.engine) - 1
            )
        if self._features is not None:
            self._features.append(list(features))
        return identifier

    def compact(self, *, num_shards: Optional[int] = None) -> np.ndarray:
        """Fold delta shards (and tombstones) into a fresh base shard set.

        Returns the old-slot -> new-slot mapping.  The compacted
        postings are bit-identical to a from-scratch
        :meth:`InvertedIndex.from_bags` build over the surviving bags
        under the same codebook/PQ, and exact re-rank results are
        unchanged.
        """
        if num_shards is None:
            num_shards = len(self.index.shards)
        compacted, slot_map = self.index.compact(num_shards=num_shards)
        # The compacted index is a fresh shard set: carry the postings
        # cache capacity over (pages rebuild lazily) and drop the
        # candidate LRU (slot renumbering invalidates every entry).
        compacted.enable_postings_cache(self.index._postings_cache_capacity)
        self.index = compacted
        self._clear_candidate_cache()
        if self._index_to_engine is not None:
            self._index_to_engine = self._index_to_engine[slot_map >= 0]
        return slot_map

    # ------------------------------------------------------------------ #
    # Querying
    # ------------------------------------------------------------------ #
    def _slots_to_engine(self, slots: np.ndarray) -> np.ndarray:
        """Translate index slots into engine positions (drop dead slots)."""
        if self._index_to_engine is None:
            return slots
        mapped = self._index_to_engine[slots]
        return mapped[mapped >= 0]

    def _resolve_rank_mode(self, rank_mode: Optional[str]) -> str:
        if rank_mode is None:
            return self.rank_mode
        if rank_mode not in _RANK_MODES:
            raise ValidationError(
                f"unknown rank_mode {rank_mode!r}; choose one of {_RANK_MODES}"
            )
        if rank_mode == "pq" and (self.pq is None or not self.index.has_pq):
            raise ValidationError(
                "rank_mode='pq' needs a fitted ResidualPQ and an index built "
                "with PQ codes"
            )
        return rank_mode

    def _pq_candidate_slots(
        self, features: Sequence, series_length: int, limit: int
    ) -> np.ndarray:
        """Stage 1 in PQ mode: rank touched series by asymmetric distance.

        Every query feature probes its ``query_multiplicity`` nearest
        codewords, builds the asymmetric distance table of its residual
        and takes the minimum approximate distance to any stored rank-0
        feature of each candidate in those cells (features that match
        nothing for a candidate contribute that feature's worst observed
        distance, so candidates covering more of the query rank
        strictly better).  The candidate universe is the TF-IDF touched
        set — PQ re-scores it, it never shrinks it — and the tail is
        padded exactly like TF-IDF ranking, so ``limit >= num_live``
        still degrades to the full live collection.
        """
        index, codebook, pq = self.index, self.codebook, self.pq
        bag = codebook.bag(features, series_length, query=True)
        if not len(features):
            return index.candidates(bag, limit)
        _, touched = index.scores(bag)
        touched_slots = np.nonzero(touched)[0]
        if not touched_slots.size:
            return index.candidates(bag, limit)
        embedded = feature_embedding(features, series_length, codebook.config)
        probes = codebook.assign(
            features, series_length, codebook.config.query_multiplicity
        )
        totals = np.zeros(index.num_series)
        feature_min = np.empty(index.num_series)
        for row in range(probes.shape[0]):
            feature_min.fill(np.inf)
            for cell in probes[row]:
                cell = int(cell)
                table = pq.adc_table(embedded[row] - codebook.centroids[cell])
                for series, codes in index.pq_postings_segments(cell):
                    np.minimum.at(
                        feature_min, series, pq.adc_scores(codes, table)
                    )
            matched = feature_min[touched_slots]
            finite = np.isfinite(matched)
            if not finite.any():
                continue  # feature matches no candidate: uninformative
            miss = float(matched[finite].max())
            totals[touched_slots] += np.where(finite, matched, miss)
        order = np.lexsort((touched_slots, totals[touched_slots]))
        ranked = touched_slots[order]
        if ranked.size >= limit:
            return ranked[:limit]
        rest = np.nonzero(~touched & ~index.tombstones)[0]
        return np.concatenate([ranked, rest[: limit - ranked.size]])

    def generate_candidates(
        self,
        values: Union[Sequence[float], np.ndarray],
        limit: Optional[int] = None,
        *,
        rank_mode: Optional[str] = None,
    ) -> np.ndarray:
        """Stage 1 alone: the ranked candidate indices for a query.

        Returned indices are engine positions (identical to index slots
        unless the index carries tombstoned slots).

        With an enabled candidate cache (see :meth:`enable_caches`) a
        byte-identical repeat of a recent (query, budget, rank-mode)
        triple returns the memoised candidate set without touching the
        postings; the cache is cleared on every index mutation, so a
        hit is always exactly what a fresh stage 1 would produce.
        """
        query = as_series(values, "query")
        limit = limit if limit is not None else self.candidate_budget
        limit = check_int_at_least(limit, 1, "limit")
        mode = self._resolve_rank_mode(rank_mode)
        trace = current_trace()
        started = time.perf_counter() if trace is not None else 0.0
        cache_key: Optional[Tuple[bytes, int, str]] = None
        if self._candidate_cache_capacity:
            cache_key = (query.tobytes(), limit, mode)
            with self._candidate_cache_lock:
                cached = self._candidate_cache.get(cache_key)
                if cached is not None:
                    self._candidate_cache.move_to_end(cache_key)
                    self._cache_hit_counter.inc()
                    if trace is not None:
                        trace.add_stage(
                            "candidate_cache",
                            time.perf_counter() - started,
                            hit=True,
                            candidates=int(cached.size),
                        )
                    return cached.copy()
            self._cache_miss_counter.inc()
        features = extract_salient_features(query, self.config)
        if trace is not None:
            extracted = time.perf_counter()
            trace.add_stage(
                "query_features", extracted - started, features=len(features)
            )
        if mode == "pq":
            slots = self._pq_candidate_slots(features, query.size, limit)
        else:
            bag = self.codebook.bag(features, query.size, query=True)
            slots = self.index.candidates(bag, limit)
        candidates = self._slots_to_engine(slots)
        if trace is not None:
            trace.add_stage(
                "candidate_rank",
                time.perf_counter() - extracted,
                rank_mode=mode,
                candidates=int(candidates.size),
            )
        if cache_key is not None:
            with self._candidate_cache_lock:
                self._candidate_cache[cache_key] = candidates.copy()
                self._candidate_cache.move_to_end(cache_key)
                while len(self._candidate_cache) > self._candidate_cache_capacity:
                    self._candidate_cache.popitem(last=False)
        return candidates

    def query(
        self,
        values: Union[Sequence[float], np.ndarray],
        k: int = 10,
        *,
        candidates: Optional[int] = None,
        exact: bool = False,
        exclude_identifier: Optional[str] = None,
        rank_mode: Optional[str] = None,
    ) -> IndexedSearchResult:
        """Find the k nearest stored series to a query.

        Parameters
        ----------
        values:
            The query series.
        k:
            Neighbours to return.
        candidates:
            Candidate budget ``C`` for this query (default: the
            searcher's budget).  ``C >= len(collection)`` reproduces the
            exhaustive ranking exactly.
        exact:
            Bypass the index and run the full engine scan (the escape
            hatch; the result is the exhaustive ranking).
        exclude_identifier:
            Skip this stored identifier (leave-one-out evaluations).
        rank_mode:
            Stage-1 ranking override: ``"tfidf"`` or ``"pq"`` (default:
            the searcher's configured mode).
        """
        k = check_int_at_least(k, 1, "k")
        if exact:
            result = self.engine.query(
                values, k, exclude_identifier=exclude_identifier
            )
            return IndexedSearchResult(
                hits=result.hits,
                candidates_generated=len(self.engine),
                exact=True,
                generation_seconds=0.0,
                rerank_seconds=result.stats.elapsed_seconds,
                stats=result.stats,
            )
        started = time.perf_counter()
        candidate_set = self.generate_candidates(
            values, candidates, rank_mode=rank_mode
        )
        generation_seconds = time.perf_counter() - started
        result: QueryResult = self.engine.query(
            values, k,
            exclude_identifier=exclude_identifier,
            candidate_indices=candidate_set,
        )
        return IndexedSearchResult(
            hits=result.hits,
            candidates_generated=int(candidate_set.size),
            exact=False,
            generation_seconds=generation_seconds,
            rerank_seconds=result.stats.elapsed_seconds,
            stats=result.stats,
        )

    def batch_query(
        self,
        queries: Sequence[Union[Sequence[float], np.ndarray]],
        k: int = 10,
        *,
        candidates: Optional[int] = None,
        exclude_identifiers: Optional[Sequence[Optional[str]]] = None,
        rank_mode: Optional[str] = None,
    ) -> List[IndexedSearchResult]:
        """Indexed k-NN for many queries (results in query order)."""
        if exclude_identifiers is not None and len(exclude_identifiers) != len(queries):
            raise ValidationError(
                "exclude_identifiers must have one entry per query"
            )
        return [
            self.query(
                values, k,
                candidates=candidates,
                exclude_identifier=(
                    exclude_identifiers[qi] if exclude_identifiers else None
                ),
                rank_mode=rank_mode,
            )
            for qi, values in enumerate(queries)
        ]

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def recall_at_k(
        self,
        queries: Sequence[Union[Sequence[float], np.ndarray]],
        k: int = 10,
        *,
        candidates: Optional[int] = None,
        exclude_identifiers: Optional[Sequence[Optional[str]]] = None,
        rank_mode: Optional[str] = None,
    ) -> RecallReport:
        """Recall@k of the indexed ranking vs. the exhaustive ranking.

        Each query is answered twice — through the index and through the
        full engine scan — and the report aggregates per-query recall
        plus the two wall-clock totals (the speed/recall trade-off in
        one call).
        """
        k = check_int_at_least(k, 1, "k")
        budget = (
            self.candidate_budget if candidates is None
            else check_int_at_least(candidates, 1, "candidates")
        )
        report = RecallReport(k=k, candidate_budget=budget)
        for qi, values in enumerate(queries):
            exclude = (
                exclude_identifiers[qi] if exclude_identifiers is not None else None
            )
            indexed = self.query(
                values, k, candidates=budget, exclude_identifier=exclude,
                rank_mode=rank_mode,
            )
            report.indexed_seconds += indexed.elapsed_seconds
            exact = self.query(values, k, exact=True, exclude_identifier=exclude)
            report.exhaustive_seconds += exact.elapsed_seconds
            exact_top = set(exact.indices)
            if exact_top:
                overlap = len(exact_top & set(indexed.indices))
                report.per_query.append(overlap / len(exact_top))
            else:
                report.per_query.append(1.0)
        return report


__all__ = [
    "IndexedSearchResult",
    "IndexedSearcher",
    "RecallReport",
    "pq_entry_for",
]
