"""Persistent salient-feature index for sublinear candidate generation.

Every retrieval path elsewhere in the repository compares a query
against *every* stored series; the PR 1 cascade prunes dynamic-program
work per pair, but the scan itself is O(N).  This package removes that
O(N): series whose quantized salient-feature sets share no codewords
cannot align cheaply, so a feature-level inverted index generates a
small candidate set *before* the exact cascade runs.

Pipeline::

    FeatureStore / extract_salient_features
        -> Codebook (k-means quantizer, trained once per collection)
        -> InvertedIndex (codeword -> postings, TF-IDF scored)
        -> IndexWriter / IndexReader (mmapped .npz shards + manifest)
        -> IndexedSearcher (top-C candidates -> DistanceEngine re-rank)

Naming note: this package is the canonical home of the library's
*search* index — its classes are re-exported from the top-level
``repro`` package (``from repro import IndexedSearcher`` works) but
never through ``repro.retrieval``.  It is unrelated to
:class:`repro.retrieval.index.PairwiseDistanceMatrix` (historically
``DistanceIndex``; that alias has been removed): that class is a pairwise
distance *matrix* with cost accounting (an "index" in the
experiment-bookkeeping sense), while this package is a disk-backed
search index that trades a configurable candidate budget for sublinear
query cost.  The :class:`repro.service.Workspace` facade embeds this
package as its ``indexed`` query mode.
"""

from .codebook import Codebook, CodebookConfig, feature_embedding
from .postings import InvertedIndex, inverse_document_frequencies
from .pq import PQConfig, ResidualPQ
from .searcher import (
    IndexedSearchResult,
    IndexedSearcher,
    RecallReport,
    pq_entry_for,
)
from .shards import IndexShard, load_npz, mmap_npz
from .store import IndexReader, IndexWriter

__all__ = [
    "Codebook",
    "CodebookConfig",
    "IndexReader",
    "IndexShard",
    "IndexWriter",
    "IndexedSearchResult",
    "IndexedSearcher",
    "InvertedIndex",
    "PQConfig",
    "RecallReport",
    "ResidualPQ",
    "feature_embedding",
    "inverse_document_frequencies",
    "load_npz",
    "mmap_npz",
    "pq_entry_for",
]
