"""K-means codebook over salient-feature descriptors.

The quantizer behind the inverted index: every salient feature of a
series is embedded as its gradient descriptor *augmented* with the
feature's normalised temporal position, log scale and amplitudes, and
mapped to its nearest codewords.  A series then becomes a sparse
bag-of-codewords vector — two series whose bags share no codewords have
no similar salient features and are unlikely to be close under the
(temporally constrained) sDTW distances the engine re-ranks with, which
is exactly why codeword overlap works as a candidate filter.

The augmentation matters because the re-ranking distance runs on *raw*
values inside a band: descriptors alone are amplitude-normalised and
position-free, so two features with identical local shape but different
height or time of occurrence would collide.  The extra coordinates keep
them apart (their relative influence is configurable).

Training is plain Lloyd k-means with deterministic k-means++ seeding on
a bounded descriptor sample, so fitting cost does not grow with
collection size beyond the sampling pass.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..core.config import SDTWConfig
from ..core.descriptors import descriptor_matrix
from ..core.features import SalientFeature
from ..exceptions import ConfigurationError, ValidationError
from ..utils.rng import rng_from_seed

_MIN_SIGMA = 1e-9


@dataclass(frozen=True)
class CodebookConfig:
    """Parameters of the codeword quantizer.

    Attributes
    ----------
    num_codewords:
        Codebook size (k of the k-means); clamped down when the training
        set has fewer descriptors.
    descriptor_bins:
        Descriptor columns of the embedding; must match the extraction
        configuration the features come from.
    position_weight:
        Weight of the normalised feature position (``position / (N-1)``)
        in the embedding.  The re-rank distances are banded, so temporal
        position is strongly informative.
    scale_weight:
        Weight of ``log2 sigma`` in the embedding.
    amplitude_weight:
        Weight of the feature amplitude and scope mean amplitude; keeps
        equal-shape features at different heights apart (descriptors are
        amplitude-normalised).
    store_multiplicity:
        How many nearest codewords each *stored* feature contributes to
        its series' bag (soft assignment; weight halves per rank).
    query_multiplicity:
        Nearest codewords per *query* feature; a slightly wider probe on
        the query side buys recall without growing the index.
    training_sample:
        Maximum number of descriptors the k-means trains on (sampled
        deterministically); assignment always uses every feature.
    iterations:
        Maximum Lloyd iterations.
    seed:
        Seed of the k-means++ initialisation and sampling.
    """

    num_codewords: int = 256
    descriptor_bins: int = 64
    position_weight: float = 4.0
    scale_weight: float = 0.5
    amplitude_weight: float = 4.0
    store_multiplicity: int = 2
    query_multiplicity: int = 3
    training_sample: int = 20000
    iterations: int = 25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_codewords < 1:
            raise ConfigurationError("num_codewords must be >= 1")
        if self.descriptor_bins < 1:
            raise ConfigurationError("descriptor_bins must be >= 1")
        for name in ("position_weight", "scale_weight", "amplitude_weight"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.store_multiplicity < 1 or self.query_multiplicity < 1:
            raise ConfigurationError("codeword multiplicities must be >= 1")
        if self.training_sample < 1:
            raise ConfigurationError("training_sample must be >= 1")
        if self.iterations < 1:
            raise ConfigurationError("iterations must be >= 1")

    @classmethod
    def for_sdtw(cls, config: SDTWConfig, **overrides) -> "CodebookConfig":
        """A codebook configuration matching an extraction configuration."""
        overrides.setdefault("descriptor_bins", config.descriptor.num_bins)
        return cls(**overrides)


def feature_embedding(
    features: Sequence[SalientFeature],
    series_length: int,
    config: CodebookConfig,
) -> np.ndarray:
    """Embed salient features as rows of a quantizable matrix.

    Columns are the (padded/truncated) descriptor followed by the four
    weighted augmentation coordinates; see :class:`CodebookConfig`.
    """
    if series_length < 1:
        raise ValidationError("series_length must be >= 1")
    extras = np.zeros((len(features), 4))
    span = float(max(series_length - 1, 1))
    for row, feature in enumerate(features):
        extras[row, 0] = config.position_weight * (feature.position / span)
        extras[row, 1] = config.scale_weight * np.log2(max(feature.sigma, _MIN_SIGMA))
        extras[row, 2] = config.amplitude_weight * feature.amplitude
        extras[row, 3] = config.amplitude_weight * feature.mean_amplitude
    return np.hstack([descriptor_matrix(features, config.descriptor_bins), extras])


def _pairwise_sq_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, ``(num_points, num_centroids)``."""
    cross = points @ centroids.T
    sq = (points ** 2).sum(axis=1)[:, np.newaxis] - 2.0 * cross
    sq += (centroids ** 2).sum(axis=1)[np.newaxis, :]
    return np.maximum(sq, 0.0)


def _kmeans_pp_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Deterministic (seeded) k-means++ centroid initialisation."""
    centroids = np.empty((k, points.shape[1]))
    centroids[0] = points[int(rng.integers(points.shape[0]))]
    closest = ((points - centroids[0]) ** 2).sum(axis=1)
    for index in range(1, k):
        total = float(closest.sum())
        if total <= 0.0:
            # All remaining mass sits on existing centroids; any point does.
            pick = int(rng.integers(points.shape[0]))
        else:
            pick = int(rng.choice(points.shape[0], p=closest / total))
        centroids[index] = points[pick]
        closest = np.minimum(closest, ((points - centroids[index]) ** 2).sum(axis=1))
    return centroids


def _lloyd(
    points: np.ndarray, k: int, iterations: int, rng: np.random.Generator
) -> np.ndarray:
    centroids = _kmeans_pp_init(points, k, rng)
    for _ in range(iterations):
        assignment = _pairwise_sq_distances(points, centroids).argmin(axis=1)
        updated = centroids.copy()
        for cluster in range(k):
            members = assignment == cluster
            if members.any():
                updated[cluster] = points[members].mean(axis=0)
            # Empty clusters keep their previous centroid (deterministic).
        if np.allclose(updated, centroids):
            return updated
        centroids = updated
    return centroids


@dataclass
class Codebook:
    """A fitted k-means quantizer mapping salient features to codewords."""

    config: CodebookConfig = field(default_factory=CodebookConfig)
    centroids: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self.centroids is not None

    @property
    def num_codewords(self) -> int:
        """Effective codebook size (may be below the configured one)."""
        if self.centroids is None:
            raise ValidationError("the codebook has not been fitted")
        return int(self.centroids.shape[0])

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(
        self,
        features_per_series: Sequence[Sequence[SalientFeature]],
        series_lengths: Sequence[int],
    ) -> "Codebook":
        """Train the codebook on a collection's salient features.

        Parameters
        ----------
        features_per_series:
            One feature list per series of the collection.
        series_lengths:
            The matching series lengths (positions are normalised by
            them).
        """
        if len(features_per_series) != len(series_lengths):
            raise ValidationError(
                "features_per_series and series_lengths must have equal length"
            )
        blocks = [
            feature_embedding(features, length, self.config)
            for features, length in zip(features_per_series, series_lengths)
            if len(features)
        ]
        if not blocks:
            raise ValidationError(
                "cannot fit a codebook: the collection has no salient features"
            )
        points = np.vstack(blocks)
        rng = rng_from_seed(self.config.seed)
        if points.shape[0] > self.config.training_sample:
            chosen = rng.choice(
                points.shape[0], self.config.training_sample, replace=False
            )
            sample = points[np.sort(chosen)]
        else:
            sample = points
        k = min(self.config.num_codewords, sample.shape[0])
        self.centroids = _lloyd(sample, k, self.config.iterations, rng)
        return self

    # ------------------------------------------------------------------ #
    # Assignment
    # ------------------------------------------------------------------ #
    def assign(
        self,
        features: Sequence[SalientFeature],
        series_length: int,
        multiplicity: int = 1,
    ) -> np.ndarray:
        """Nearest-codeword ids per feature, ``(num_features, multiplicity)``.

        Columns are ordered by ascending centroid distance with the
        centroid index as the deterministic tie-break.
        """
        if self.centroids is None:
            raise ValidationError("the codebook has not been fitted")
        multiplicity = min(max(int(multiplicity), 1), self.num_codewords)
        if not len(features):
            return np.zeros((0, multiplicity), dtype=np.int32)
        embedded = feature_embedding(features, series_length, self.config)
        distances = _pairwise_sq_distances(embedded, self.centroids)
        # Stable argsort breaks distance ties by ascending centroid index.
        order = np.argsort(distances, axis=1, kind="stable")
        return order[:, :multiplicity].astype(np.int32)

    def bag(
        self,
        features: Sequence[SalientFeature],
        series_length: int,
        multiplicity: Optional[int] = None,
        *,
        query: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sparse bag-of-codewords of one series.

        Soft assignment: each feature contributes weight ``2^-rank`` to
        its *multiplicity* nearest codewords (rank 0 = nearest).

        Returns
        -------
        (codewords, counts):
            Sorted unique codeword ids (``int32``) and their accumulated
            term frequencies (``float64``).
        """
        if multiplicity is None:
            multiplicity = (
                self.config.query_multiplicity if query
                else self.config.store_multiplicity
            )
        assigned = self.assign(features, series_length, multiplicity)
        if assigned.size == 0:
            return np.zeros(0, dtype=np.int32), np.zeros(0)
        counts = np.zeros(self.num_codewords)
        for rank in range(assigned.shape[1]):
            np.add.at(counts, assigned[:, rank], 0.5 ** rank)
        codewords = np.nonzero(counts)[0]
        return codewords.astype(np.int32), counts[codewords]

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, os.PathLike]) -> None:
        """Persist the fitted codebook to one ``.npz`` archive."""
        if self.centroids is None:
            raise ValidationError("cannot save an unfitted codebook")
        blob = json.dumps(asdict(self.config)).encode("utf-8")
        np.savez(
            os.fspath(path),
            centroids=self.centroids,
            config=np.frombuffer(blob, dtype=np.uint8),
        )

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "Codebook":
        """Load a codebook written by :meth:`save`."""
        with np.load(os.fspath(path), allow_pickle=False) as archive:
            config = CodebookConfig(
                **json.loads(bytes(archive["config"]).decode("utf-8"))
            )
            centroids = np.asarray(archive["centroids"], dtype=float)
        return cls(config=config, centroids=centroids)


__all__ = ["Codebook", "CodebookConfig", "feature_embedding"]
