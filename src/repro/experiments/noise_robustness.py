"""Noise-robustness study (extension experiment, not a paper figure).

Section 3.1.2 of the paper argues that the scale-space salient features are
robust against noise, which is what makes the locally relevant constraints
trustworthy.  This experiment quantifies that claim end-to-end: the same
underlying collection is regenerated at increasing noise levels and the
distance error and retrieval accuracy of the adaptive constraints are
tracked against the fixed Sakoe–Chiba baseline.  If feature extraction were
noise-fragile, the adaptive algorithms would degrade towards (or below) the
fixed baseline as noise grows.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..datasets.synthetic import make_synthetic_dataset
from .runner import AlgorithmSpec, ExperimentResult, evaluate_dataset

DEFAULT_NOISE_LEVELS = (0.0, 0.02, 0.05, 0.10)

DEFAULT_ALGORITHMS = (
    AlgorithmSpec("(fc,fw) 10%", "fc,fw", 0.10),
    AlgorithmSpec("(ac,fw) 10%", "ac,fw", 0.10),
    AlgorithmSpec("(ac,aw)", "ac,aw", 0.10),
)


def run_noise_robustness(
    dataset_kind: str = "trace",
    num_series: int = 10,
    seed: int = 7,
    noise_levels: Sequence[float] = DEFAULT_NOISE_LEVELS,
    algorithms: Optional[Sequence[AlgorithmSpec]] = None,
    k: int = 5,
    length: int = 150,
    num_classes: int = 4,
) -> ExperimentResult:
    """Evaluate constraint quality as a function of the noise level.

    Parameters
    ----------
    dataset_kind:
        Prototype family for the synthetic collection ("gun", "trace",
        "50words").
    num_series:
        Number of series generated per noise level.
    seed:
        Generation seed (shared across noise levels so the underlying
        warps are identical and only the noise differs).
    noise_levels:
        Standard deviations of the additive Gaussian noise to sweep.
    algorithms:
        Algorithm roster; defaults to the fixed 10% band plus the two main
        adaptive variants.
    k:
        Retrieval depth for the accuracy column.
    length:
        Series length (reduced from the paper sizes to keep the sweep
        cheap; the comparison is within-sweep).
    num_classes:
        Number of classes in the generated collection.
    """
    if algorithms is None:
        algorithms = list(DEFAULT_ALGORITHMS)
    headers = [
        "Noise std",
        "Algorithm",
        "Distance error",
        f"Top-{k} accuracy",
        "Cell gain",
    ]
    rows = []
    for noise in noise_levels:
        dataset = make_synthetic_dataset(
            dataset_kind,
            length=length,
            num_series=num_series,
            num_classes=min(num_classes, num_series),
            seed=seed,
            noise_std=float(noise),
            skew_strength=0.35,
        )
        evaluation = evaluate_dataset(dataset, algorithms, ks=(k,))
        for spec in algorithms:
            result = evaluation.evaluations[spec.label]
            rows.append([
                float(noise),
                spec.label,
                result.distance_error,
                result.retrieval_accuracy[k],
                result.cell_gain,
            ])
    return ExperimentResult(
        experiment="noise_robustness",
        title="Noise robustness of the locally relevant constraints",
        headers=headers,
        rows=rows,
        metadata={
            "seed": seed,
            "num_series": num_series,
            "dataset_kind": dataset_kind,
            "noise_levels": [float(v) for v in noise_levels],
            "algorithms": [spec.label for spec in algorithms],
            "k": k,
            "length": length,
        },
    )
