"""Figure 15 — intra-class distance errors on the Trace-like data set.

Series within the same class are much more similar to each other than
series across classes, so estimating their DTW distances accurately is
harder; the paper shows the fixed-core algorithms degrade badly here while
the adaptive-core algorithms keep errors small.  This experiment restricts
the distance-error computation to pairs that share a class label.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..retrieval.evaluation import distance_error
from .runner import (
    AlgorithmSpec,
    ExperimentResult,
    default_algorithms,
    evaluate_dataset,
    load_experiment_dataset,
)


def _intra_class_pairs(labels: Sequence[Optional[int]]) -> List[Tuple[int, int]]:
    """All unordered index pairs whose series share a (non-None) class label."""
    pairs = []
    for a in range(len(labels)):
        for b in range(a + 1, len(labels)):
            if labels[a] is not None and labels[a] == labels[b]:
                pairs.append((a, b))
    return pairs


def run_fig15(
    dataset_name: str = "trace",
    num_series: int = 20,
    seed: int = 7,
    algorithms: Optional[Sequence[AlgorithmSpec]] = None,
) -> ExperimentResult:
    """Regenerate Figure 15 (intra-class distance errors, Trace data set).

    Parameters
    ----------
    dataset_name:
        Data set to evaluate (the paper uses Trace, which has 4 classes of
        roughly 25 series each).
    num_series:
        Number of series sampled.
    seed:
        Sampling/generation seed.
    algorithms:
        Algorithm roster override.
    """
    if algorithms is None:
        algorithms = default_algorithms()
    dataset = load_experiment_dataset(dataset_name, num_series=num_series, seed=seed)
    evaluation = evaluate_dataset(dataset, algorithms, ks=(5,))
    labels = dataset.labels
    pairs = _intra_class_pairs(labels)

    headers = ["Algorithm", "Intra-class distance error", "Overall distance error",
               "Time gain"]
    rows = []
    for spec in algorithms:
        index = evaluation.indexes[spec.label]
        result = evaluation.evaluations[spec.label]
        intra_error = distance_error(
            evaluation.reference.distances, index.distances, pairs=pairs
        )
        rows.append([spec.label, intra_error, result.distance_error, result.time_gain])
    return ExperimentResult(
        experiment="fig15",
        title=f"Figure 15: intra-class distance errors ({dataset.name})",
        headers=headers,
        rows=rows,
        metadata={
            "seed": seed,
            "num_series": num_series,
            "dataset": dataset_name,
            "num_intra_class_pairs": len(pairs),
            "algorithms": [spec.label for spec in algorithms],
        },
    )
