"""Table 2 — average numbers of salient points at three temporal scales.

The paper reports, per data set, the average number of salient points found
at fine, medium and rough scales.  To populate all three granularities we
run the extractor with three octaves (the paper's ``o = ⌊log2 N⌋ − 6``
default yields only one or two octaves for these series lengths; the scale
*classes* in the paper correspond to coarse groupings of the pyramid, which
a three-octave pyramid reproduces directly).  The quantity to compare is
the relative profile across data sets: the Gun-like data is dominated by
large-scale features while the 50Words-like data has very few of them.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

import numpy as np

from ..core.config import SDTWConfig
from ..core.features import count_features_by_scale, extract_salient_features
from .runner import ExperimentResult, load_experiment_dataset

PAPER_TABLE2 = {
    "gun": {"fine": 221.2, "medium": 165.4, "rough": 58.9, "total": 445.5},
    "trace": {"fine": 122.1, "medium": 140.0, "rough": 46.6, "total": 308.7},
    "50words": {"fine": 202.1, "medium": 90.3, "rough": 18.9, "total": 311.3},
}
"""The values reported in the paper, for side-by-side comparison."""


def run_table2(
    dataset_names: Sequence[str] = ("gun", "trace", "50words"),
    seed: int = 7,
    num_series: Optional[int] = 20,
    num_octaves: int = 3,
    config: Optional[SDTWConfig] = None,
) -> ExperimentResult:
    """Regenerate Table 2.

    Parameters
    ----------
    dataset_names:
        Registered data-set names.
    seed:
        Generation seed.
    num_series:
        Number of series per data set to average over (``None`` = all).
    num_octaves:
        Octaves used for the scale pyramid; three octaves give the
        fine/medium/rough granularity of the paper's table.
    config:
        Base sDTW configuration; its scale-space section is overridden
        with ``num_octaves``.
    """
    if config is None:
        config = SDTWConfig()
    scale_config = replace(config.scale_space, num_octaves=num_octaves)
    config = replace(config, scale_space=scale_config)

    headers = ["Data Set", "Fine", "Medium", "Rough", "Total",
               "Paper Fine", "Paper Medium", "Paper Rough", "Paper Total"]
    rows = []
    for name in dataset_names:
        dataset = load_experiment_dataset(name, num_series=num_series, seed=seed)
        fine_counts, medium_counts, rough_counts = [], [], []
        for ts in dataset:
            features = extract_salient_features(ts.values, config)
            fine, medium, rough = count_features_by_scale(features)
            fine_counts.append(fine)
            medium_counts.append(medium)
            rough_counts.append(rough)
        fine_avg = float(np.mean(fine_counts))
        medium_avg = float(np.mean(medium_counts))
        rough_avg = float(np.mean(rough_counts))
        paper = PAPER_TABLE2.get(name.lower(), {})
        rows.append([
            dataset.name,
            fine_avg,
            medium_avg,
            rough_avg,
            fine_avg + medium_avg + rough_avg,
            paper.get("fine"),
            paper.get("medium"),
            paper.get("rough"),
            paper.get("total"),
        ])
    return ExperimentResult(
        experiment="table2",
        title="Table 2: average numbers of salient points at three scales",
        headers=headers,
        rows=rows,
        metadata={
            "seed": seed,
            "num_series": num_series,
            "num_octaves": num_octaves,
            "datasets": list(dataset_names),
        },
    )
