"""Figure 13 — top-k retrieval accuracy and time gain per algorithm.

For each data set (Gun-, Trace-, 50Words-like) and each algorithm of the
Section 4.3 roster, this experiment reports the top-5 and top-10 retrieval
accuracy (overlap with the result sets of the optimal DTW) together with
the time gain and its hardware-independent cell-gain analogue.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .runner import (
    AlgorithmSpec,
    ExperimentResult,
    default_algorithms,
    evaluate_dataset,
    load_experiment_dataset,
)


def run_fig13(
    dataset_names: Sequence[str] = ("gun", "trace", "50words"),
    num_series: int = 16,
    seed: int = 7,
    ks: Sequence[int] = (5, 10),
    algorithms: Optional[Sequence[AlgorithmSpec]] = None,
) -> ExperimentResult:
    """Regenerate Figure 13 (retrieval accuracy and time gain).

    Parameters
    ----------
    dataset_names:
        Data sets to evaluate (the paper uses all three).
    num_series:
        Number of series sampled per data set.  The paper uses the full
        collections; the default here keeps runtimes modest while
        preserving the relative ordering of the algorithms — pass the full
        sizes to run at paper scale.
    seed:
        Sampling/generation seed.
    ks:
        Retrieval depths (paper: 5 and 10).
    algorithms:
        Algorithm roster override.
    """
    if algorithms is None:
        algorithms = default_algorithms()
    headers = ["Data Set", "Algorithm"]
    headers += [f"Top-{k} accuracy" for k in ks]
    headers += ["Time gain", "Cell gain"]
    rows = []
    for name in dataset_names:
        dataset = load_experiment_dataset(name, num_series=num_series, seed=seed)
        evaluation = evaluate_dataset(dataset, algorithms, ks=ks)
        for spec in algorithms:
            result = evaluation.evaluations[spec.label]
            row = [dataset.name, spec.label]
            row += [result.retrieval_accuracy[k] for k in ks]
            row += [result.time_gain, result.cell_gain]
            rows.append(row)
    return ExperimentResult(
        experiment="fig13",
        title="Figure 13: top-k retrieval accuracy and time gain",
        headers=headers,
        rows=rows,
        metadata={
            "seed": seed,
            "num_series": num_series,
            "ks": list(ks),
            "datasets": list(dataset_names),
            "algorithms": [spec.label for spec in algorithms],
        },
    )
