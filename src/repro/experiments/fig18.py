"""Figure 18 — impact of the descriptor length on error, accuracy, and gain.

The paper varies the descriptor length between 4 and 128 bins and reports,
per data set and per adaptive algorithm, the distance error, the top-10
retrieval accuracy, and the time gain.  This experiment sweeps the same
descriptor lengths with everything else held at the defaults.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.config import SDTWConfig
from .runner import (
    AlgorithmSpec,
    ExperimentResult,
    default_algorithms,
    evaluate_dataset,
    load_experiment_dataset,
)

DEFAULT_DESCRIPTOR_LENGTHS = (4, 8, 16, 32, 64, 128)

_ADAPTIVE_LABELS = ("(fc,aw)", "(ac,fw) 10%", "(ac,aw)", "(ac2,aw)")


def adaptive_algorithms() -> Sequence[AlgorithmSpec]:
    """The subset of the roster whose behaviour depends on the descriptors."""
    return [spec for spec in default_algorithms() if spec.label in _ADAPTIVE_LABELS]


def run_fig18(
    dataset_names: Sequence[str] = ("gun", "trace", "50words"),
    num_series: int = 12,
    seed: int = 7,
    descriptor_lengths: Sequence[int] = DEFAULT_DESCRIPTOR_LENGTHS,
    algorithms: Optional[Sequence[AlgorithmSpec]] = None,
    k: int = 10,
) -> ExperimentResult:
    """Regenerate Figure 18 (descriptor-length sweep).

    Parameters
    ----------
    dataset_names:
        Data sets to sweep over.
    num_series:
        Number of series sampled per data set (kept small by default —
        the sweep multiplies the work by the number of descriptor lengths).
    seed:
        Sampling/generation seed.
    descriptor_lengths:
        Descriptor bin counts to sweep (paper: 4 … 128).
    algorithms:
        Algorithm roster override; defaults to the adaptive algorithms
        only, since fixed core & fixed width does not use descriptors.
    k:
        Retrieval depth for the accuracy column (paper: 10).
    """
    if algorithms is None:
        algorithms = adaptive_algorithms()
    headers = [
        "Data Set",
        "Descriptor length",
        "Algorithm",
        "Distance error",
        f"Top-{k} accuracy",
        "Time gain",
        "Cell gain",
    ]
    rows = []
    for name in dataset_names:
        dataset = load_experiment_dataset(name, num_series=num_series, seed=seed)
        for length in descriptor_lengths:
            base_config = SDTWConfig().with_descriptor_bins(int(length))
            evaluation = evaluate_dataset(
                dataset, algorithms, base_config=base_config, ks=(k,)
            )
            for spec in algorithms:
                result = evaluation.evaluations[spec.label]
                rows.append([
                    dataset.name,
                    int(length),
                    spec.label,
                    result.distance_error,
                    result.retrieval_accuracy[k],
                    result.time_gain,
                    result.cell_gain,
                ])
    return ExperimentResult(
        experiment="fig18",
        title="Figure 18: impact of the descriptor length",
        headers=headers,
        rows=rows,
        metadata={
            "seed": seed,
            "num_series": num_series,
            "descriptor_lengths": [int(v) for v in descriptor_lengths],
            "datasets": list(dataset_names),
            "algorithms": [spec.label for spec in algorithms],
            "k": k,
        },
    )
