"""Shared experiment infrastructure.

The evaluation experiments all follow the same pattern: pick a data set
(or a subset of it, to keep runtimes manageable), build the full-DTW
reference distance index and one constrained index per algorithm, and then
derive accuracy/error/time-gain figures.  This module provides that shared
machinery plus the canonical algorithm roster of Section 4.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..core.config import SDTWConfig
from ..core.sdtw import SDTW
from ..datasets.base import Dataset
from ..datasets.registry import load_dataset
from ..exceptions import ExperimentError
from ..retrieval.evaluation import EvaluationResult, evaluate_constraint
from ..retrieval.index import PairwiseDistanceMatrix, compute_distance_index
from ..utils.rng import rng_from_seed
from ..utils.tables import format_table, table_to_csv


@dataclass(frozen=True)
class AlgorithmSpec:
    """One algorithm configuration evaluated by the experiments.

    Attributes
    ----------
    label:
        Display label used in tables (matches the paper's legend, e.g.
        ``"(ac,fw) 10%"``).
    constraint:
        Constraint family passed to the sDTW engine (``"full"``,
        ``"fc,fw"``, ``"fc,aw"``, ``"ac,fw"``, ``"ac,aw"``, ``"ac2,aw"``).
    width_fraction:
        Fixed band width (fraction of the series length) for the
        fixed-width variants; ignored by the adaptive-width variants.
    """

    label: str
    constraint: str
    width_fraction: float = 0.10

    def make_config(self, base: Optional[SDTWConfig] = None) -> SDTWConfig:
        """Derive the :class:`SDTWConfig` for this algorithm from a base config."""
        config = base if base is not None else SDTWConfig()
        return replace(config, width_fraction=self.width_fraction)


def default_algorithms(include_full: bool = False) -> List[AlgorithmSpec]:
    """The algorithm roster of Section 4.3.

    Parameters
    ----------
    include_full:
        Whether to prepend the full (optimal) DTW; the evaluation functions
        treat the full DTW as the reference, so it is usually excluded from
        the per-algorithm list.
    """
    algorithms = [
        AlgorithmSpec("(fc,fw) 6%", "fc,fw", 0.06),
        AlgorithmSpec("(fc,fw) 10%", "fc,fw", 0.10),
        AlgorithmSpec("(fc,fw) 20%", "fc,fw", 0.20),
        AlgorithmSpec("(fc,aw)", "fc,aw", 0.20),
        AlgorithmSpec("(ac,fw) 6%", "ac,fw", 0.06),
        AlgorithmSpec("(ac,fw) 10%", "ac,fw", 0.10),
        AlgorithmSpec("(ac,fw) 20%", "ac,fw", 0.20),
        AlgorithmSpec("(ac,aw)", "ac,aw", 0.10),
        AlgorithmSpec("(ac2,aw)", "ac2,aw", 0.10),
    ]
    if include_full:
        algorithms.insert(0, AlgorithmSpec("dtw", "full", 1.0))
    return algorithms


@dataclass
class DatasetEvaluation:
    """All distance indexes and evaluations for one data set.

    Attributes
    ----------
    dataset:
        The (possibly subsampled) data set the evaluation ran on.
    reference:
        The full-DTW distance index.
    indexes:
        Constrained distance index per algorithm label.
    evaluations:
        :class:`EvaluationResult` per algorithm label.
    """

    dataset: Dataset
    reference: PairwiseDistanceMatrix
    indexes: Dict[str, PairwiseDistanceMatrix] = field(default_factory=dict)
    evaluations: Dict[str, EvaluationResult] = field(default_factory=dict)

    @property
    def labels(self) -> List[Optional[int]]:
        """Class labels of the evaluated series."""
        return self.dataset.labels


@dataclass
class ExperimentResult:
    """A reproduced table/figure: headers + rows + provenance.

    Attributes
    ----------
    experiment:
        Experiment identifier (e.g. ``"fig13"``).
    title:
        Human-readable title including the paper artefact it reproduces.
    headers:
        Column headers.
    rows:
        Table rows (lists of strings/numbers).
    metadata:
        Parameters the experiment ran with (data-set sizes, seed, k, …).
    """

    experiment: str
    title: str
    headers: List[str]
    rows: List[List[object]]
    metadata: Dict[str, object] = field(default_factory=dict)

    def to_text(self, float_format: str = ".4f") -> str:
        """Render the result as an aligned monospaced table."""
        return format_table(self.headers, self.rows, float_format=float_format,
                            title=self.title)

    def to_csv(self, float_format: str = ".6f") -> str:
        """Render the result as CSV."""
        return table_to_csv(self.headers, self.rows, float_format=float_format)

    def row_dict(self, key_column: int = 0) -> Dict[object, List[object]]:
        """Index the rows by the value of one column (default: the first)."""
        return {row[key_column]: row for row in self.rows}


def load_experiment_dataset(
    name: str,
    num_series: Optional[int] = None,
    seed: int = 7,
) -> Dataset:
    """Load a data set for an experiment, optionally subsampling it.

    Subsampling is stratified implicitly by taking a random subset, which
    for the synthetic collections (balanced classes, deterministic seeds)
    preserves the class structure well enough for relative comparisons.
    """
    dataset = load_dataset(name, seed=seed)
    if num_series is not None and num_series < len(dataset):
        rng = rng_from_seed(seed)
        dataset = dataset.sample(num_series, rng, name=f"{dataset.name}-n{num_series}")
    dataset.validate()
    return dataset


def evaluate_dataset(
    dataset: Dataset,
    algorithms: Optional[Sequence[AlgorithmSpec]] = None,
    *,
    base_config: Optional[SDTWConfig] = None,
    ks: Sequence[int] = (5, 10),
    symmetrize: bool = False,
    num_workers: Optional[int] = None,
) -> DatasetEvaluation:
    """Build the reference and constrained indexes and evaluate every algorithm.

    Parameters
    ----------
    dataset:
        The data set (use :func:`load_experiment_dataset` to subsample).
    algorithms:
        Algorithm roster; defaults to :func:`default_algorithms`.
    base_config:
        Base sDTW configuration shared by all algorithms (each algorithm
        only overrides its width fraction).
    ks:
        k values for the retrieval/classification criteria.
    symmetrize:
        Whether constrained distances are averaged over both orientations.
    num_workers:
        When greater than 1, pairwise distances are computed on a process
        pool (see :func:`repro.retrieval.index.compute_distance_index`).
    """
    if len(dataset) < 2:
        raise ExperimentError("experiments need at least two series")
    if algorithms is None:
        algorithms = default_algorithms()
    values = dataset.values_list()

    reference = compute_distance_index(values, "full", num_workers=num_workers)
    evaluation = DatasetEvaluation(dataset=dataset, reference=reference)

    for spec in algorithms:
        config = spec.make_config(base_config)
        engine = SDTW(config)
        index = compute_distance_index(
            values, spec.constraint, engine, symmetrize=symmetrize,
            num_workers=num_workers,
        )
        index = replace_label(index, spec.label)
        evaluation.indexes[spec.label] = index
        evaluation.evaluations[spec.label] = evaluate_constraint(
            reference, index, labels=dataset.labels, ks=ks
        )
    return evaluation


def replace_label(index: PairwiseDistanceMatrix, label: str) -> PairwiseDistanceMatrix:
    """Return a copy of a distance index relabelled with an algorithm label."""
    return PairwiseDistanceMatrix(
        constraint=label,
        distances=index.distances,
        matching_seconds=index.matching_seconds,
        dp_seconds=index.dp_seconds,
        extract_seconds=index.extract_seconds,
        cells_filled=index.cells_filled,
        total_cells=index.total_cells,
    )
