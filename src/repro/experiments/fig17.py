"""Figure 17 — execution-time split: matching vs. dynamic programming.

The per-comparison cost of the adaptive algorithms has two components:
(b) matching the salient features and pruning inconsistencies, and
(c) filling the constrained DTW grid and backtracking.  The paper shows the
matching component is a small fraction of the total; this experiment
reports the two components (and the matching share) for every algorithm.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..utils.stats import safe_divide
from .runner import (
    AlgorithmSpec,
    ExperimentResult,
    default_algorithms,
    evaluate_dataset,
    load_experiment_dataset,
)


def run_fig17(
    dataset_names: Sequence[str] = ("gun",),
    num_series: int = 16,
    seed: int = 7,
    algorithms: Optional[Sequence[AlgorithmSpec]] = None,
) -> ExperimentResult:
    """Regenerate Figure 17 (matching vs. dynamic-programming time).

    Parameters
    ----------
    dataset_names:
        Data sets to evaluate (the paper's figure shows one data set and
        notes the matching share is even lower on the others).
    num_series:
        Number of series sampled per data set.
    seed:
        Sampling/generation seed.
    algorithms:
        Algorithm roster override.
    """
    if algorithms is None:
        algorithms = default_algorithms()
    headers = [
        "Data Set",
        "Algorithm",
        "Matching seconds",
        "DP seconds",
        "Total seconds",
        "Matching share",
    ]
    rows = []
    for name in dataset_names:
        dataset = load_experiment_dataset(name, num_series=num_series, seed=seed)
        evaluation = evaluate_dataset(dataset, algorithms, ks=(5,))
        for spec in algorithms:
            index = evaluation.indexes[spec.label]
            total = index.compute_seconds
            rows.append([
                dataset.name,
                spec.label,
                index.matching_seconds,
                index.dp_seconds,
                total,
                safe_divide(index.matching_seconds, total, 0.0),
            ])
    return ExperimentResult(
        experiment="fig17",
        title="Figure 17: matching/inconsistency-removal vs. dynamic-programming time",
        headers=headers,
        rows=rows,
        metadata={
            "seed": seed,
            "num_series": num_series,
            "datasets": list(dataset_names),
            "algorithms": [spec.label for spec in algorithms],
        },
    )
