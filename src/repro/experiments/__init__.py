"""Experiment harness: one module per table/figure of the paper's Section 4.

Every experiment exposes a ``run_*`` function returning an
:class:`repro.experiments.runner.ExperimentResult` whose rows mirror the
rows/series the paper reports, plus ``to_text()`` / ``to_csv()`` renderers.
The benchmark suite under ``benchmarks/`` and the CLI (``python -m repro``)
call these same functions.

| Module    | Paper artefact | Contents |
|-----------|----------------|----------|
| table1    | Table 1        | data-set summaries |
| table2    | Table 2        | salient-point counts per scale |
| fig13     | Figure 13      | top-k retrieval accuracy vs. time gain |
| fig14     | Figure 14      | distance error vs. time gain |
| fig15     | Figure 15      | intra-class distance errors (Trace) |
| fig16     | Figure 16      | classification accuracy (50Words) |
| fig17     | Figure 17      | matching vs. dynamic-programming time |
| fig18     | Figure 18      | descriptor-length sweep |
"""

from .noise_robustness import run_noise_robustness
from .runner import (
    AlgorithmSpec,
    DatasetEvaluation,
    ExperimentResult,
    default_algorithms,
    evaluate_dataset,
    load_experiment_dataset,
)
from .table1 import run_table1
from .table2 import run_table2
from .fig13 import run_fig13
from .fig14 import run_fig14
from .fig15 import run_fig15
from .fig16 import run_fig16
from .fig17 import run_fig17
from .fig18 import run_fig18

__all__ = [
    "AlgorithmSpec",
    "DatasetEvaluation",
    "ExperimentResult",
    "default_algorithms",
    "evaluate_dataset",
    "load_experiment_dataset",
    "run_fig13",
    "run_fig14",
    "run_fig15",
    "run_fig16",
    "run_fig17",
    "run_fig18",
    "run_noise_robustness",
    "run_table1",
    "run_table2",
]

EXPERIMENTS = {
    "table1": run_table1,
    "table2": run_table2,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "fig15": run_fig15,
    "fig16": run_fig16,
    "fig17": run_fig17,
    "fig18": run_fig18,
    "noise": run_noise_robustness,
}
"""Registry mapping experiment identifiers to their run functions
(``"noise"`` is the extension study, not a paper figure)."""
