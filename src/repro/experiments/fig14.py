"""Figure 14 — distance error versus time gain per algorithm.

For each data set and algorithm, reports the mean relative error of the
constrained distance estimates with respect to the optimal DTW distance,
next to the time gain (and the cell-gain analogue).
"""

from __future__ import annotations

from typing import Optional, Sequence

from .runner import (
    AlgorithmSpec,
    ExperimentResult,
    default_algorithms,
    evaluate_dataset,
    load_experiment_dataset,
)


def run_fig14(
    dataset_names: Sequence[str] = ("gun", "trace", "50words"),
    num_series: int = 16,
    seed: int = 7,
    algorithms: Optional[Sequence[AlgorithmSpec]] = None,
) -> ExperimentResult:
    """Regenerate Figure 14 (distance error vs. time gain).

    Parameters mirror :func:`repro.experiments.fig13.run_fig13`.
    """
    if algorithms is None:
        algorithms = default_algorithms()
    headers = ["Data Set", "Algorithm", "Distance error", "Time gain", "Cell gain"]
    rows = []
    for name in dataset_names:
        dataset = load_experiment_dataset(name, num_series=num_series, seed=seed)
        evaluation = evaluate_dataset(dataset, algorithms, ks=(5,))
        for spec in algorithms:
            result = evaluation.evaluations[spec.label]
            rows.append([
                dataset.name,
                spec.label,
                result.distance_error,
                result.time_gain,
                result.cell_gain,
            ])
    return ExperimentResult(
        experiment="fig14",
        title="Figure 14: distance error vs. time gain",
        headers=headers,
        rows=rows,
        metadata={
            "seed": seed,
            "num_series": num_series,
            "datasets": list(dataset_names),
            "algorithms": [spec.label for spec in algorithms],
        },
    )
