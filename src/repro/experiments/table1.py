"""Table 1 — summary of the evaluation data sets.

Reproduces the paper's data-set overview (length, number of series, number
of classes) for the three collections: Gun, Trace and 50Words (synthetic
analogues in this repository; see DESIGN.md, substitution table).
"""

from __future__ import annotations

from typing import Optional, Sequence

from .runner import ExperimentResult, load_experiment_dataset

PAPER_TABLE1 = {
    "gun": {"length": 150, "num_series": 50, "num_classes": 2},
    "trace": {"length": 275, "num_series": 100, "num_classes": 4},
    "50words": {"length": 270, "num_series": 450, "num_classes": 50},
}
"""The values reported in the paper, for side-by-side comparison."""


def run_table1(
    dataset_names: Sequence[str] = ("gun", "trace", "50words"),
    seed: int = 7,
    num_series: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Table 1.

    Parameters
    ----------
    dataset_names:
        Registered data-set names to summarise.
    seed:
        Generation seed for the synthetic collections.
    num_series:
        Optional cap on the number of series loaded per data set (useful
        for quick runs); ``None`` loads the paper-scale collections.
    """
    headers = ["Data Set", "Length", "# of Series", "# of Classes",
               "Paper Length", "Paper # Series", "Paper # Classes"]
    rows = []
    for name in dataset_names:
        dataset = load_experiment_dataset(name, num_series=num_series, seed=seed)
        summary = dataset.summary()
        paper = PAPER_TABLE1.get(name.lower(), {})
        rows.append([
            dataset.name,
            summary["length"],
            summary["num_series"],
            summary["num_classes"],
            paper.get("length"),
            paper.get("num_series"),
            paper.get("num_classes"),
        ])
    return ExperimentResult(
        experiment="table1",
        title="Table 1: data sets used in the experiments",
        headers=headers,
        rows=rows,
        metadata={"seed": seed, "num_series": num_series,
                  "datasets": list(dataset_names)},
    )
