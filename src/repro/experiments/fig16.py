"""Figure 16 — top-5/top-10 classification accuracy on the 50Words-like data.

The paper focuses on the 50Words data set because its 50 classes make the
k-NN labelling task hard; classification accuracy is the Jaccard overlap
between the label sets obtained with the optimal DTW and with each
constrained algorithm.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .runner import (
    AlgorithmSpec,
    ExperimentResult,
    default_algorithms,
    evaluate_dataset,
    load_experiment_dataset,
)


def run_fig16(
    dataset_name: str = "50words",
    num_series: int = 30,
    seed: int = 7,
    ks: Sequence[int] = (5, 10),
    algorithms: Optional[Sequence[AlgorithmSpec]] = None,
) -> ExperimentResult:
    """Regenerate Figure 16 (classification accuracy vs. time gain).

    Parameters
    ----------
    dataset_name:
        Data set to evaluate (the paper uses 50Words).
    num_series:
        Number of series sampled.
    seed:
        Sampling/generation seed.
    ks:
        Neighbourhood sizes (paper: 5 and 10).
    algorithms:
        Algorithm roster override.
    """
    if algorithms is None:
        algorithms = default_algorithms()
    dataset = load_experiment_dataset(dataset_name, num_series=num_series, seed=seed)
    evaluation = evaluate_dataset(dataset, algorithms, ks=ks)

    headers = ["Algorithm"]
    headers += [f"Top-{k} classification accuracy" for k in ks]
    headers += ["Time gain", "Cell gain"]
    rows = []
    for spec in algorithms:
        result = evaluation.evaluations[spec.label]
        row = [spec.label]
        row += [result.classification_accuracy.get(k, float("nan")) for k in ks]
        row += [result.time_gain, result.cell_gain]
        rows.append(row)
    return ExperimentResult(
        experiment="fig16",
        title=f"Figure 16: classification accuracy vs. time gain ({dataset.name})",
        headers=headers,
        rows=rows,
        metadata={
            "seed": seed,
            "num_series": num_series,
            "dataset": dataset_name,
            "ks": list(ks),
            "num_classes": dataset.num_classes,
            "algorithms": [spec.label for spec in algorithms],
        },
    )
