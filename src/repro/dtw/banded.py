"""DTW restricted to an arbitrary per-row window ("band").

Every constraint family in the paper — Sakoe–Chiba, Itakura, and all four
sDTW locally relevant constraint types — ultimately reduces to the same
primitive: for each index ``i`` of the first series, a contiguous window
``[lo_i, hi_i]`` of indices of the second series that the warp path may
visit.  This module implements the dynamic program over such a window,
counting exactly how many grid cells are filled (the basis of the paper's
time-gain measure) and backtracking the constrained-optimal warp path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import as_series
from ..exceptions import BandError, ValidationError
from .distances import PointwiseDistance, get_pointwise_distance
from .path import WarpPath

# A band is an integer array of shape (N, 2): row i holds the inclusive
# column window [lo_i, hi_i] of the second series reachable from x_i.
Band = np.ndarray


def abandon_cutoff(threshold: float) -> float:
    """The row-minimum cutoff above which early abandonment may fire.

    The vectorised row recurrence evaluates ``prefix[j] + min_t
    (diag_or_up[t] - prefix[t-1])``, a reassociation of the scalar DP
    that can leave accumulated path costs non-monotone across rows by a
    few ulps (cancellation against the row prefix sums).  Abandoning at
    ``row_min > threshold`` exactly can therefore fire when the true
    distance *equals* the threshold.  The slack absorbs that rounding,
    keeping abandonment provably conservative; it only defers pruning of
    candidates within a hair of the threshold, never changes distances.
    """
    return threshold + 1e-9 * max(1.0, abs(threshold))


def validate_band(band: np.ndarray, n: int, m: int, *, repair: bool = False) -> np.ndarray:
    """Validate (and optionally repair) a per-row window band.

    A usable band must

    * have shape ``(n, 2)`` with integer ``lo <= hi`` per row,
    * keep every window inside ``[0, m - 1]``,
    * include the corner cells ``(0, 0)`` and ``(n - 1, m - 1)``,
    * be *connected*: consecutive windows must overlap or touch diagonally
      (``lo[i] <= hi[i - 1] + 1``),
    * be *reachable*: because the warp-path step pattern never decreases
      the column, only the cells ``[a_i, hi_i]`` of row ``i`` with
      ``a_i = max(lo_i, a_{i-1})`` can lie on a path; every window must
      satisfy ``hi_i >= a_{i-1}``.  Comparing only adjacent rows
      (``hi[i] >= lo[i - 1]``) is not enough: a band of length-1 windows
      can wiggle backwards, pass every adjacent-row check, and still admit
      no warp path at all.

    With ``repair=True`` the band is widened just enough to restore the
    corner and connectivity requirements (this is the "gap bridging" the
    paper describes for empty intervals in Section 3.3.2); otherwise a
    :class:`BandError` is raised for violations.
    """
    arr = np.array(band, dtype=int, copy=True)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise BandError(f"band must have shape (n, 2), got {arr.shape}")
    if arr.shape[0] != n:
        raise BandError(f"band has {arr.shape[0]} rows but the series has {n} points")

    arr[:, 0] = np.clip(arr[:, 0], 0, m - 1)
    arr[:, 1] = np.clip(arr[:, 1], 0, m - 1)
    if np.any(arr[:, 0] > arr[:, 1]):
        if repair:
            bad = arr[:, 0] > arr[:, 1]
            arr[bad] = arr[bad][:, ::-1]
        else:
            raise BandError("band has rows with lo > hi")

    # Corner cells must be inside the band for a warp path to exist.
    if arr[0, 0] != 0:
        if repair:
            arr[0, 0] = 0
        else:
            raise BandError("band must contain the start cell (0, 0)")
    if arr[n - 1, 1] != m - 1:
        if repair:
            arr[n - 1, 1] = m - 1
        else:
            raise BandError("band must contain the end cell (n-1, m-1)")

    # Connectivity / reachability between consecutive rows.  The common
    # case (bands produced by this library's builders) needs no repair, so
    # the violations are detected vectorised and the sequential repair loop
    # only runs when something is actually wrong.  ``reach[i]`` is the
    # leftmost column a warp path can occupy in row i (the running maximum
    # of the window starts): a window whose end falls left of it can never
    # be entered, even when it overlaps the adjacent row.
    if n > 1:
        reach = np.maximum.accumulate(arr[:, 0])
        disconnected = arr[1:, 0] > arr[:-1, 1] + 1
        unreachable = arr[1:, 1] < reach[:-1]
        if disconnected.any() or unreachable.any():
            if not repair:
                row = int(np.flatnonzero(disconnected | unreachable)[0]) + 1
                if disconnected[row - 1]:
                    raise BandError(
                        f"band is disconnected between rows {row - 1} and {row}: "
                        f"window [{arr[row, 0]}, {arr[row, 1]}] does not touch "
                        f"[{arr[row - 1, 0]}, {arr[row - 1, 1]}]"
                    )
                raise BandError(
                    f"band moves backwards at row {row}: window "
                    f"[{arr[row, 0]}, {arr[row, 1]}] ends before the leftmost "
                    f"reachable column {reach[row - 1]}"
                )
            reachable_lo = int(arr[0, 0])
            for i in range(1, n):
                if arr[i, 0] > arr[i - 1, 1] + 1:
                    arr[i, 0] = arr[i - 1, 1] + 1
                if arr[i, 1] < reachable_lo:
                    arr[i, 1] = reachable_lo
                if arr[i, 0] > arr[i, 1]:
                    arr[i, 0] = arr[i, 1]
                reachable_lo = max(reachable_lo, int(arr[i, 0]))
    return arr


def band_cell_count(band: np.ndarray) -> int:
    """Number of grid cells covered by the band (cells the DP will fill)."""
    arr = np.asarray(band, dtype=int)
    return int(np.sum(arr[:, 1] - arr[:, 0] + 1))


def band_to_mask(band: np.ndarray, m: int) -> np.ndarray:
    """Expand a per-row window band into a boolean ``(n, m)`` mask."""
    arr = np.asarray(band, dtype=int)
    n = arr.shape[0]
    mask = np.zeros((n, m), dtype=bool)
    for i in range(n):
        mask[i, arr[i, 0]: arr[i, 1] + 1] = True
    return mask


def mask_to_band(mask: np.ndarray, *, repair: bool = True) -> np.ndarray:
    """Collapse a boolean mask into a per-row window band.

    Rows with no True cells get a degenerate window copied from the nearest
    populated neighbour (a form of gap bridging).  Holes inside a row are
    filled, because the DP requires contiguous windows.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise BandError("mask must be two-dimensional")
    n, m = mask.shape
    band = np.zeros((n, 2), dtype=int)
    last_window: Optional[Tuple[int, int]] = None
    missing_rows = []
    for i in range(n):
        cols = np.flatnonzero(mask[i])
        if cols.size == 0:
            missing_rows.append(i)
            band[i] = (-1, -1)
            continue
        band[i] = (int(cols[0]), int(cols[-1]))
        last_window = (int(cols[0]), int(cols[-1]))
    if missing_rows:
        if last_window is None:
            raise BandError("mask has no populated rows")
        # Forward/backward fill empty rows from the nearest populated row.
        for i in missing_rows:
            prev_i = i - 1
            while prev_i >= 0 and band[prev_i, 0] < 0:
                prev_i -= 1
            next_i = i + 1
            while next_i < n and band[next_i, 0] < 0:
                next_i += 1
            if prev_i >= 0:
                band[i] = band[prev_i]
            elif next_i < n:
                band[i] = band[next_i]
    return validate_band(band, n, m, repair=repair)


def union_bands(*bands: np.ndarray) -> np.ndarray:
    """Per-row union (widest cover) of several bands of identical height.

    Used to render adaptive constraints symmetric: the paper suggests
    running the band construction with the roles of X and Y swapped and
    performing the dynamic programming over the combined band.
    """
    if not bands:
        raise BandError("union_bands requires at least one band")
    arrays = [np.asarray(b, dtype=int) for b in bands]
    heights = {a.shape[0] for a in arrays}
    if len(heights) != 1:
        raise BandError("bands must all have the same number of rows")
    lo = np.min(np.stack([a[:, 0] for a in arrays]), axis=0)
    hi = np.max(np.stack([a[:, 1] for a in arrays]), axis=0)
    return np.stack([lo, hi], axis=1)


def intersect_bands(*bands: np.ndarray) -> np.ndarray:
    """Per-row intersection (narrowest cover) of several bands.

    Rows where the intersection would be empty keep a single-cell window at
    the midpoint of the overlap gap, so the result remains a usable band
    after repair.
    """
    if not bands:
        raise BandError("intersect_bands requires at least one band")
    arrays = [np.asarray(b, dtype=int) for b in bands]
    heights = {a.shape[0] for a in arrays}
    if len(heights) != 1:
        raise BandError("bands must all have the same number of rows")
    lo = np.max(np.stack([a[:, 0] for a in arrays]), axis=0)
    hi = np.min(np.stack([a[:, 1] for a in arrays]), axis=0)
    empty = lo > hi
    if np.any(empty):
        mid = ((lo + hi) // 2)[empty]
        lo = lo.copy()
        hi = hi.copy()
        lo[empty] = mid
        hi[empty] = mid
    return np.stack([lo, hi], axis=1)


def transpose_band(band: np.ndarray, n: int, m: int) -> np.ndarray:
    """Convert a band over an ``(n, m)`` grid into the equivalent band over
    the transposed ``(m, n)`` grid.

    Needed when combining the X-driven and Y-driven adaptive bands into a
    symmetric constraint.
    """
    mask = band_to_mask(validate_band(band, n, m, repair=True), m)
    return mask_to_band(mask.T)


@dataclass(frozen=True)
class BandedDTWResult:
    """Result of a band-constrained DTW computation.

    Attributes
    ----------
    distance:
        Cost of the best warp path restricted to the band, or ``inf`` when
        the computation was abandoned early.
    path:
        The constrained-optimal warp path, or ``None`` when not requested.
    cells_filled:
        Number of grid cells the dynamic program evaluated (band area, or
        the cells filled up to the abandoned row).
    band:
        The (validated, possibly repaired) band actually used.
    abandoned:
        True when an ``abandon_threshold`` was given and every cell of some
        row exceeded it, proving the final distance must exceed the
        threshold; the remaining rows were skipped.
    """

    distance: float
    path: Optional[WarpPath]
    cells_filled: int
    band: np.ndarray
    abandoned: bool = False

    @property
    def cell_fraction(self) -> float:
        """Fraction of the full N*M grid that was filled."""
        n = self.band.shape[0]
        m = int(self.band[:, 1].max()) + 1
        return self.cells_filled / float(n * m)


def banded_dtw(
    x: Union[Sequence[float], np.ndarray],
    y: Union[Sequence[float], np.ndarray],
    band: np.ndarray,
    distance: Union[str, PointwiseDistance, None] = None,
    *,
    return_path: bool = True,
    repair: bool = True,
    abandon_threshold: Optional[float] = None,
) -> BandedDTWResult:
    """Compute DTW restricted to a per-row window band.

    Parameters
    ----------
    x, y:
        The two time series (lengths N and M).
    band:
        Integer array of shape ``(N, 2)``: inclusive column windows.
    distance:
        Pointwise distance name or callable (default absolute difference).
    return_path:
        Whether to backtrack the constrained-optimal warp path.
    repair:
        Whether to automatically bridge gaps / clip the band so the DP can
        complete (the paper's gap-bridging rule); if False a malformed band
        raises :class:`BandError`.
    abandon_threshold:
        Early-abandoning threshold for k-NN search: when given, the DP
        stops as soon as the minimum accumulated cost of a whole row
        exceeds it (the final distance can then only be larger, because
        pointwise costs are non-negative) and the result carries
        ``abandoned=True`` with ``distance=inf``.  Only available on the
        distance-only path, where no backtracking state is kept.
    """
    xs = as_series(x, "x")
    ys = as_series(y, "y")
    func = get_pointwise_distance(distance)
    n, m = xs.size, ys.size
    window = validate_band(band, n, m, repair=repair)

    if return_path:
        if abandon_threshold is not None:
            raise ValidationError(
                "abandon_threshold requires return_path=False: an abandoned "
                "computation has no warp path to backtrack"
            )
        return _banded_dtw_with_path(xs, ys, window, func)
    return _banded_dtw_distance_only(xs, ys, window, func, abandon_threshold)


def _banded_dtw_distance_only(
    xs: np.ndarray,
    ys: np.ndarray,
    window: np.ndarray,
    func,
    abandon_threshold: Optional[float] = None,
) -> BandedDTWResult:
    """Distance-only banded DP: vectorised row recurrence, no back-pointers.

    The row update ``vals[j] = cost[j] + min(diag_or_up[j], vals[j - 1])``
    is a scan, but it has a closed form over the row's cost prefix sums:

        vals[j] = prefix[j] + min_{t <= j} (diag_or_up[t] - prefix[t - 1])

    which turns the per-cell Python loop into ``cumsum`` plus a running
    minimum (``np.minimum.accumulate``).  The same formulation is applied
    per candidate row by the batch kernel in :mod:`repro.engine`, so the
    serial and batched code paths produce bit-identical distances.
    """
    n, m = xs.size, ys.size
    cells = 0
    prev_lo = prev_hi = -1
    prev_vals: Optional[np.ndarray] = None
    inf = np.inf
    for i in range(n):
        lo = int(window[i, 0])
        hi = int(window[i, 1])
        width = hi - lo + 1
        cells += width
        row_cost = func(xs[i], ys[lo: hi + 1])
        prefix = np.cumsum(row_cost)
        if prev_vals is None:
            # First row: only horizontal moves are possible.
            vals = prefix if lo == 0 else np.full(width, inf)
        else:
            # min(up, diag) for the whole row in one pass.
            padded = np.full(width + 1, inf)
            overlap_lo = max(lo - 1, prev_lo)
            overlap_hi = min(hi, prev_hi)
            if overlap_hi >= overlap_lo:
                padded[overlap_lo - (lo - 1): overlap_hi - (lo - 1) + 1] = prev_vals[
                    overlap_lo - prev_lo: overlap_hi - prev_lo + 1
                ]
            diag_or_up = np.minimum(padded[:-1], padded[1:])
            shifted = np.empty(width)
            shifted[0] = 0.0
            shifted[1:] = prefix[:-1]
            vals = prefix + np.minimum.accumulate(diag_or_up - shifted)
        if (
            abandon_threshold is not None
            and vals.min() > abandon_cutoff(abandon_threshold)
        ):
            # Every continuation only adds non-negative costs, so the final
            # distance is guaranteed to exceed the threshold.
            return BandedDTWResult(
                distance=inf, path=None, cells_filled=cells, band=window,
                abandoned=True,
            )
        prev_lo, prev_hi, prev_vals = lo, hi, vals

    if not (prev_lo <= m - 1 <= prev_hi) or not np.isfinite(prev_vals[m - 1 - prev_lo]):
        raise BandError(
            "band does not admit any warp path from (0, 0) to (n-1, m-1); "
            "use repair=True to bridge gaps"
        )
    final = float(prev_vals[m - 1 - prev_lo])
    return BandedDTWResult(distance=final, path=None, cells_filled=cells, band=window)


def _banded_dtw_with_path(
    xs: np.ndarray, ys: np.ndarray, window: np.ndarray, func
) -> BandedDTWResult:
    """Banded DP with back-pointer bookkeeping for warp-path recovery."""
    n, m = xs.size, ys.size
    acc_rows = []
    cells = 0
    back_pointers: Dict[Tuple[int, int], Tuple[int, int]] = {}

    prev_lo = prev_hi = None
    prev_vals: Optional[np.ndarray] = None
    for i in range(n):
        lo, hi = int(window[i, 0]), int(window[i, 1])
        width = hi - lo + 1
        cells += width
        row_cost = func(xs[i], ys[lo: hi + 1])
        vals = np.full(width, np.inf)
        for idx in range(width):
            j = lo + idx
            if i == 0 and j == 0:
                best = 0.0
                origin = None
            else:
                best = np.inf
                origin = None
                # Left neighbour (i, j-1).
                if idx > 0 and vals[idx - 1] < best:
                    best = vals[idx - 1]
                    origin = (i, j - 1)
                if prev_vals is not None:
                    # Up neighbour (i-1, j).
                    if prev_lo <= j <= prev_hi:
                        cand = prev_vals[j - prev_lo]
                        if cand < best:
                            best = cand
                            origin = (i - 1, j)
                    # Diagonal neighbour (i-1, j-1).
                    if prev_lo <= j - 1 <= prev_hi:
                        cand = prev_vals[j - 1 - prev_lo]
                        if cand < best:
                            best = cand
                            origin = (i - 1, j - 1)
            if np.isinf(best):
                vals[idx] = np.inf
                continue
            vals[idx] = best + row_cost[idx]
            if origin is not None:
                back_pointers[(i, j)] = origin
        acc_rows.append((lo, hi, vals))
        prev_lo, prev_hi, prev_vals = lo, hi, vals

    end_lo, end_hi, end_vals = acc_rows[-1]
    if not (end_lo <= m - 1 <= end_hi) or np.isinf(end_vals[m - 1 - end_lo]):
        raise BandError(
            "band does not admit any warp path from (0, 0) to (n-1, m-1); "
            "use repair=True to bridge gaps"
        )
    final = float(end_vals[m - 1 - end_lo])

    pairs = [(n - 1, m - 1)]
    cursor = (n - 1, m - 1)
    while cursor != (0, 0):
        cursor = back_pointers[cursor]
        pairs.append(cursor)
    pairs.reverse()
    path = WarpPath(tuple(pairs))

    return BandedDTWResult(distance=final, path=path, cells_filled=cells, band=window)


def dtw_with_band(
    x: Union[Sequence[float], np.ndarray],
    y: Union[Sequence[float], np.ndarray],
    band: Optional[np.ndarray] = None,
    distance: Union[str, PointwiseDistance, None] = None,
) -> float:
    """Convenience wrapper returning just the (banded) DTW distance.

    With ``band=None`` this is the exact DTW distance.
    """
    if band is None:
        from .full import dtw_distance

        return dtw_distance(x, y, distance)
    return banded_dtw(x, y, band, distance, return_path=False).distance
