"""FastDTW: the multi-resolution DTW approximation of Salvador & Chan.

The paper (Section 2.1.4) discusses reduced-representation approaches such
as FastDTW as an orthogonal family of DTW speed-ups and notes that sDTW can
be combined with them.  This module provides a from-scratch implementation
so the benchmark harness can place sDTW next to this classic baseline.

Algorithm sketch (Salvador & Chan, "Toward accurate dynamic time warping in
linear time and space"):

1. Recursively coarsen both series by halving their resolution.
2. Solve DTW exactly at the coarsest resolution.
3. Project the coarse warp path to the next finer resolution, expand it by
   ``radius`` cells, and run the banded DTW inside that projected window.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from .._validation import as_series, check_int_at_least
from .banded import BandedDTWResult, banded_dtw, mask_to_band
from .distances import PointwiseDistance
from .full import dtw
from .path import WarpPath


def _reduce_by_half(series: np.ndarray) -> np.ndarray:
    """Halve the resolution of a series by averaging adjacent pairs."""
    n = series.size
    if n % 2 == 1:
        series = np.append(series, series[-1])
    return series.reshape(-1, 2).mean(axis=1)


def _expanded_window_mask(
    path: WarpPath, n: int, m: int, radius: int
) -> np.ndarray:
    """Project a coarse warp path onto a grid twice its size and dilate it."""
    mask = np.zeros((n, m), dtype=bool)
    for (ci, cj) in path:
        # Each coarse cell corresponds to a 2x2 block at the finer level.
        for di in range(2):
            for dj in range(2):
                i = ci * 2 + di
                j = cj * 2 + dj
                lo_i = max(0, i - radius)
                hi_i = min(n - 1, i + radius)
                lo_j = max(0, j - radius)
                hi_j = min(m - 1, j + radius)
                mask[lo_i: hi_i + 1, lo_j: hi_j + 1] = True
    mask[0, 0] = True
    mask[n - 1, m - 1] = True
    return mask


def fastdtw(
    x: Union[Sequence[float], np.ndarray],
    y: Union[Sequence[float], np.ndarray],
    radius: int = 1,
    distance: Union[str, PointwiseDistance, None] = None,
    *,
    min_size: int = 16,
) -> BandedDTWResult:
    """Approximate DTW via the FastDTW multi-resolution scheme.

    Parameters
    ----------
    x, y:
        The two time series.
    radius:
        Expansion radius applied to the projected coarse path at each level.
        Larger radii trade speed for accuracy.
    distance:
        Pointwise distance name or callable.
    min_size:
        Series shorter than this are solved with the exact DTW directly
        (the recursion base case).

    Returns
    -------
    BandedDTWResult
        Distance, path, number of filled cells (summed over the finest
        level only, matching how the constrained algorithms are counted),
        and the final search band.
    """
    xs = as_series(x, "x")
    ys = as_series(y, "y")
    radius = check_int_at_least(radius, 0, "radius")
    min_size = check_int_at_least(min_size, 2, "min_size")
    return _fastdtw_recursive(xs, ys, radius, distance, min_size)


def _fastdtw_recursive(
    xs: np.ndarray,
    ys: np.ndarray,
    radius: int,
    distance,
    min_size: int,
) -> BandedDTWResult:
    n, m = xs.size, ys.size
    if n <= min_size or m <= min_size:
        exact = dtw(xs, ys, distance, return_path=True)
        band = np.zeros((n, 2), dtype=int)
        band[:, 1] = m - 1
        return BandedDTWResult(
            distance=exact.distance,
            path=exact.path,
            cells_filled=exact.cells_filled,
            band=band,
        )
    shrunk_x = _reduce_by_half(xs)
    shrunk_y = _reduce_by_half(ys)
    coarse = _fastdtw_recursive(shrunk_x, shrunk_y, radius, distance, min_size)
    mask = _expanded_window_mask(coarse.path, n, m, radius)
    band = mask_to_band(mask)
    return banded_dtw(xs, ys, band, distance, return_path=True)
