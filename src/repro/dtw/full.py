"""Unconstrained DTW: the full O(NM) dynamic program with backtracking.

This implements Section 2.1.3 of the paper: the accumulation matrix ``D``
is filled bottom-up with

    D(i, j) = min(D(i-1, j), D(i, j-1), D(i-1, j-1)) + Delta(x_i, y_j)

and the optimal warp path is recovered by walking back from ``D(N, M)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from .._validation import as_series
from .distances import PointwiseDistance, get_pointwise_distance, pointwise_cost_matrix
from .path import WarpPath


@dataclass(frozen=True)
class DTWResult:
    """Result of a DTW computation.

    Attributes
    ----------
    distance:
        The DTW distance (total cost of the optimal warp path).
    path:
        The optimal warp path, or ``None`` if backtracking was not requested.
    cells_filled:
        Number of grid cells evaluated by the dynamic program.  For the
        full algorithm this is always ``N * M``; constrained variants fill
        fewer cells, and the ratio is the basis of the paper's "time gain".
    accumulated:
        The accumulated-cost matrix (``N x M``) if it was retained.
    """

    distance: float
    path: Optional[WarpPath] = None
    cells_filled: int = 0
    accumulated: Optional[np.ndarray] = None


def dtw(
    x: Union[Sequence[float], np.ndarray],
    y: Union[Sequence[float], np.ndarray],
    distance: Union[str, PointwiseDistance, None] = None,
    *,
    return_path: bool = True,
    keep_matrix: bool = False,
) -> DTWResult:
    """Compute the exact DTW distance (and optionally path) between two series.

    Parameters
    ----------
    x, y:
        The two time series.
    distance:
        Pointwise distance name or callable (default: absolute difference).
    return_path:
        If True (default), backtrack and return the optimal warp path.
    keep_matrix:
        If True, retain the full accumulated-cost matrix in the result.

    Returns
    -------
    DTWResult
    """
    xs = as_series(x, "x")
    ys = as_series(y, "y")
    cost = pointwise_cost_matrix(xs, ys, distance)
    n, m = cost.shape

    # Accumulated cost matrix with a sentinel row/column of +inf so the
    # recurrence needs no boundary special-casing.
    acc = np.full((n + 1, m + 1), np.inf)
    acc[0, 0] = 0.0
    for i in range(1, n + 1):
        row_cost = cost[i - 1]
        prev = acc[i - 1]
        curr = acc[i]
        for j in range(1, m + 1):
            best = prev[j - 1]
            if prev[j] < best:
                best = prev[j]
            if curr[j - 1] < best:
                best = curr[j - 1]
            curr[j] = best + row_cost[j - 1]

    result_distance = float(acc[n, m])
    path = _backtrack(acc, cost) if return_path else None
    accumulated = np.asarray(acc[1:, 1:]) if keep_matrix else None
    return DTWResult(
        distance=result_distance,
        path=path,
        cells_filled=n * m,
        accumulated=accumulated,
    )


def dtw_distance(
    x: Union[Sequence[float], np.ndarray],
    y: Union[Sequence[float], np.ndarray],
    distance: Union[str, PointwiseDistance, None] = None,
) -> float:
    """Return only the DTW distance, computed with a fast vectorised filler.

    The row-wise recurrence is vectorised with a cumulative-minimum trick
    along each row, which keeps the inner loop in numpy instead of Python.
    """
    xs = as_series(x, "x")
    ys = as_series(y, "y")
    func = get_pointwise_distance(distance)
    n, m = xs.size, ys.size

    prev = np.empty(m + 1)
    prev[:] = np.inf
    prev[0] = 0.0
    curr = np.empty(m + 1)
    for i in range(n):
        row_cost = func(xs[i], ys)
        curr[0] = np.inf
        # diag_or_up[j-1] = min(prev[j-1], prev[j]) for j = 1..m
        diag_or_up = np.minimum(prev[:-1], prev[1:])
        running = np.inf
        for j in range(1, m + 1):
            best = diag_or_up[j - 1]
            if running < best:
                best = running
            running = best + row_cost[j - 1]
            curr[j] = running
        prev, curr = curr, prev
    return float(prev[m])


def _backtrack(acc: np.ndarray, cost: np.ndarray) -> WarpPath:
    """Recover the optimal warp path from the padded accumulated matrix."""
    n, m = cost.shape
    i, j = n, m
    pairs = [(n - 1, m - 1)]
    while (i, j) != (1, 1):
        candidates = (
            (acc[i - 1, j - 1], i - 1, j - 1),
            (acc[i - 1, j], i - 1, j),
            (acc[i, j - 1], i, j - 1),
        )
        _, i, j = min(candidates, key=lambda item: item[0])
        pairs.append((i - 1, j - 1))
    pairs.reverse()
    return WarpPath(tuple(pairs))


def dtw_distance_matrix(
    series: Sequence[Union[Sequence[float], np.ndarray]],
    other: Optional[Sequence[Union[Sequence[float], np.ndarray]]] = None,
    distance: Union[str, PointwiseDistance, None] = None,
) -> np.ndarray:
    """Pairwise DTW distance matrix.

    With a single collection, computes the symmetric all-pairs matrix
    (exploiting symmetry so each pair is computed once).  With two
    collections, computes the full rectangular cross matrix.
    """
    left = [as_series(s, f"series[{k}]") for k, s in enumerate(series)]
    if other is None:
        size = len(left)
        out = np.zeros((size, size))
        for a in range(size):
            for b in range(a + 1, size):
                d = dtw_distance(left[a], left[b], distance)
                out[a, b] = d
                out[b, a] = d
        return out
    right = [as_series(s, f"other[{k}]") for k, s in enumerate(other)]
    out = np.zeros((len(left), len(right)))
    for a, xs in enumerate(left):
        for b, ys in enumerate(right):
            out[a, b] = dtw_distance(xs, ys, distance)
    return out
