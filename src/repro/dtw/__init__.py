"""Dynamic time warping substrate.

This subpackage contains the DTW machinery that the sDTW algorithms in
:mod:`repro.core` build on:

* :mod:`repro.dtw.distances` — pointwise element distances.
* :mod:`repro.dtw.path` — warp-path representation and validation.
* :mod:`repro.dtw.full` — the unconstrained O(NM) dynamic program.
* :mod:`repro.dtw.banded` — the dynamic program restricted to an arbitrary
  per-row window (the building block every constraint family shares).
* :mod:`repro.dtw.constraints` — classic global constraints
  (Sakoe–Chiba band, Itakura parallelogram).
* :mod:`repro.dtw.lower_bounds` — LB_Kim / LB_Keogh / LB_Yi lower bounds.
* :mod:`repro.dtw.fastdtw` — the multi-resolution FastDTW approximation
  (Salvador & Chan), included as a related-work baseline.
"""

from .banded import BandedDTWResult, banded_dtw, dtw_with_band
from .constraints import itakura_band, sakoe_chiba_band, full_band
from .distances import (
    absolute_distance,
    get_pointwise_distance,
    pointwise_cost_matrix,
    squared_distance,
)
from .fastdtw import fastdtw
from .full import DTWResult, dtw, dtw_distance, dtw_distance_matrix
from .lower_bounds import lb_keogh, lb_kim, lb_yi, keogh_envelope
from .path import WarpPath, is_valid_warp_path, path_cost

__all__ = [
    "BandedDTWResult",
    "DTWResult",
    "WarpPath",
    "absolute_distance",
    "banded_dtw",
    "dtw",
    "dtw_distance",
    "dtw_distance_matrix",
    "dtw_with_band",
    "fastdtw",
    "full_band",
    "get_pointwise_distance",
    "is_valid_warp_path",
    "itakura_band",
    "keogh_envelope",
    "lb_keogh",
    "lb_kim",
    "lb_yi",
    "path_cost",
    "pointwise_cost_matrix",
    "sakoe_chiba_band",
    "squared_distance",
]
