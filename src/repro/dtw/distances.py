"""Pointwise element distances used inside the DTW recurrences.

The paper defines DTW over an arbitrary element distance ``Delta``.  The
experiments use the absolute difference between scalar samples; squared
difference is provided as the other common choice, and a registry makes it
easy to plug in custom callables.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

import numpy as np

from .._validation import as_series
from ..exceptions import ValidationError

PointwiseDistance = Callable[[np.ndarray, np.ndarray], np.ndarray]


def absolute_distance(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Element-wise absolute difference ``|x - y|`` (broadcasting)."""
    return np.abs(np.asarray(x, dtype=float) - np.asarray(y, dtype=float))


def squared_distance(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Element-wise squared difference ``(x - y)**2`` (broadcasting)."""
    diff = np.asarray(x, dtype=float) - np.asarray(y, dtype=float)
    return diff * diff


_REGISTRY: Dict[str, PointwiseDistance] = {
    "absolute": absolute_distance,
    "manhattan": absolute_distance,
    "squared": squared_distance,
    "euclidean_squared": squared_distance,
}


def register_pointwise_distance(name: str, func: PointwiseDistance) -> None:
    """Register a custom pointwise distance under *name*.

    The callable must accept two broadcastable float arrays and return the
    element-wise distance array.
    """
    if not callable(func):
        raise ValidationError("pointwise distance must be callable")
    _REGISTRY[name.lower()] = func


def get_pointwise_distance(
    distance: Union[str, PointwiseDistance, None]
) -> PointwiseDistance:
    """Resolve *distance* to a callable.

    Parameters
    ----------
    distance:
        ``None`` (defaults to absolute difference), a registered name, or a
        callable which is returned unchanged.
    """
    if distance is None:
        return absolute_distance
    if callable(distance):
        return distance
    try:
        return _REGISTRY[str(distance).lower()]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise ValidationError(
            f"unknown pointwise distance {distance!r}; known distances: {known}"
        ) from exc


def pointwise_cost_matrix(
    x: np.ndarray,
    y: np.ndarray,
    distance: Union[str, PointwiseDistance, None] = None,
) -> np.ndarray:
    """Return the full ``N x M`` matrix of element distances between *x* and *y*.

    This is the ``Delta(x_i, y_j)`` term of the DTW recurrence materialised
    for every grid cell.  Used by the full DTW dynamic program and by tests
    that cross-check the banded implementations.
    """
    xs = as_series(x, "x")
    ys = as_series(y, "y")
    func = get_pointwise_distance(distance)
    return func(xs[:, np.newaxis], ys[np.newaxis, :])
