"""Lower bounds for DTW: LB_Kim, LB_Yi, and LB_Keogh.

These bounds (Keogh, "Exact indexing of dynamic time warping", VLDB 2002 —
reference [7] of the paper) are not part of the sDTW contribution but are
standard retrieval substrate: they let a k-NN search skip full DTW
computations whose lower bound already exceeds the current best.  They are
included so the retrieval package can demonstrate the classic pruning
pipeline next to the paper's constraint-based approach.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .._validation import as_series, check_int_at_least


def kim_profile(x: Union[Sequence[float], np.ndarray]) -> np.ndarray:
    """The LB_Kim feature quadruple ``[first, last, min, max]`` of a series.

    Profiles are a constant-size summary that can be precomputed once per
    stored series and compared in O(1) per pair (the engine's stage-1
    bound), or stacked into a ``(C, 4)`` matrix for
    :func:`lb_kim_batch`.
    """
    xs = as_series(x, "x")
    return np.array([xs[0], xs[-1], xs.min(), xs.max()], dtype=float)


def lb_kim(x: Union[Sequence[float], np.ndarray],
           y: Union[Sequence[float], np.ndarray]) -> float:
    """LB_Kim lower bound using the first/last/min/max feature quadruple.

    For the absolute-difference ground distance, the DTW distance is at
    least the largest of the four feature differences, because each of the
    four features must be matched by at least one path step.
    """
    xs = as_series(x, "x")
    ys = as_series(y, "y")
    features = (
        abs(xs[0] - ys[0]),
        abs(xs[-1] - ys[-1]),
        abs(xs.max() - ys.max()),
        abs(xs.min() - ys.min()),
    )
    return float(max(features))


def lb_kim_batch(query_profile: np.ndarray, profiles: np.ndarray) -> np.ndarray:
    """Vectorised LB_Kim of one query against ``C`` candidate profiles.

    Parameters
    ----------
    query_profile:
        The query's :func:`kim_profile` (shape ``(4,)``).
    profiles:
        Stacked candidate profiles, shape ``(C, 4)``.

    Returns
    -------
    numpy.ndarray
        ``(C,)`` array of bounds, identical to calling :func:`lb_kim` per
        pair.
    """
    query_profile = np.asarray(query_profile, dtype=float).reshape(1, 4)
    profiles = np.asarray(profiles, dtype=float)
    if profiles.ndim != 2 or profiles.shape[1] != 4:
        raise ValueError("profiles must have shape (C, 4)")
    return np.abs(profiles - query_profile).max(axis=1)


def lb_yi(x: Union[Sequence[float], np.ndarray],
          y: Union[Sequence[float], np.ndarray]) -> float:
    """LB_Yi lower bound: mass of one series outside the other's value range."""
    xs = as_series(x, "x")
    ys = as_series(y, "y")
    lo, hi = ys.min(), ys.max()
    above = xs[xs > hi] - hi
    below = lo - xs[xs < lo]
    return float(above.sum() + below.sum())


def keogh_envelope(
    y: Union[Sequence[float], np.ndarray], radius: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Upper and lower envelope of *y* under a Sakoe–Chiba band of *radius*.

    Returns
    -------
    (upper, lower):
        Arrays where ``upper[i] = max(y[i-r : i+r+1])`` and
        ``lower[i] = min(y[i-r : i+r+1])``.
    """
    ys = as_series(y, "y")
    radius = check_int_at_least(radius, 0, "radius")
    m = ys.size
    if radius >= m:
        # Global envelope: every window covers the whole series.  This is
        # the always-admissible envelope the batch engine uses for
        # constraints that are not contained in a Sakoe-Chiba band.
        return np.full(m, ys.max()), np.full(m, ys.min())
    # Sliding-window extrema via a padded strided view (the pad values are
    # the identity elements of max/min, so edge windows see only real data).
    width = 2 * radius + 1
    padded = np.full(m + 2 * radius, -np.inf)
    padded[radius: radius + m] = ys
    upper = sliding_window_view(padded, width).max(axis=1)
    padded = np.full(m + 2 * radius, np.inf)
    padded[radius: radius + m] = ys
    lower = sliding_window_view(padded, width).min(axis=1)
    return upper, lower


def lb_keogh(
    x: Union[Sequence[float], np.ndarray],
    y: Union[Sequence[float], np.ndarray],
    radius: int,
    envelope: Tuple[np.ndarray, np.ndarray] = None,
) -> float:
    """LB_Keogh lower bound of the DTW distance under a Sakoe–Chiba band.

    Parameters
    ----------
    x:
        Query series.
    y:
        Candidate series (its envelope is used).
    radius:
        Sakoe–Chiba radius in samples.
    envelope:
        Optional precomputed ``(upper, lower)`` envelope of *y*, as returned
        by :func:`keogh_envelope`, to amortise envelope construction across
        many queries.

    Notes
    -----
    The bound requires equal-length series; unequal lengths are compared
    over the common prefix, which keeps the bound admissible for the
    absolute-difference ground distance.
    """
    xs = as_series(x, "x")
    ys = as_series(y, "y")
    if envelope is None:
        upper, lower = keogh_envelope(ys, radius)
    else:
        upper, lower = envelope
        upper = np.asarray(upper, dtype=float)
        lower = np.asarray(lower, dtype=float)
    length = min(xs.size, upper.size)
    xs = xs[:length]
    upper = upper[:length]
    lower = lower[:length]
    above = np.where(xs > upper, xs - upper, 0.0)
    below = np.where(xs < lower, lower - xs, 0.0)
    return float(np.sum(above + below))


def lb_keogh_batch(
    x: Union[Sequence[float], np.ndarray],
    uppers: np.ndarray,
    lowers: np.ndarray,
) -> np.ndarray:
    """Vectorised LB_Keogh of one query against ``C`` stacked envelopes.

    Parameters
    ----------
    x:
        The query series (length L).
    uppers, lowers:
        Candidate envelopes stacked into ``(C, L)`` matrices (equal-length
        collections only; see :func:`keogh_envelope`).

    Returns
    -------
    numpy.ndarray
        ``(C,)`` array of bounds, identical to calling :func:`lb_keogh`
        per pair with the same envelopes (the reductions run over the same
        contiguous axis, so the floating-point results match bit for bit).
    """
    xs = as_series(x, "x")
    uppers = np.asarray(uppers, dtype=float)
    lowers = np.asarray(lowers, dtype=float)
    if uppers.ndim != 2 or uppers.shape != lowers.shape:
        raise ValueError("uppers and lowers must be equal-shaped (C, L) matrices")
    if uppers.shape[1] != xs.size:
        raise ValueError(
            f"query length {xs.size} does not match envelope length "
            f"{uppers.shape[1]}"
        )
    row = xs[np.newaxis, :]
    above = np.where(row > uppers, row - uppers, 0.0)
    below = np.where(row < lowers, lowers - row, 0.0)
    return np.sum(above + below, axis=1)
