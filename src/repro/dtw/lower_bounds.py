"""Lower bounds for DTW: LB_Kim, LB_Yi, and LB_Keogh.

These bounds (Keogh, "Exact indexing of dynamic time warping", VLDB 2002 —
reference [7] of the paper) are not part of the sDTW contribution but are
standard retrieval substrate: they let a k-NN search skip full DTW
computations whose lower bound already exceeds the current best.  They are
included so the retrieval package can demonstrate the classic pruning
pipeline next to the paper's constraint-based approach.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from .._validation import as_series, check_int_at_least


def lb_kim(x: Union[Sequence[float], np.ndarray],
           y: Union[Sequence[float], np.ndarray]) -> float:
    """LB_Kim lower bound using the first/last/min/max feature quadruple.

    For the absolute-difference ground distance, the DTW distance is at
    least the largest of the four feature differences, because each of the
    four features must be matched by at least one path step.
    """
    xs = as_series(x, "x")
    ys = as_series(y, "y")
    features = (
        abs(xs[0] - ys[0]),
        abs(xs[-1] - ys[-1]),
        abs(xs.max() - ys.max()),
        abs(xs.min() - ys.min()),
    )
    return float(max(features))


def lb_yi(x: Union[Sequence[float], np.ndarray],
          y: Union[Sequence[float], np.ndarray]) -> float:
    """LB_Yi lower bound: mass of one series outside the other's value range."""
    xs = as_series(x, "x")
    ys = as_series(y, "y")
    lo, hi = ys.min(), ys.max()
    above = xs[xs > hi] - hi
    below = lo - xs[xs < lo]
    return float(above.sum() + below.sum())


def keogh_envelope(
    y: Union[Sequence[float], np.ndarray], radius: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Upper and lower envelope of *y* under a Sakoe–Chiba band of *radius*.

    Returns
    -------
    (upper, lower):
        Arrays where ``upper[i] = max(y[i-r : i+r+1])`` and
        ``lower[i] = min(y[i-r : i+r+1])``.
    """
    ys = as_series(y, "y")
    radius = check_int_at_least(radius, 0, "radius")
    m = ys.size
    upper = np.empty(m)
    lower = np.empty(m)
    for i in range(m):
        lo = max(0, i - radius)
        hi = min(m, i + radius + 1)
        window = ys[lo:hi]
        upper[i] = window.max()
        lower[i] = window.min()
    return upper, lower


def lb_keogh(
    x: Union[Sequence[float], np.ndarray],
    y: Union[Sequence[float], np.ndarray],
    radius: int,
    envelope: Tuple[np.ndarray, np.ndarray] = None,
) -> float:
    """LB_Keogh lower bound of the DTW distance under a Sakoe–Chiba band.

    Parameters
    ----------
    x:
        Query series.
    y:
        Candidate series (its envelope is used).
    radius:
        Sakoe–Chiba radius in samples.
    envelope:
        Optional precomputed ``(upper, lower)`` envelope of *y*, as returned
        by :func:`keogh_envelope`, to amortise envelope construction across
        many queries.

    Notes
    -----
    The bound requires equal-length series; unequal lengths are compared
    over the common prefix, which keeps the bound admissible for the
    absolute-difference ground distance.
    """
    xs = as_series(x, "x")
    ys = as_series(y, "y")
    if envelope is None:
        upper, lower = keogh_envelope(ys, radius)
    else:
        upper, lower = envelope
        upper = np.asarray(upper, dtype=float)
        lower = np.asarray(lower, dtype=float)
    length = min(xs.size, upper.size)
    xs = xs[:length]
    upper = upper[:length]
    lower = lower[:length]
    above = np.where(xs > upper, xs - upper, 0.0)
    below = np.where(xs < lower, lower - xs, 0.0)
    return float(np.sum(above + below))
