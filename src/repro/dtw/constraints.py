"""Classic global DTW constraints: Sakoe–Chiba band and Itakura parallelogram.

These are the "fixed core & fixed width" style baselines of the paper
(Figure 2(b) and 2(c)).  Both are expressed as per-row windows compatible
with :func:`repro.dtw.banded.banded_dtw`.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .._validation import check_int_at_least, check_positive
from ..exceptions import ValidationError
from .banded import validate_band


def full_band(n: int, m: int) -> np.ndarray:
    """The unconstrained band covering the whole grid (every cell allowed)."""
    n = check_int_at_least(n, 1, "n")
    m = check_int_at_least(m, 1, "m")
    band = np.zeros((n, 2), dtype=int)
    band[:, 1] = m - 1
    return band


def sakoe_chiba_band(n: int, m: int, radius: Union[int, float]) -> np.ndarray:
    """Sakoe–Chiba band of the given radius around the (resampled) diagonal.

    Parameters
    ----------
    n, m:
        Lengths of the two series.
    radius:
        If an ``int``, the half-width of the band measured in grid cells.
        If a ``float`` in (0, 1], the half-width as a fraction of ``m``
        (the paper's "w%" parameterisation: each point of the first series
        is compared to roughly ``w%`` of the points of the second).

    Returns
    -------
    numpy.ndarray
        Band of shape ``(n, 2)``.
    """
    n = check_int_at_least(n, 1, "n")
    m = check_int_at_least(m, 1, "m")
    if isinstance(radius, float) and 0 < radius <= 1:
        half = max(1, int(round(radius * m / 2.0)))
    else:
        half = int(radius)
        if half < 0:
            raise ValidationError(f"radius must be non-negative, got {radius}")
    band = np.zeros((n, 2), dtype=int)
    if n == 1:
        band[0] = (0, m - 1)
        return band
    for i in range(n):
        # Project row i onto the diagonal of the (possibly rectangular) grid.
        center = i * (m - 1) / (n - 1)
        lo = int(np.floor(center - half))
        hi = int(np.ceil(center + half))
        band[i] = (max(0, lo), min(m - 1, hi))
    return validate_band(band, n, m, repair=True)


def sakoe_chiba_band_fraction(n: int, m: int, width_fraction: float) -> np.ndarray:
    """Sakoe–Chiba band where each point sees ``width_fraction`` of the other series.

    This matches the paper's parameterisation (w = 6%, 10%, 20%): for each
    point ``x_i`` the window covers about ``width_fraction * m`` columns.
    """
    width_fraction = check_positive(width_fraction, "width_fraction")
    if width_fraction > 1:
        raise ValidationError("width_fraction must be <= 1")
    half = max(1, int(round(width_fraction * m / 2.0)))
    return sakoe_chiba_band(n, m, half)


def itakura_band(n: int, m: int, max_slope: float = 2.0) -> np.ndarray:
    """Itakura parallelogram constraint expressed as a per-row window.

    The warp path is restricted so that its local slope stays between
    ``1 / max_slope`` and ``max_slope``; the feasible region is the
    intersection of the two cones anchored at the start and end corners.

    Parameters
    ----------
    n, m:
        Lengths of the two series.
    max_slope:
        Maximum admissible slope (> 1).  Larger values widen the band.
    """
    n = check_int_at_least(n, 1, "n")
    m = check_int_at_least(m, 1, "m")
    max_slope = check_positive(max_slope, "max_slope")
    if max_slope <= 1.0:
        raise ValidationError("max_slope must be greater than 1")
    min_slope = 1.0 / max_slope

    band = np.zeros((n, 2), dtype=int)
    if n == 1:
        band[0] = (0, m - 1)
        return band
    scale = (m - 1) / (n - 1) if n > 1 else 1.0
    for i in range(n):
        # Cone from the start corner (0, 0).
        lo_start = min_slope * scale * i
        hi_start = max_slope * scale * i
        # Cone from the end corner (n-1, m-1), walking backwards.
        remaining = (n - 1) - i
        lo_end = (m - 1) - max_slope * scale * remaining
        hi_end = (m - 1) - min_slope * scale * remaining
        lo = max(lo_start, lo_end)
        hi = min(hi_start, hi_end)
        if lo > hi:
            mid = (lo + hi) / 2.0
            lo = hi = mid
        band[i] = (int(np.floor(lo)), int(np.ceil(hi)))
    band[:, 0] = np.clip(band[:, 0], 0, m - 1)
    band[:, 1] = np.clip(band[:, 1], 0, m - 1)
    return validate_band(band, n, m, repair=True)
