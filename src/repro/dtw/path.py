"""Warp-path representation and utilities.

A warp path ``W = (w_1, ..., w_K)`` aligns two series ``X`` (length N) and
``Y`` (length M).  Following Section 2.1.1 of the paper, a valid warp path

* starts at ``(0, 0)`` and ends at ``(N - 1, M - 1)`` (0-based indices),
* advances by one of ``(1, 0)``, ``(0, 1)`` or ``(1, 1)`` at every step,
* therefore has ``max(N, M) <= K <= N + M`` elements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple, Union

import numpy as np

from .._validation import as_series
from ..exceptions import ValidationError
from .distances import PointwiseDistance, get_pointwise_distance

Step = Tuple[int, int]

_ALLOWED_STEPS = {(1, 0), (0, 1), (1, 1)}


@dataclass(frozen=True)
class WarpPath:
    """An immutable warp path between two series.

    Attributes
    ----------
    pairs:
        Tuple of ``(i, j)`` index pairs, 0-based, ordered from ``(0, 0)`` to
        ``(N - 1, M - 1)``.
    """

    pairs: Tuple[Step, ...]

    def __post_init__(self) -> None:
        if not self.pairs:
            raise ValidationError("a warp path must contain at least one pair")

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    def __getitem__(self, index):
        return self.pairs[index]

    @property
    def n(self) -> int:
        """Length of the first series implied by the path."""
        return self.pairs[-1][0] + 1

    @property
    def m(self) -> int:
        """Length of the second series implied by the path."""
        return self.pairs[-1][1] + 1

    def is_valid(self) -> bool:
        """Check boundary and step constraints for this path."""
        return is_valid_warp_path(self.pairs)

    def cost(
        self,
        x: Union[Sequence[float], np.ndarray],
        y: Union[Sequence[float], np.ndarray],
        distance: Union[str, PointwiseDistance, None] = None,
    ) -> float:
        """Total alignment cost of the path over series *x* and *y*."""
        return path_cost(self.pairs, x, y, distance)

    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the path as two parallel integer index arrays ``(I, J)``."""
        arr = np.asarray(self.pairs, dtype=int)
        return arr[:, 0], arr[:, 1]

    def expansion_of(self, other: "WarpPath") -> bool:
        """True if every pair of *other* appears in this path (refinement check)."""
        mine = set(self.pairs)
        return all(pair in mine for pair in other.pairs)


def is_valid_warp_path(pairs: Iterable[Step], n: int = None, m: int = None) -> bool:
    """Return True if *pairs* forms a valid warp path.

    If *n* and *m* are given, the path must end exactly at
    ``(n - 1, m - 1)``; otherwise the end point is taken as given.
    """
    pairs = list(pairs)
    if not pairs:
        return False
    if tuple(pairs[0]) != (0, 0):
        return False
    if n is not None and m is not None and tuple(pairs[-1]) != (n - 1, m - 1):
        return False
    for prev, curr in zip(pairs, pairs[1:]):
        step = (curr[0] - prev[0], curr[1] - prev[1])
        if step not in _ALLOWED_STEPS:
            return False
    end = pairs[-1]
    k = len(pairs)
    if not max(end[0] + 1, end[1] + 1) <= k <= (end[0] + 1) + (end[1] + 1):
        return False
    return True


def path_cost(
    pairs: Iterable[Step],
    x: Union[Sequence[float], np.ndarray],
    y: Union[Sequence[float], np.ndarray],
    distance: Union[str, PointwiseDistance, None] = None,
) -> float:
    """Sum of pointwise distances along a warp path.

    Equivalent to ``Delta(W)`` in Section 2.1.2 of the paper.
    """
    xs = as_series(x, "x")
    ys = as_series(y, "y")
    func = get_pointwise_distance(distance)
    pair_list = list(pairs)
    if not pair_list:
        raise ValidationError("warp path must contain at least one pair")
    arr = np.asarray(pair_list, dtype=int)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValidationError("warp path pairs must be (i, j) tuples")
    if arr[:, 0].max() >= xs.size or arr[:, 1].max() >= ys.size:
        raise ValidationError("warp path index exceeds series length")
    if arr.min() < 0:
        raise ValidationError("warp path contains negative indices")
    return float(np.sum(func(xs[arr[:, 0]], ys[arr[:, 1]])))


def path_from_arrays(i_indices: Sequence[int], j_indices: Sequence[int]) -> WarpPath:
    """Construct a :class:`WarpPath` from two parallel index sequences."""
    i_arr = list(int(v) for v in i_indices)
    j_arr = list(int(v) for v in j_indices)
    if len(i_arr) != len(j_arr):
        raise ValidationError("index sequences must have equal length")
    return WarpPath(tuple(zip(i_arr, j_arr)))


def path_to_alignment(path: WarpPath) -> Tuple[List[List[int]], List[List[int]]]:
    """Return, for each element of X the matched indices of Y, and vice versa.

    Useful for visualising which stretch of one series each element of the
    other maps onto (the intuition in Figure 2(a) of the paper).
    """
    x_to_y: List[List[int]] = [[] for _ in range(path.n)]
    y_to_x: List[List[int]] = [[] for _ in range(path.m)]
    for i, j in path:
        x_to_y[i].append(j)
        y_to_x[j].append(i)
    return x_to_y, y_to_x
