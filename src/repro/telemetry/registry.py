"""Thread-safe metrics registry: counters, gauges, and latency histograms.

The registry is the aggregation half of the telemetry layer (the other
half, per-query traces, lives in :mod:`repro.telemetry.trace`).  It is
deliberately dependency-free: Prometheus text exposition is rendered by
hand so the package works in the same no-network container the rest of
the reproduction targets.

Design notes
------------
* Metric *families* are created through :class:`MetricsRegistry`
  (``counter`` / ``gauge`` / ``histogram``) and are get-or-create: asking
  for an existing name returns the existing family, and asking with a
  conflicting type or label schema raises ``ValidationError``.
* A family with labels hands out *children* via ``labels(...)``; a
  family without labels acts directly as its single child.  Children are
  cached, so hot paths can pre-bind them once (e.g. the candidate-cache
  hit/miss counters in :class:`repro.indexing.searcher.IndexedSearcher`)
  and pay only one small lock per update.
* Histograms use fixed bucket edges (exponential latency buckets by
  default) and estimate quantiles by linear interpolation inside the
  bucket that contains the target rank — the same estimator Prometheus'
  ``histogram_quantile`` applies server-side.
* When telemetry is disabled the code paths hold the
  :data:`NULL_REGISTRY` singleton instead; every operation on it is a
  constant-time no-op, so the enabled/disabled decision is made once at
  workspace construction and never re-checked per sample.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ValidationError

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
]

# Exponential-ish latency edges from 0.1 ms to 10 s: fine enough to
# resolve micro-batched query latencies, coarse enough that a histogram
# child is ~20 machine words.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

# Power-of-two edges for count-valued distributions (batch sizes etc.).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1.0,
    2.0,
    4.0,
    8.0,
    16.0,
    32.0,
    64.0,
    128.0,
    256.0,
)

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_suffix(label_names: Sequence[str], label_values: Sequence[str]) -> str:
    if not label_names:
        return ""
    parts = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(label_names, label_values)
    ]
    return "{" + ",".join(parts) + "}"


def _label_key(label_names: Sequence[str], label_values: Sequence[str]) -> str:
    """Stable dict key for ``to_dict`` output (empty string when unlabelled)."""
    if not label_names:
        return ""
    return ",".join(
        f"{name}={value}" for name, value in zip(label_names, label_values)
    )


class _CounterChild:
    """Monotonic float counter; one lock per child keeps contention local."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValidationError("counters can only increase; use a gauge instead")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _GaugeChild:
    """Free-floating value with set/inc/dec semantics."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _HistogramChild:
    """Fixed-bucket histogram with Prometheus ``le`` (≤) semantics."""

    __slots__ = ("_lock", "_edges", "_counts", "_sum")

    def __init__(self, edges: Tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._edges = edges
        # One slot per finite edge plus the +Inf overflow bucket.
        self._counts = [0] * (len(edges) + 1)
        self._sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self._edges, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    @property
    def count(self) -> int:
        with self._lock:
            return sum(self._counts)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> Tuple[List[int], float]:
        with self._lock:
            return list(self._counts), self._sum

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) of observed values.

        Linear interpolation inside the containing bucket, matching the
        estimator of PromQL's ``histogram_quantile``.  Values in the
        overflow bucket clamp to the largest finite edge.  Returns 0.0
        when the histogram is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile must be in [0, 1], got {q}")
        counts, _ = self.snapshot()
        total = sum(counts)
        if total == 0:
            return 0.0
        target = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self._edges[index - 1] if index > 0 else 0.0
                if index >= len(self._edges):
                    # Overflow bucket: no finite upper edge to interpolate
                    # toward, so report the largest finite edge.
                    return self._edges[-1]
                upper = self._edges[index]
                fraction = (target - cumulative) / bucket_count
                return lower + max(0.0, min(1.0, fraction)) * (upper - lower)
            cumulative += bucket_count
        return self._edges[-1]


class _MetricFamily:
    """Base for a named metric plus its labelled children."""

    kind = "untyped"
    _child_type = _CounterChild

    def __init__(self, name: str, help_text: str, label_names: Tuple[str, ...]) -> None:
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        if not label_names:
            # Eagerly materialise the single child so unlabelled metrics
            # render as explicit zeros even before the first update.
            self._children[()] = self._make_child()

    def _make_child(self):
        return self._child_type()

    def labels(self, **labels: object):
        try:
            key = tuple(str(labels[name]) for name in self.label_names)
        except KeyError as exc:
            raise ValidationError(
                f"metric {self.name!r} requires labels {list(self.label_names)}"
            ) from exc
        if len(labels) != len(self.label_names):
            extras = sorted(set(labels) - set(self.label_names))
            raise ValidationError(
                f"metric {self.name!r} got unexpected labels {extras}"
            )
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
        return child

    def _sole_child(self):
        if self.label_names:
            raise ValidationError(
                f"metric {self.name!r} is labelled; call .labels(...) first"
            )
        return self._children[()]

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())


class _CounterFamily(_MetricFamily):
    kind = "counter"
    _child_type = _CounterChild

    def inc(self, amount: float = 1.0) -> None:
        self._sole_child().inc(amount)

    @property
    def value(self) -> float:
        return self._sole_child().value


class _GaugeFamily(_MetricFamily):
    kind = "gauge"
    _child_type = _GaugeChild

    def set(self, value: float) -> None:
        self._sole_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._sole_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._sole_child().dec(amount)

    @property
    def value(self) -> float:
        return self._sole_child().value


class _HistogramFamily(_MetricFamily):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Tuple[str, ...],
        buckets: Tuple[float, ...],
    ) -> None:
        self.buckets = buckets
        super().__init__(name, help_text, label_names)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._sole_child().observe(value)

    def quantile(self, q: float) -> float:
        return self._sole_child().quantile(q)

    @property
    def count(self) -> int:
        return self._sole_child().count

    @property
    def sum(self) -> float:
        return self._sole_child().sum


def _validate_buckets(buckets: Sequence[float]) -> Tuple[float, ...]:
    edges = tuple(float(edge) for edge in buckets)
    if not edges:
        raise ValidationError("histogram needs at least one bucket edge")
    if any(not math.isfinite(edge) for edge in edges):
        raise ValidationError("histogram bucket edges must be finite")
    if any(b <= a for a, b in zip(edges, edges[1:])):
        raise ValidationError("histogram bucket edges must be strictly increasing")
    return edges


class MetricsRegistry:
    """Process-local registry of counters, gauges, and histograms.

    Families are get-or-create by name; re-registering with a different
    type or label schema raises ``ValidationError`` so two code paths
    cannot silently write incompatible series under one name.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _MetricFamily] = {}

    # -- registration -----------------------------------------------------

    def _get_or_create(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str],
        factory,
        kind: str,
    ):
        if not _METRIC_NAME_RE.match(name):
            raise ValidationError(f"invalid metric name {name!r}")
        label_names = tuple(labels)
        for label in label_names:
            if not _LABEL_NAME_RE.match(label):
                raise ValidationError(f"invalid label name {label!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = factory(label_names)
                self._families[name] = family
                return family
        if family.kind != kind:
            raise ValidationError(
                f"metric {name!r} already registered as {family.kind}, not {kind}"
            )
        if family.label_names != label_names:
            raise ValidationError(
                f"metric {name!r} already registered with labels "
                f"{list(family.label_names)}, not {list(label_names)}"
            )
        return family

    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> _CounterFamily:
        return self._get_or_create(
            name,
            help_text,
            labels,
            lambda names: _CounterFamily(name, help_text, names),
            "counter",
        )

    def gauge(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> _GaugeFamily:
        return self._get_or_create(
            name,
            help_text,
            labels,
            lambda names: _GaugeFamily(name, help_text, names),
            "gauge",
        )

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> _HistogramFamily:
        edges = _validate_buckets(
            buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS
        )
        family = self._get_or_create(
            name,
            help_text,
            labels,
            lambda names: _HistogramFamily(name, help_text, names, edges),
            "histogram",
        )
        if family.buckets != edges:
            raise ValidationError(
                f"histogram {name!r} already registered with different buckets"
            )
        return family

    # -- export -----------------------------------------------------------

    def _sorted_families(self) -> List[_MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def to_dict(self) -> dict:
        """Structured JSON-friendly snapshot of every registered metric.

        Histograms include estimated p50/p95/p99 alongside the raw
        cumulative bucket counts so callers do not have to re-derive
        quantiles client-side.
        """
        counters: Dict[str, dict] = {}
        gauges: Dict[str, dict] = {}
        histograms: Dict[str, dict] = {}
        for family in self._sorted_families():
            if family.kind == "counter":
                counters[family.name] = {
                    "help": family.help,
                    "labels": list(family.label_names),
                    "values": {
                        _label_key(family.label_names, key): child.value
                        for key, child in family.children()
                    },
                }
            elif family.kind == "gauge":
                gauges[family.name] = {
                    "help": family.help,
                    "labels": list(family.label_names),
                    "values": {
                        _label_key(family.label_names, key): child.value
                        for key, child in family.children()
                    },
                }
            else:
                series: Dict[str, dict] = {}
                for key, child in family.children():
                    counts, total_sum = child.snapshot()
                    cumulative = 0
                    buckets: Dict[str, int] = {}
                    for edge, bucket_count in zip(family.buckets, counts):
                        cumulative += bucket_count
                        buckets[_format_value(edge)] = cumulative
                    cumulative += counts[-1]
                    buckets["+Inf"] = cumulative
                    series[_label_key(family.label_names, key)] = {
                        "count": cumulative,
                        "sum": total_sum,
                        "p50": child.quantile(0.50),
                        "p95": child.quantile(0.95),
                        "p99": child.quantile(0.99),
                        "buckets": buckets,
                    }
                histograms[family.name] = {
                    "help": family.help,
                    "labels": list(family.label_names),
                    "series": series,
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def render_prometheus(self) -> str:
        """Render the registry in Prometheus text exposition format 0.0.4."""
        lines: List[str] = []
        for family in self._sorted_families():
            if family.help:
                lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            if family.kind in ("counter", "gauge"):
                for key, child in family.children():
                    suffix = _label_suffix(family.label_names, key)
                    lines.append(
                        f"{family.name}{suffix} {_format_value(child.value)}"
                    )
            else:
                for key, child in family.children():
                    counts, total_sum = child.snapshot()
                    cumulative = 0
                    for edge, bucket_count in zip(family.buckets, counts):
                        cumulative += bucket_count
                        le_suffix = _label_suffix(
                            family.label_names + ("le",),
                            key + (_format_value(edge),),
                        )
                        lines.append(f"{family.name}_bucket{le_suffix} {cumulative}")
                    cumulative += counts[-1]
                    inf_suffix = _label_suffix(
                        family.label_names + ("le",), key + ("+Inf",)
                    )
                    lines.append(f"{family.name}_bucket{inf_suffix} {cumulative}")
                    plain_suffix = _label_suffix(family.label_names, key)
                    lines.append(
                        f"{family.name}_sum{plain_suffix} {_format_value(total_sum)}"
                    )
                    lines.append(f"{family.name}_count{plain_suffix} {cumulative}")
        return "\n".join(lines) + "\n" if lines else ""


class _NullChild:
    """Accepts every metric operation and does nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def labels(self, **labels: object) -> "_NullChild":
        return self

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0


_NULL_CHILD = _NullChild()


class NullMetricsRegistry(MetricsRegistry):
    """Disabled-telemetry stand-in: every family it returns is a no-op.

    Code holds a reference to either a real :class:`MetricsRegistry` or
    this singleton, decided once (``ServingConfig.telemetry``); hot
    paths then call ``inc``/``observe`` unconditionally and pay only an
    empty method call when telemetry is off.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name, help_text="", labels=()):  # type: ignore[override]
        return _NULL_CHILD

    def gauge(self, name, help_text="", labels=()):  # type: ignore[override]
        return _NULL_CHILD

    def histogram(self, name, help_text="", labels=(), buckets=None):  # type: ignore[override]
        return _NULL_CHILD

    def to_dict(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def render_prometheus(self) -> str:
        return ""


NULL_REGISTRY = NullMetricsRegistry()
