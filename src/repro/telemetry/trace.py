"""Per-query trace spans and the sampled ring of recent traces.

A :class:`QueryTrace` is a flat list of named stages with wall-clock
seconds and free-form numeric/str attributes (candidate counts, prune
rates, cache hits).  Traces are assembled by ``Workspace.query`` from
the cascade accounting :class:`repro.engine.stats.EngineStats` already
records — stages are *not* re-timed, so tracing adds no timers to the
inner loops.

Layers that run below the workspace (the indexed searcher's candidate
generation, for example) attach their sub-stages to the active trace
through a thread-local set by :func:`trace_scope`; when no trace is
active those calls are a single ``getattr`` returning ``None``.

``QueryTrace.finish`` closes the trace against the measured end-to-end
wall time and appends a residual ``other`` stage covering whatever the
named stages did not (snapshot pinning, micro-batch companions, result
remapping), so ``sum(stage.seconds) == total_seconds`` holds exactly
and per-stage breakdowns are honest rather than merely approximate.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = [
    "QueryTrace",
    "TraceRing",
    "TraceStage",
    "current_trace",
    "trace_scope",
]


@dataclass
class TraceStage:
    """One named span inside a query: wall seconds plus free attributes."""

    name: str
    seconds: float
    attributes: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = {"name": self.name, "seconds": self.seconds}
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceStage":
        return cls(
            name=str(payload["name"]),
            seconds=float(payload["seconds"]),
            attributes=dict(payload.get("attributes") or {}),
        )


@dataclass
class QueryTrace:
    """Structured per-query breakdown exposed on ``WorkspaceQueryResult``.

    Mutable by design: the workspace creates it, lower layers append
    stages while it is active (see :func:`trace_scope`), and
    :meth:`finish` seals it with the measured total.
    """

    mode: str = ""
    requested_mode: str = ""
    k: int = 0
    collection_size: int = 0
    candidates_generated: int = 0
    stages: List[TraceStage] = field(default_factory=list)
    total_seconds: float = 0.0
    attributes: Dict[str, object] = field(default_factory=dict)

    def add_stage(self, name: str, seconds: float, **attributes: object) -> TraceStage:
        stage = TraceStage(name, max(0.0, float(seconds)), dict(attributes))
        self.stages.append(stage)
        return stage

    def stage_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    def finish(self, total_seconds: float) -> None:
        """Seal the trace: record the end-to-end wall time and account
        for it fully by appending a residual ``other`` stage."""
        self.total_seconds = float(total_seconds)
        residual = self.total_seconds - self.stage_seconds()
        if residual > 0.0:
            self.add_stage("other", residual)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "requested_mode": self.requested_mode,
            "k": self.k,
            "collection_size": self.collection_size,
            "candidates_generated": self.candidates_generated,
            "total_seconds": self.total_seconds,
            "stages": [stage.to_dict() for stage in self.stages],
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryTrace":
        """Rebuild a sealed trace from its :meth:`to_dict` payload.

        Part of the query-result wire schema: the server serializes the
        trace with the result and remote clients get the same object
        shape local callers do.  The rebuilt trace is already finished —
        callers must not :meth:`finish` it again.
        """
        return cls(
            mode=str(payload.get("mode", "")),
            requested_mode=str(payload.get("requested_mode", "")),
            k=int(payload.get("k", 0)),
            collection_size=int(payload.get("collection_size", 0)),
            candidates_generated=int(payload.get("candidates_generated", 0)),
            stages=[
                TraceStage.from_dict(stage)
                for stage in payload.get("stages") or ()
            ],
            total_seconds=float(payload.get("total_seconds", 0.0)),
            attributes=dict(payload.get("attributes") or {}),
        )


class TraceRing:
    """Thread-safe fixed-capacity ring of the most recent query traces."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"trace ring capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=capacity) if capacity else deque(maxlen=0)

    def append(self, trace: QueryTrace) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._ring.append(trace)

    def snapshot(self) -> List[QueryTrace]:
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


_active = threading.local()


def current_trace() -> Optional[QueryTrace]:
    """The trace active on this thread, or ``None`` outside a query."""
    return getattr(_active, "trace", None)


@contextmanager
def trace_scope(trace: Optional[QueryTrace]) -> Iterator[Optional[QueryTrace]]:
    """Make ``trace`` the thread's active trace for the duration.

    Accepts ``None`` (telemetry disabled) so callers can wrap the query
    unconditionally; nesting restores the previous trace on exit.
    """
    previous = getattr(_active, "trace", None)
    _active.trace = trace
    try:
        yield trace
    finally:
        _active.trace = previous
