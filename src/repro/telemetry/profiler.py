"""Stdlib-only wall-clock sampling profiler.

A background thread wakes every ``interval_seconds``, reads the stack
of every (or one selected) interpreter thread through
``sys._current_frames()`` and accumulates the frames as collapsed
stacks — the ``a;b;c count`` text format consumed by flame-graph
tooling.  Nothing is instrumented and no dependency is imported: the
profiled code runs unmodified, paying only for the GIL handoffs the
sampler's reads force.  At the default 5 ms interval that overhead is
well under 10% on the CPU-bound DP paths this library cares about
(documented and asserted by ``tests/test_diagnostics.py``).

This is a *statistical wall-clock* profiler: a frame's sample count is
proportional to the wall time its thread spent inside it (sleeping or
computing alike).  That is exactly the operator question for a slow
query — "where did the time go" — and complements the deterministic
per-stage accounting of :class:`repro.telemetry.trace.QueryTrace`,
which knows the *stages* but not the Python frames inside them.

Surfaces: ``repro workspace query --profile`` attaches a profiler to a
single query batch; ``repro workspace profile`` records a whole replay
window; both print collapsed stacks plus a self-time table.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ProfileReport", "SamplingProfiler"]


def _frame_label(code) -> str:
    """``path/inside/package.py:function`` with the path shortened.

    Paths inside this package are cut at the last ``repro/`` component
    so collapsed stacks read as ``repro/dtw/banded.py:banded_sdtw``
    wherever the tree is installed; foreign frames keep their basename.
    """
    filename = code.co_filename.replace("\\", "/")
    marker = filename.rfind("/repro/")
    if marker >= 0:
        short = filename[marker + 1:]
    else:
        short = filename.rsplit("/", 1)[-1]
    return f"{short}:{code.co_name}"


@dataclass
class ProfileReport:
    """Accumulated samples of one profiling window.

    ``stacks`` maps root-first frame tuples to sample counts; one
    sample is one observation of one thread, so with a single profiled
    thread ``num_samples`` approximates ``duration / interval``.
    """

    stacks: Dict[Tuple[str, ...], int] = field(default_factory=dict)
    num_samples: int = 0
    duration_seconds: float = 0.0
    interval_seconds: float = 0.0
    sampler_seconds: float = 0.0

    @property
    def sampler_overhead(self) -> float:
        """Fraction of the window the sampler itself was on-CPU."""
        if self.duration_seconds <= 0.0:
            return 0.0
        return self.sampler_seconds / self.duration_seconds

    def collapsed(self) -> str:
        """The stacks in collapsed (``a;b;c count``) text form,
        heaviest first — paste straight into flame-graph tooling."""
        lines = [
            f"{';'.join(stack)} {count}"
            for stack, count in sorted(
                self.stacks.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        return "\n".join(lines)

    def self_seconds(self) -> List[Tuple[str, int]]:
        """Per-frame *self* sample counts (leaf frames only), heaviest
        first — the "where is the CPU actually spinning" table."""
        totals: Dict[str, int] = {}
        for stack, count in self.stacks.items():
            if stack:
                totals[stack[-1]] = totals.get(stack[-1], 0) + count
        return sorted(totals.items(), key=lambda item: (-item[1], item[0]))

    def fraction_matching(self, *needles: str) -> float:
        """Fraction of samples whose stack contains any *needle*.

        The acceptance probe for attribution claims ("≥ 80% of a
        CPU-bound exact query lands in engine/DP frames") — a sample
        matches when any frame label contains any of the substrings.
        """
        if not self.num_samples:
            return 0.0
        matched = sum(
            count
            for stack, count in self.stacks.items()
            if any(needle in frame for frame in stack for needle in needles)
        )
        return matched / self.num_samples

    def to_dict(self) -> dict:
        return {
            "num_samples": self.num_samples,
            "duration_seconds": self.duration_seconds,
            "interval_seconds": self.interval_seconds,
            "sampler_seconds": self.sampler_seconds,
            "stacks": {
                ";".join(stack): count for stack, count in self.stacks.items()
            },
        }


class SamplingProfiler:
    """Background wall-clock sampler over ``sys._current_frames()``.

    Parameters
    ----------
    interval_seconds:
        Target time between samples (default 5 ms, ~200 Hz).  Shorter
        intervals sharpen attribution at proportionally higher GIL
        overhead.
    threads:
        Thread idents to sample (default: every thread except the
        sampler itself).  Pass ``[threading.get_ident()]`` before
        starting to profile only the calling thread.
    max_depth:
        Frames kept per stack, deepest-first (stacks are truncated at
        the *root* end so the hot leaves always survive).
    """

    def __init__(
        self,
        interval_seconds: float = 0.005,
        *,
        threads: Optional[Sequence[int]] = None,
        max_depth: int = 64,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be positive, got {interval_seconds}"
            )
        self.interval_seconds = float(interval_seconds)
        self.max_depth = max(1, int(max_depth))
        self._threads = None if threads is None else {int(t) for t in threads}
        self._stop = threading.Event()
        self._worker: Optional[threading.Thread] = None
        self._stacks: Dict[Tuple[str, ...], int] = {}
        self._num_samples = 0
        self._sampler_seconds = 0.0
        self._started_at: Optional[float] = None
        self._report: Optional[ProfileReport] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "SamplingProfiler":
        if self._worker is not None:
            raise RuntimeError("this profiler is already running")
        self._stop.clear()
        self._stacks = {}
        self._num_samples = 0
        self._sampler_seconds = 0.0
        self._report = None
        self._started_at = time.perf_counter()
        self._worker = threading.Thread(
            target=self._run, name="repro-sampling-profiler", daemon=True
        )
        self._worker.start()
        return self

    def stop(self) -> ProfileReport:
        """Stop sampling and return the accumulated report (idempotent)."""
        if self._report is not None:
            return self._report
        if self._worker is None:
            raise RuntimeError("this profiler was never started")
        self._stop.set()
        self._worker.join()
        self._worker = None
        self._report = ProfileReport(
            stacks=dict(self._stacks),
            num_samples=self._num_samples,
            duration_seconds=time.perf_counter() - (self._started_at or 0.0),
            interval_seconds=self.interval_seconds,
            sampler_seconds=self._sampler_seconds,
        )
        return self._report

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Sampler thread
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        own = threading.get_ident()
        targets = self._threads
        while not self._stop.wait(self.interval_seconds):
            tick = time.perf_counter()
            frames = sys._current_frames()
            try:
                for ident, frame in frames.items():
                    if ident == own:
                        continue
                    if targets is not None and ident not in targets:
                        continue
                    stack: List[str] = []
                    while frame is not None and len(stack) < self.max_depth:
                        stack.append(_frame_label(frame.f_code))
                        frame = frame.f_back
                    if not stack:
                        continue
                    key = tuple(reversed(stack))
                    self._stacks[key] = self._stacks.get(key, 0) + 1
                    self._num_samples += 1
            finally:
                del frames  # drop the frame references promptly
            self._sampler_seconds += time.perf_counter() - tick
