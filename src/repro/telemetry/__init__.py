"""Unified telemetry layer: metrics registry, per-query traces, exports.

Two cooperating halves:

* :mod:`repro.telemetry.registry` — a thread-safe, dependency-free
  metrics registry (counters, gauges, fixed-bucket latency histograms
  with p50/p95/p99 estimation) with JSON (``to_dict``) and Prometheus
  text-format (``render_prometheus``) export, plus the no-op
  :data:`NULL_REGISTRY` used when ``ServingConfig.telemetry`` is off.
* :mod:`repro.telemetry.trace` — per-query :class:`QueryTrace` spans
  carried through the serving stack via a thread-local
  (:func:`trace_scope` / :func:`current_trace`) and retained in a
  :class:`TraceRing` of recent queries.

``repro.service.workspace.Workspace`` owns one registry per workspace
and is the integration point; ``repro workspace stats --metrics
[--format json|prom]`` is the CLI export surface.
"""

from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    NullMetricsRegistry,
)
from .trace import QueryTrace, TraceRing, TraceStage, current_trace, trace_scope

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullMetricsRegistry",
    "QueryTrace",
    "TraceRing",
    "TraceStage",
    "current_trace",
    "trace_scope",
]
