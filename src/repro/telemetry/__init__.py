"""Unified telemetry layer: metrics registry, per-query traces, exports.

Two cooperating halves:

* :mod:`repro.telemetry.registry` — a thread-safe, dependency-free
  metrics registry (counters, gauges, fixed-bucket latency histograms
  with p50/p95/p99 estimation) with JSON (``to_dict``) and Prometheus
  text-format (``render_prometheus``) export, plus the no-op
  :data:`NULL_REGISTRY` used when ``ServingConfig.telemetry`` is off.
* :mod:`repro.telemetry.trace` — per-query :class:`QueryTrace` spans
  carried through the serving stack via a thread-local
  (:func:`trace_scope` / :func:`current_trace`) and retained in a
  :class:`TraceRing` of recent queries.
* :mod:`repro.telemetry.events` — the structured :class:`EventLog`
  (bounded ring + rotating JSONL sink) recording every state
  transition of the serving stack, and the no-op
  :data:`NULL_EVENT_LOG` used when telemetry is off.  This is the
  flight-recorder substrate: ``Workspace.dump_flight_record()``
  bundles recent events, traces, metrics and config into one JSON
  blob.
* :mod:`repro.telemetry.profiler` — a stdlib-only wall-clock
  :class:`SamplingProfiler` (background thread over
  ``sys._current_frames()``) producing collapsed-stack output for
  per-query (``query --profile``) or windowed (``workspace profile``)
  attribution.

``repro.service.workspace.Workspace`` owns one registry, trace ring
and event log per workspace and is the integration point; ``repro
workspace stats --metrics [--format json|prom]``, ``query --trace``,
``workspace flight-record`` and ``workspace doctor`` are the CLI
surfaces.
"""

from .events import NULL_EVENT_LOG, Event, EventLog, NullEventLog, json_safe
from .profiler import ProfileReport, SamplingProfiler
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    NullMetricsRegistry,
)
from .trace import QueryTrace, TraceRing, TraceStage, current_trace, trace_scope

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Event",
    "EventLog",
    "MetricsRegistry",
    "NULL_EVENT_LOG",
    "NULL_REGISTRY",
    "NullEventLog",
    "NullMetricsRegistry",
    "ProfileReport",
    "QueryTrace",
    "SamplingProfiler",
    "TraceRing",
    "TraceStage",
    "current_trace",
    "json_safe",
    "trace_scope",
]
