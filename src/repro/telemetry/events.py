"""Structured event log: the flight-recorder substrate of the library.

Metrics (:mod:`repro.telemetry.registry`) answer "how much, how fast, on
aggregate"; traces (:mod:`repro.telemetry.trace`) answer "where did this
one query spend its time".  Neither answers the operator question "what
happened in the last 30 seconds before this query went slow" — that is
what the event log is for: every *state transition* of the serving
stack (mutations, snapshot derivations vs rebuilds, pending-log folds,
delta appends, compactions, cache invalidations, micro-batcher request
failures, persistence) emits one structured :class:`Event` with a
component, a level and free-form fields.

Two sinks, both optional:

* a thread-safe bounded in-memory ring (the recent history bundled into
  ``Workspace.dump_flight_record()`` and attached to
  ``WorkspaceError``), and
* a rotating JSONL file (``events.jsonl`` in the workspace directory
  for path-backed workspaces) so the record survives the process.

The log is deliberately *not* on the per-query hot path: queries emit
no events (their accounting lives in metrics and traces); only slow
queries and state transitions do, so an idle or read-only workspace
writes nothing.  With ``ServingConfig.telemetry`` off the workspace
holds the no-op :data:`NULL_EVENT_LOG` and every ``emit`` is one empty
method call, mirroring the null metrics registry.

Events are JSON-safe by construction: field values are sanitised at
emit time (numpy scalars unwrapped, unknown objects stringified), so a
flight record always round-trips through ``json.dumps``/``loads``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "Event",
    "EventLog",
    "NULL_EVENT_LOG",
    "NullEventLog",
    "json_safe",
]

LEVELS = ("debug", "info", "warn", "error")


def json_safe(value: object) -> object:
    """Coerce *value* into something ``json.dumps`` accepts losslessly.

    Numpy scalars report as their Python equivalents via ``item()``;
    containers are sanitised recursively; anything else falls back to
    ``str``.  Used at emit time so the ring never holds objects a
    flight-record dump would choke on.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return json_safe(item())
        except (TypeError, ValueError):
            pass
    if isinstance(value, dict):
        return {str(key): json_safe(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_safe(entry) for entry in value]
    return str(value)


@dataclass(frozen=True)
class Event:
    """One structured log record: who, what, when, plus free fields."""

    timestamp: float
    component: str
    name: str
    level: str = "info"
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = {
            "timestamp": self.timestamp,
            "component": self.component,
            "name": self.name,
            "level": self.level,
        }
        if self.fields:
            payload["fields"] = dict(self.fields)
        return payload


class EventLog:
    """Thread-safe bounded event ring with an optional rotating file sink.

    Parameters
    ----------
    capacity:
        Events retained in memory (oldest evicted first).  ``0`` keeps
        no ring but still writes the file sink if one is attached.
    path:
        Optional JSONL file to append every event to; attach later with
        :meth:`attach_file` once the workspace directory is known.
    max_bytes:
        Rotation threshold for the file sink: once the file exceeds
        this size it is renamed to ``<path>.1`` (replacing any previous
        rotation) and a fresh file is started, bounding disk usage at
        roughly ``2 * max_bytes``.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = 512,
        *,
        path: Optional[str] = None,
        max_bytes: int = 4_000_000,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"event ring capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self.max_bytes = max(1024, int(max_bytes))
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=self.capacity)
        self._path: Optional[str] = None
        self._events_total = 0
        self._dropped_writes = 0
        if path is not None:
            self.attach_file(path)

    # ------------------------------------------------------------------ #
    # Sinks
    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Optional[str]:
        """The attached JSONL sink path, or ``None`` (ring only)."""
        return self._path

    @property
    def events_total(self) -> int:
        """Events emitted over the log's lifetime (ring evictions included)."""
        return self._events_total

    @property
    def dropped_writes(self) -> int:
        """File-sink writes that failed (the ring still recorded them)."""
        return self._dropped_writes

    def attach_file(self, path: str) -> None:
        """Start (or switch) appending events to a JSONL file."""
        with self._lock:
            self._path = os.fspath(path)

    def detach_file(self) -> None:
        """Stop writing the file sink (the ring keeps recording)."""
        with self._lock:
            self._path = None

    # ------------------------------------------------------------------ #
    # Emission
    # ------------------------------------------------------------------ #
    def emit(
        self, component: str, name: str, *, level: str = "info", **fields: object
    ) -> Event:
        """Record one event in the ring and (if attached) the file sink.

        Field values are sanitised to JSON-safe equivalents; emission
        never raises for a full disk or unwritable sink — the failure
        is counted in :attr:`dropped_writes` instead, because the event
        log must stay safe to call from error paths.
        """
        if level not in LEVELS:
            level = "info"
        event = Event(
            timestamp=time.time(),  # repro: noqa[RPR201] event wall time
            component=str(component),
            name=str(name),
            level=level,
            fields={str(key): json_safe(value) for key, value in fields.items()},
        )
        with self._lock:
            self._events_total += 1
            if self.capacity:
                self._ring.append(event)
            path = self._path
            if path is not None:
                try:
                    self._write_line(path, event)
                except OSError:
                    self._dropped_writes += 1
        return event

    def _write_line(self, path: str, event: Event) -> None:
        """Append one JSONL line, rotating first when the file is full.

        Caller holds the lock; rotation keeps exactly one predecessor
        file (``<path>.1``) so disk usage stays bounded.
        """
        try:
            if os.path.getsize(path) >= self.max_bytes:
                os.replace(path, path + ".1")
        except OSError:
            pass  # no file yet — the append below creates it
        with open(path, "a", encoding="utf-8") as handle:
            json.dump(event.to_dict(), handle, separators=(",", ":"))
            handle.write("\n")

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def snapshot(
        self,
        *,
        limit: Optional[int] = None,
        component: Optional[str] = None,
        level: Optional[str] = None,
    ) -> List[Event]:
        """The retained events, oldest first, optionally filtered.

        ``limit`` keeps the *most recent* N after filtering — the shape
        a flight record wants ("the last N things that happened").
        """
        with self._lock:
            events = list(self._ring)
        if component is not None:
            events = [event for event in events if event.component == component]
        if level is not None:
            floor = LEVELS.index(level) if level in LEVELS else 0
            events = [
                event for event in events
                if LEVELS.index(event.level) >= floor
            ]
        if limit is not None and limit >= 0:
            events = events[len(events) - min(limit, len(events)):]
        return events

    def to_dicts(self, **kwargs: object) -> List[dict]:
        """JSON-ready form of :meth:`snapshot` (same filters)."""
        return [event.to_dict() for event in self.snapshot(**kwargs)]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


class NullEventLog:
    """No-op stand-in used when telemetry is disabled.

    Mirrors :class:`repro.telemetry.registry.NullMetricsRegistry`: one
    shared instance, every method a constant-time no-op, so call sites
    never branch on whether diagnostics are on.
    """

    enabled = False
    capacity = 0
    path = None
    events_total = 0
    dropped_writes = 0

    def attach_file(self, path: str) -> None:
        pass

    def detach_file(self) -> None:
        pass

    def emit(
        self, component: str, name: str, *, level: str = "info", **fields: object
    ) -> None:
        return None

    def snapshot(self, **kwargs: object) -> List[Event]:
        return []

    def to_dicts(self, **kwargs: object) -> List[dict]:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


NULL_EVENT_LOG = NullEventLog()
"""The shared no-op event log (see :class:`NullEventLog`)."""
