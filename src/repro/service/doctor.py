"""``workspace doctor``: invariant checks over a workspace and its layout.

The serving stack accumulates state with many cross-references — the
manifest's roster must match the feature store, index slots must
reconcile with tombstone and live counts, PQ code widths must match
their codec, the serving snapshot must cover exactly the live roster.
Each of those is an invariant some subsystem *assumes*; the doctor is
the one place that *checks* them all, so an operator can ask "is this
workspace healthy" before (or after) trusting it with traffic.

Every check yields an OK / WARN / FAIL verdict with a one-line detail:

* **FAIL** — an invariant is broken; queries may return wrong results
  or crash.  ``repro workspace doctor`` exits non-zero.
* **WARN** — degraded but correct (stale index, tombstone build-up,
  deltas past the compaction threshold, dropped diagnostic writes).
* **OK** — the invariant holds.

Checks never raise: an exception inside one check is itself a FAIL for
that check, and the remaining checks still run.  The optional probes
(one live query, a telemetry-overhead measurement) exercise the real
serving path; disable them with ``probe=False`` for a purely passive
inspection.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..telemetry.registry import MetricsRegistry

__all__ = ["DoctorCheck", "DoctorReport", "run_doctor"]

OK = "OK"
WARN = "WARN"
FAIL = "FAIL"

# Tombstoned engine-slot fraction above which the doctor flags read-path
# degradation (mirrors Workspace._MAX_DEAD_FRACTION, past which the next
# snapshot rebuilds anyway).
_DEAD_FRACTION_WARN = 0.5

# Telemetry primitives slower than this (per operation) suggest the
# observability layer itself would distort the serving path.
_TELEMETRY_WARN_SECONDS = 50e-6


@dataclass(frozen=True)
class DoctorCheck:
    """One named invariant check and its verdict."""

    name: str
    status: str
    detail: str

    def to_dict(self) -> dict:
        return {"name": self.name, "status": self.status, "detail": self.detail}


@dataclass
class DoctorReport:
    """The doctor's full findings over one workspace."""

    checks: List[DoctorCheck] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """No FAIL verdicts (WARNs are degradation, not breakage)."""
        return all(check.status != FAIL for check in self.checks)

    @property
    def counts(self) -> Dict[str, int]:
        totals = {OK: 0, WARN: 0, FAIL: 0}
        for check in self.checks:
            totals[check.status] = totals.get(check.status, 0) + 1
        return totals

    def rows(self) -> List[List[str]]:
        """Table rows for the CLI report."""
        return [[check.name, check.status, check.detail] for check in self.checks]

    def static_checkers(self) -> Dict[str, List[str]]:
        """Map check name -> ``repro lint`` checker IDs that guard the
        same invariant statically (see docs/INVARIANTS.md); only
        checks present in this report are listed."""
        present = {check.name for check in self.checks}
        return {
            name: list(ids)
            for name, ids in _static_counterparts().items()
            if name in present
        }

    def to_dict(self) -> dict:
        return {
            "healthy": self.healthy,
            "counts": self.counts,
            "checks": [check.to_dict() for check in self.checks],
            "static_checkers": self.static_checkers(),
        }


def _static_counterparts() -> Dict[str, tuple]:
    """Doctor check name -> static checker IDs (from the analysis
    registry, the single source of truth for the mapping)."""
    from ..analysis import doctor_counterparts

    return doctor_counterparts()


def _run_check(
    report: DoctorReport, name: str, check: Callable[[], DoctorCheck]
) -> None:
    """Append one check's verdict; an escaping exception is its FAIL."""
    try:
        report.checks.append(check())
    except Exception as exc:  # noqa: BLE001 - the doctor must not crash
        report.checks.append(
            DoctorCheck(name, FAIL, f"check crashed: {type(exc).__name__}: {exc}")
        )


def run_doctor(workspace, *, probe: bool = True) -> DoctorReport:
    """Run every invariant check over *workspace*.

    Parameters
    ----------
    workspace:
        An open :class:`repro.service.Workspace` (in-memory or
        path-backed; path-backed workspaces additionally get their
        on-disk manifest, index format and diagnostic logs verified).
    probe:
        Also run the active probes: one live query through the serving
        snapshot and a telemetry-overhead measurement.
    """
    report = DoctorReport()
    _run_check(report, "manifest", lambda: _check_manifest(workspace))
    _run_check(report, "config", lambda: _check_config(workspace))
    _run_check(report, "store", lambda: _check_store(workspace))
    _run_check(report, "index_accounting", lambda: _check_index(workspace))
    _run_check(report, "index_format", lambda: _check_index_format(workspace))
    _run_check(report, "pq_codes", lambda: _check_pq(workspace))
    _run_check(report, "caches", lambda: _check_caches(workspace))
    _run_check(report, "event_log", lambda: _check_event_log(workspace))
    _run_check(report, "slow_query_log", lambda: _check_slow_query_log(workspace))
    if probe:
        _run_check(report, "serving_snapshot", lambda: _check_snapshot(workspace))
        _run_check(report, "query_probe", lambda: _check_query_probe(workspace))
        _run_check(
            report, "telemetry_overhead",
            lambda: _check_telemetry_overhead(workspace),
        )
    return report


# ---------------------------------------------------------------------- #
# Passive checks
# ---------------------------------------------------------------------- #
def _check_manifest(workspace) -> DoctorCheck:
    from .workspace import FORMAT_NAME, FORMAT_VERSION, MANIFEST_NAME

    if workspace.path is None:
        return DoctorCheck("manifest", OK, "in-memory workspace (no manifest)")
    manifest_path = os.path.join(workspace.path, MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        return DoctorCheck("manifest", FAIL, f"missing {manifest_path}")
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except json.JSONDecodeError as exc:
        return DoctorCheck("manifest", FAIL, f"unparseable manifest: {exc}")
    if manifest.get("format") != FORMAT_NAME:
        return DoctorCheck(
            "manifest", FAIL, f"format is {manifest.get('format')!r}, "
            f"expected {FORMAT_NAME!r}"
        )
    version = int(manifest.get("version", 0))
    if version > FORMAT_VERSION:
        return DoctorCheck(
            "manifest", FAIL,
            f"format version {version} is newer than this reader "
            f"(supports <= {FORMAT_VERSION})",
        )
    listed = [str(entry["identifier"]) for entry in manifest.get("series", [])]
    roster = workspace.identifiers
    if listed != roster and not workspace._dirty:
        return DoctorCheck(
            "manifest", FAIL,
            f"manifest lists {len(listed)} series but the roster holds "
            f"{len(roster)}; the layout was modified behind the manifest",
        )
    detail = f"format v{version}, {len(listed)} series listed"
    if workspace._dirty:
        detail += " (unsaved mutations pending)"
    return DoctorCheck("manifest", OK, detail)


def _check_config(workspace) -> DoctorCheck:
    from .config import WorkspaceConfig

    rebuilt = WorkspaceConfig.from_dict(workspace.config.to_dict())
    if rebuilt != workspace.config:
        return DoctorCheck(
            "config", FAIL, "configuration does not round-trip through to_dict"
        )
    return DoctorCheck(
        "config", OK,
        f"round-trips; constraint={workspace.config.engine.constraint} "
        f"backend={workspace.config.engine.backend}",
    )


def _check_store(workspace) -> DoctorCheck:
    store = workspace._store
    roster = workspace.identifiers
    missing = [
        identifier for identifier in roster if identifier not in store
    ]
    if missing:
        return DoctorCheck(
            "store", FAIL,
            f"{len(missing)} roster series missing from the feature store "
            f"(first: {missing[0]!r})",
        )
    orphans = set(store.identifiers()) - set(roster)
    if orphans:
        return DoctorCheck(
            "store", FAIL,
            f"feature store holds {len(orphans)} series absent from the "
            f"roster (first: {sorted(orphans)[0]!r})",
        )
    empty = [i for i in roster if workspace.series_of(i).size == 0]
    if empty:
        return DoctorCheck(
            "store", FAIL, f"{len(empty)} stored series are empty"
        )
    featured = sum(1 for i in roster if store.has_features(i))
    return DoctorCheck(
        "store", OK,
        f"{len(roster)} series, features extracted for {featured}",
    )


def _check_index(workspace) -> DoctorCheck:
    persisted = workspace._index
    if persisted is None:
        return DoctorCheck(
            "index_accounting", OK, "no index built (exact scans only)"
        )
    index = persisted.index
    slots = persisted.slots
    if int(index.num_series) != len(slots):
        return DoctorCheck(
            "index_accounting", FAIL,
            f"index holds {index.num_series} slots but the slot roster "
            f"names {len(slots)}",
        )
    tombstones = list(index.tombstones)
    expected_live = len(slots) - sum(bool(t) for t in tombstones)
    if int(index.num_live) != expected_live:
        return DoctorCheck(
            "index_accounting", FAIL,
            f"num_live={index.num_live} but slots-tombstones={expected_live}",
        )
    if persisted.stale:
        return DoctorCheck(
            "index_accounting", WARN,
            "index is stale (auto queries fall back to exact scans; "
            "rebuild with build_index())",
        )
    live_names = {
        name for slot, name in enumerate(slots) if not tombstones[slot]
    }
    roster = set(workspace.identifiers)
    if live_names != roster:
        return DoctorCheck(
            "index_accounting", FAIL,
            f"live index slots cover {len(live_names)} identifiers but the "
            f"roster holds {len(roster)}; they must coincide on a fresh index",
        )
    deltas = int(index.num_delta_shards)
    limit = workspace.config.index.max_delta_shards
    if deltas > limit:
        return DoctorCheck(
            "index_accounting", WARN,
            f"{deltas} delta shards exceed max_delta_shards={limit}; "
            f"compaction is overdue",
        )
    return DoctorCheck(
        "index_accounting", OK,
        f"{index.num_live} live of {index.num_series} slots, "
        f"{deltas} delta shards, {sum(bool(t) for t in tombstones)} tombstones",
    )


def _check_index_format(workspace) -> DoctorCheck:
    from ..indexing.store import FORMAT_VERSION as INDEX_FORMAT_VERSION

    from .workspace import INDEX_DIR_NAME

    if workspace.path is None or workspace._index is None:
        return DoctorCheck(
            "index_format", OK, "no persisted index directory to verify"
        )
    manifest_path = os.path.join(
        workspace.path, INDEX_DIR_NAME, "manifest.json"
    )
    if not os.path.exists(manifest_path):
        if workspace._index.stale or workspace._dirty:
            return DoctorCheck(
                "index_format", OK,
                "index not persisted yet (stale or unsaved mutations)",
            )
        return DoctorCheck(
            "index_format", FAIL, f"missing {manifest_path}"
        )
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    version = int(manifest.get("version", 0))
    if version > INDEX_FORMAT_VERSION:
        return DoctorCheck(
            "index_format", FAIL,
            f"index format v{version} is newer than this reader "
            f"(supports <= {INDEX_FORMAT_VERSION})",
        )
    return DoctorCheck("index_format", OK, f"index format v{version}")


def _check_pq(workspace) -> DoctorCheck:
    persisted = workspace._index
    if persisted is None or persisted.pq is None:
        if (
            persisted is not None
            and workspace.config.index.rank_mode == "pq"
        ):
            return DoctorCheck(
                "pq_codes", WARN,
                "rank_mode='pq' configured but the index carries no PQ "
                "codes; queries silently downgrade to tfidf ranking",
            )
        return DoctorCheck("pq_codes", OK, "no PQ codec on this index")
    pq = persisted.pq
    expected_bytes = (pq.config.subquantizers * pq.config.bits + 7) // 8
    if int(pq.code_bytes) != expected_bytes:
        return DoctorCheck(
            "pq_codes", FAIL,
            f"code_bytes={pq.code_bytes} but M={pq.config.subquantizers} "
            f"bits={pq.config.bits} implies {expected_bytes}",
        )
    index = persisted.index
    if not index.has_pq:
        return DoctorCheck(
            "pq_codes", WARN,
            "PQ codec present but the postings carry no code columns",
        )
    # Postings are aggregated (one row per distinct codeword per
    # series) while PQ codes are per feature occurrence, so coded >=
    # postings is the healthy shape; zero codes on a coded index means
    # the code columns were lost.
    coded = int(index.num_pq_postings)
    total = int(index.num_postings)
    if total and coded < total:
        return DoctorCheck(
            "pq_codes", FAIL,
            f"only {coded} PQ-coded features against {total} aggregated "
            f"postings; every posting's features should carry codes",
        )
    return DoctorCheck(
        "pq_codes", OK,
        f"{pq.code_bytes} bytes/feature over {coded} coded features "
        f"({pq.compression_ratio:.1f}x vs raw residuals)",
    )


def _check_caches(workspace) -> DoctorCheck:
    persisted = workspace._index
    if persisted is None:
        return DoctorCheck("caches", OK, "no index caches to inspect")
    stats = persisted.index.postings_cache_stats()
    hits = int(stats.get("hits", 0))
    misses = int(stats.get("misses", 0))
    if hits < 0 or misses < 0:
        return DoctorCheck(
            "caches", FAIL, f"negative cache tallies: {stats}"
        )
    return DoctorCheck(
        "caches", OK,
        f"postings cache {hits} hits / {misses} misses; candidate cache "
        f"capacity {workspace.config.index.candidate_cache}",
    )


def _read_jsonl(path: str) -> Optional[str]:
    """Parse every line of a JSONL file; the first bad line's message."""
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                json.loads(line)
            except json.JSONDecodeError as exc:
                return f"line {number}: {exc}"
    return None


def _check_event_log(workspace) -> DoctorCheck:
    events = workspace.events
    if not events.enabled:
        return DoctorCheck(
            "event_log", OK, "telemetry disabled (no event log)"
        )
    if events.path is not None and os.path.exists(events.path):
        problem = _read_jsonl(events.path)
        if problem is not None:
            return DoctorCheck(
                "event_log", FAIL, f"corrupt {events.path}: {problem}"
            )
    if events.dropped_writes:
        return DoctorCheck(
            "event_log", WARN,
            f"{events.dropped_writes} event writes dropped (disk full or "
            f"sink unwritable); the in-memory ring is complete",
        )
    where = events.path if events.path else "ring only"
    return DoctorCheck(
        "event_log", OK,
        f"{events.events_total} events emitted ({where})",
    )


def _check_slow_query_log(workspace) -> DoctorCheck:
    threshold = workspace.config.serving.slow_query_threshold
    if threshold is None:
        return DoctorCheck(
            "slow_query_log", OK, "capture disarmed (no threshold configured)"
        )
    path = workspace._slow_path
    if path is not None and os.path.exists(path):
        problem = _read_jsonl(path)
        if problem is not None:
            return DoctorCheck(
                "slow_query_log", FAIL, f"corrupt {path}: {problem}"
            )
    if workspace._slow_query_drops:
        return DoctorCheck(
            "slow_query_log", WARN,
            f"{workspace._slow_query_drops} slow-query writes dropped",
        )
    return DoctorCheck(
        "slow_query_log", OK,
        f"threshold {threshold}s, {len(workspace.slow_queries())} records "
        f"retained",
    )


# ---------------------------------------------------------------------- #
# Active probes
# ---------------------------------------------------------------------- #
def _check_snapshot(workspace) -> DoctorCheck:
    if not len(workspace):
        return DoctorCheck(
            "serving_snapshot", OK, "empty workspace (no snapshot to build)"
        )
    snapshot = workspace._ensure_serving()
    live = int(snapshot.engine.num_live)
    roster = len(workspace.identifiers)
    if live != roster:
        return DoctorCheck(
            "serving_snapshot", FAIL,
            f"snapshot serves {live} live series but the roster holds "
            f"{roster}",
        )
    total = len(snapshot.engine)
    dead = (total - live) / total if total else 0.0
    if dead > _DEAD_FRACTION_WARN:
        return DoctorCheck(
            "serving_snapshot", WARN,
            f"{dead:.0%} of engine slots are tombstones; the next snapshot "
            f"should rebuild",
        )
    indexed = "indexed" if snapshot.searcher is not None else "exact-only"
    return DoctorCheck(
        "serving_snapshot", OK,
        f"{live} live series ({indexed}, {dead:.0%} dead slots)",
    )


def _check_query_probe(workspace) -> DoctorCheck:
    if not len(workspace):
        return DoctorCheck(
            "query_probe", OK, "empty workspace (nothing to query)"
        )
    identifier = workspace.identifiers[0]
    result = workspace.query(
        workspace.series_of(identifier), k=1, exclude_identifier=identifier
    ) if len(workspace) > 1 else workspace.query(
        workspace.series_of(identifier), k=1
    )
    if not result.hits:
        return DoctorCheck(
            "query_probe", FAIL, "probe query returned no hits"
        )
    top = result.hits[0]
    if top.identifier not in set(workspace.identifiers):
        return DoctorCheck(
            "query_probe", FAIL,
            f"probe hit {top.identifier!r} is not in the roster",
        )
    if not (top.distance >= 0.0):
        return DoctorCheck(
            "query_probe", FAIL, f"probe distance {top.distance} is invalid"
        )
    return DoctorCheck(
        "query_probe", OK,
        f"{result.mode} probe served in "
        f"{result.elapsed_seconds * 1000:.2f} ms (top: {top.identifier})",
    )


def _check_telemetry_overhead(workspace) -> DoctorCheck:
    if not workspace.metrics.enabled:
        return DoctorCheck(
            "telemetry_overhead", OK, "telemetry disabled (zero overhead)"
        )
    # Measure the instrumented primitives in isolation on a throwaway
    # registry (never polluting the workspace's own metrics): one
    # counter inc + one histogram observe approximates the per-query
    # metric work; the serving-path guarantee itself is gated end to
    # end by the CI telemetry-overhead benchmark.
    registry = MetricsRegistry()
    counter = registry.counter("repro_doctor_probe_total", "probe")
    histogram = registry.histogram("repro_doctor_probe_seconds", "probe")
    rounds = 2000
    started = time.perf_counter()
    for _ in range(rounds):
        counter.inc()
        histogram.observe(0.001)
    per_op = (time.perf_counter() - started) / (2 * rounds)
    if per_op > _TELEMETRY_WARN_SECONDS:
        return DoctorCheck(
            "telemetry_overhead", WARN,
            f"{per_op * 1e6:.1f} us per metric op (> "
            f"{_TELEMETRY_WARN_SECONDS * 1e6:.0f} us); telemetry may "
            f"distort sub-millisecond queries",
        )
    return DoctorCheck(
        "telemetry_overhead", OK,
        f"{per_op * 1e6:.2f} us per metric op",
    )
